#include "core/costing.h"

#include <algorithm>
#include <stdexcept>

namespace rpol::core {

std::int64_t steps_per_worker_epoch(const CostScenario& scenario) {
  const std::int64_t examples_per_worker = static_cast<std::int64_t>(
      scenario.dataset.num_examples / scenario.num_workers);
  return std::max<std::int64_t>(1, examples_per_worker / scenario.batch_size);
}

std::int64_t checkpoints_per_epoch(const CostScenario& scenario) {
  const std::int64_t steps = steps_per_worker_epoch(scenario);
  return (steps + scenario.checkpoint_interval - 1) / scenario.checkpoint_interval +
         1;  // + initial state
}

EpochCostReport estimate_epoch_cost(const CostScenario& scenario) {
  if (scenario.num_workers == 0) throw std::invalid_argument("no workers");
  CostScenario s = scenario;
  if (s.worker_device.name.empty()) s.worker_device = sim::device_ga10();
  if (s.manager_device.name.empty()) s.manager_device = sim::device_g3090();

  EpochCostReport report;
  const double n = static_cast<double>(s.num_workers);
  const std::int64_t steps = steps_per_worker_epoch(s);
  const std::int64_t examples_per_worker = steps * s.batch_size;
  const std::uint64_t weight_bytes = s.model.weight_bytes;
  const bool is_v1 = s.scheme == Scheme::kRPoLv1;
  const bool is_v2 = s.scheme == Scheme::kRPoLv2;
  const bool verified = is_v1 || is_v2;

  // --- Compute ---------------------------------------------------------
  const double util = s.model.device_utilization_scale;
  report.worker_train_s = s.worker_device.compute_seconds(
      static_cast<double>(examples_per_worker) * s.model.train_flops_per_example /
      util);
  if (is_v2) {
    // Hashing each checkpoint: k*l projections of the weight vector,
    // 2 FLOPs per weight per projection.
    const double lsh_flops = static_cast<double>(checkpoints_per_epoch(s)) *
                             static_cast<double>(s.k_lsh) *
                             static_cast<double>(s.model.parameter_count) * 2.0;
    report.worker_lsh_s = s.worker_device.compute_seconds(lsh_flops);
  }
  if (verified) {
    // Re-execute q transitions (interval steps each) per worker.
    const double verify_examples =
        n * static_cast<double>(s.samples_q) *
        static_cast<double>(s.checkpoint_interval) *
        static_cast<double>(s.batch_size);
    report.manager_verify_s = s.manager_device.compute_seconds(
        verify_examples * s.model.train_flops_per_example / util);
  }
  if (is_v2) {
    // Adaptive calibration: the manager's own i.i.d. sub-task, trained
    // twice (top-2 devices) per epoch.
    const double manager_examples =
        static_cast<double>(s.dataset.num_examples) /
        (n + 1.0);
    report.manager_calibrate_s = 2.0 * s.manager_device.compute_seconds(
        manager_examples * s.model.train_flops_per_example / util);
  }

  // --- Communication ---------------------------------------------------
  // Every worker downloads the global model and uploads its update.
  report.download_bytes_total = static_cast<std::uint64_t>(n) * weight_bytes;
  std::uint64_t upload_per_worker = weight_bytes;  // the model update
  if (verified) {
    upload_per_worker += 32ULL * static_cast<std::uint64_t>(
        checkpoints_per_epoch(s));  // commitment hashes
    std::uint64_t proof_per_worker = 0;
    if (is_v1) {
      // q samples x (input + output) weight sets.
      proof_per_worker = static_cast<std::uint64_t>(s.samples_q) * 2ULL * weight_bytes;
    } else {
      // q samples x input weight set, plus double-checked outputs.
      proof_per_worker = static_cast<std::uint64_t>(s.samples_q) * weight_bytes;
      proof_per_worker += static_cast<std::uint64_t>(
          s.double_check_rate * static_cast<double>(s.samples_q) *
          static_cast<double>(weight_bytes));
    }
    upload_per_worker += proof_per_worker;
    report.proof_bytes_total =
        static_cast<std::uint64_t>(n) * proof_per_worker;
  }
  report.upload_bytes_total = static_cast<std::uint64_t>(n) * upload_per_worker;

  // --- Storage ---------------------------------------------------------
  if (verified) {
    report.storage_bytes_per_worker =
        static_cast<std::uint64_t>(checkpoints_per_epoch(s)) * 2ULL * weight_bytes;
    // 2x: model weights + same-sized optimizer (SGDM momentum) slots.
    if (is_v2) {
      report.storage_bytes_per_worker +=
          static_cast<std::uint64_t>(s.k_lsh) * s.model.parameter_count * 4ULL;
    }
  } else {
    report.storage_bytes_per_worker = weight_bytes;  // just the live model
  }

  // --- Epoch wall time ---------------------------------------------------
  sim::Network net(s.network, s.num_workers);
  const double t_down = net.download(0, weight_bytes, s.num_workers);
  const double t_up = net.upload(0, upload_per_worker, s.num_workers);
  const std::size_t parallelism =
      s.manager_verify_parallelism != 0
          ? s.manager_verify_parallelism
          : std::max<std::size_t>(1, s.num_workers / 12);
  report.epoch_wall_s = t_down + report.worker_train_s + report.worker_lsh_s +
                        t_up +
                        report.manager_verify_s / static_cast<double>(parallelism);

  // --- Capital cost ------------------------------------------------------
  const double gpu_seconds = n * (report.worker_train_s + report.worker_lsh_s) +
                             report.manager_compute_s();
  report.capital.compute_usd = s.prices.compute_cost(gpu_seconds);
  report.capital.comm_usd = s.prices.comm_cost(report.upload_bytes_total);
  // Storage charged for the epoch duration expressed in months.
  const double months = report.epoch_wall_s / (30.0 * 24.0 * 3600.0);
  report.capital.storage_usd = s.prices.storage_cost(
      report.storage_bytes_per_worker * static_cast<std::uint64_t>(n),
      std::max(months, 1.0 / (30.0 * 24.0)));  // floor: one hour of storage
  return report;
}

}  // namespace rpol::core
