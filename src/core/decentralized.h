// Decentralized verification — the paper's future-work extension
// ("decentralized verification will be implemented to enable multiple
// workers to securely accelerate the verification in parallel", Sec. IX).
//
// Instead of the manager re-executing every sampled transition itself, each
// sample is assigned to r distinct verifier workers chosen by a PRF keyed
// with the manager's seed and the commitment root (so neither the prover
// nor the verifiers can predict or bias assignments). Every verifier
// re-executes its assigned transitions and votes pass/fail; a sample
// passes on a strict majority. With at most floor((r-1)/2) colluding or
// slandering verifiers per sample, the outcome equals centralized
// verification, while the wall-clock verification time drops by roughly
// the number of verifiers (work is spread across their GPUs).

#pragma once

#include "core/verifier.h"

namespace rpol::core {

enum class VerifierBehavior {
  kHonest,          // re-executes and votes truthfully
  kColludeAccept,   // always votes pass (covering for the prover)
  kSlandererReject  // always votes fail (griefing honest provers)
};

struct VerifierNode {
  VerifierBehavior behavior = VerifierBehavior::kHonest;
  sim::DeviceProfile device;
  std::uint64_t run_seed = 0;
};

struct DecentralizedConfig {
  std::int64_t samples_q = 3;
  std::int64_t verifiers_per_sample = 3;  // r, odd values avoid ties
  double beta = 0.1;
  std::uint64_t assignment_seed = 17;
};

struct VerifierVote {
  std::size_t verifier = 0;
  bool pass = false;
  double distance = 0.0;  // 0 for non-honest behaviours
};

struct DecentralizedResult {
  bool accepted = false;
  std::vector<std::int64_t> samples;
  std::vector<std::vector<VerifierVote>> votes;  // aligned with samples
  std::int64_t total_reexecuted_steps = 0;       // summed over verifiers
  std::int64_t critical_path_steps = 0;  // max per-verifier load (parallel time)
};

// PRF-derived assignment: for each sample, r distinct verifier indices out
// of `num_verifiers` (requires num_verifiers >= r).
std::vector<std::vector<std::size_t>> assign_verifiers(
    std::uint64_t seed, const Digest& commitment_root,
    const std::vector<std::int64_t>& samples, std::size_t num_verifiers,
    std::int64_t verifiers_per_sample);

class DecentralizedVerifier {
 public:
  DecentralizedVerifier(const nn::ModelFactory& factory, const Hyperparams& hp,
                        DecentralizedConfig config);

  const DecentralizedConfig& config() const { return config_; }
  void set_beta(double beta) { config_.beta = beta; }

  DecentralizedResult verify(const Commitment& commitment,
                             const EpochTrace& trace, const EpochContext& context,
                             const Digest& expected_initial_hash,
                             const std::vector<VerifierNode>& verifiers);

 private:
  Hyperparams hp_;
  DecentralizedConfig config_;
  StepExecutor executor_;  // shared re-execution engine (verifier-device noise
                           // is injected per verifier via DeviceExecution)
};

}  // namespace rpol::core
