// Mining-pool orchestration: the full per-epoch RPoL protocol loop
// (Fig. 2 steps 1-3 plus verification and aggregation).
//
// One MiningPool couples a manager with n workers over a simulated WAN:
//
//   per epoch t:
//     0. (RPoL schemes) adaptive calibration on the manager's own i.i.d.
//        sub-task using the pool's top-2 device profiles -> alpha, beta,
//        optimal LSH parameters (Sec. V-C);
//     1. every worker downloads the global state and a fresh nonce N_t^w;
//     2. workers run their (possibly dishonest) policies, producing
//        checkpoint traces, and upload model update + commitment;
//     3. the manager samples q transitions per worker, verifies them
//        (RPoLv1 raw / RPoLv2 LSH + double-check) and aggregates only the
//        accepted updates per Eq. (1);
//     4. the global model is evaluated on the held-out test set.
//
// Scheme::kBaseline skips steps 0 and 3 entirely — the insecure comparison
// point of Sec. VII-E.

#pragma once

#include <memory>

#include "core/calibrate.h"
#include "core/decentralized.h"
#include "fault/fault.h"
#include "obs/health.h"
#include "obs/mem.h"
#include "sim/network.h"

namespace rpol::core {

enum class Scheme { kBaseline, kRPoLv1, kRPoLv2 };

std::string scheme_name(Scheme scheme);

struct PoolConfig {
  Scheme scheme = Scheme::kRPoLv2;
  Hyperparams hp;
  std::int64_t epochs = 10;
  std::int64_t samples_q = 3;          // q, Sec. VII-A default
  CalibrationConfig calibration;
  double global_learning_rate = 1.0;   // eta of Eq. (1)
  std::uint64_t seed = 7;
  sim::NetworkSpec network;
  // Ablation switch: when false, calibrate only once (epoch 0) instead of
  // adapting every epoch.
  bool calibrate_every_epoch = true;
  // Future-work extension: verify each worker with a committee of its peers
  // (core/decentralized.h) instead of the manager alone. Committee members
  // re-execute with raw distance checks, so this composes with both RPoL
  // schemes' thresholds; requires >= verifiers_per_sample + 1 workers.
  bool decentralized_verification = false;
  std::int64_t verifiers_per_sample = 3;
  // Sec. V-B's Merkle construction: workers upload O(1) commitment roots
  // and sampled transitions travel with logarithmic membership proofs,
  // instead of the default ordered hash list.
  bool compact_commitments = false;
  // Fault environment on every manager<->worker link. nullptr keeps the
  // exact lossless accounting (no injector constructed); otherwise each
  // protocol leg retries under `retry` and a leg that exhausts the budget
  // fails the worker's session for this epoch.
  const fault::FaultPlan* fault_plan = nullptr;
  fault::RetryPolicy retry;
  // Graceful degradation: a worker whose sessions fail (transport
  // exhaustion or rejected verification) this many epochs in a row is
  // evicted and the pool continues each epoch with the survivors.
  std::int64_t eviction_threshold = 3;
  // Bounded-memory epochs (ROADMAP item 5): each worker streams its
  // checkpoints — hashed into the commitment and spilled to disk
  // (core/ckptstore.h) as they are produced — so no EpochTrace is ever
  // materialized, and verification fetches sampled states back through the
  // store. Commitments, verdicts, the global model, and every report field
  // are bitwise identical to the in-memory path (§6, pinned by
  // tests/runtime_determinism_test.cpp). Incompatible with
  // decentralized_verification (committees replay whole traces; the
  // constructor rejects the combination).
  bool streaming = false;
  // Hot-cache budget for the per-worker checkpoint stores; 0 resolves
  // RPOL_CKPT_BUDGET from the environment (256 MiB default).
  std::uint64_t ckpt_budget_bytes = 0;
};

struct WorkerSpec {
  std::unique_ptr<WorkerPolicy> policy;
  sim::DeviceProfile device;
};

struct EpochReport {
  std::int64_t epoch = 0;
  double test_accuracy = 0.0;
  std::vector<bool> accepted;            // per worker
  std::int64_t rejected_count = 0;
  double alpha = 0.0;
  double beta = 0.0;
  lsh::LshParams lsh_params;
  std::int64_t lsh_mismatches = 0;
  std::int64_t double_checks = 0;
  std::uint64_t bytes_this_epoch = 0;    // WAN traffic
  std::uint64_t worker_storage_bytes = 0;  // max per-worker checkpoint store
  std::int64_t manager_reexecuted_steps = 0;
  // Fault-environment accounting (all zero without a fault plan).
  std::vector<bool> participated;        // per worker: completed every leg
  std::vector<bool> evicted;             // per worker, cumulative
  std::int64_t session_failures = 0;     // legs lost to transport this epoch
  std::int64_t retransmissions = 0;      // extra transmissions this epoch
  std::int64_t evicted_count = 0;        // cumulative evictions so far
};

struct PoolRunReport {
  std::vector<EpochReport> epochs;
  double final_accuracy = 0.0;
  std::uint64_t total_bytes = 0;
  std::int64_t total_session_failures = 0;
  std::int64_t total_retransmissions = 0;
};

class MiningPool {
 public:
  // `factory` builds the (address-encoded, if desired) task model; `train`
  // is partitioned into num_workers+1 i.i.d. parts, the manager keeping
  // part 0 for calibration. `workers` supplies one policy+device per worker.
  MiningPool(PoolConfig config, nn::ModelFactory factory,
             const data::Dataset& train, data::DatasetView test,
             std::vector<WorkerSpec> workers);

  PoolRunReport run();

  // Runs a single epoch; exposed so tests and benches can drive the
  // protocol step by step.
  EpochReport run_epoch(std::int64_t epoch);

  const std::vector<float>& global_model() const { return global_model_; }
  double evaluate_global();

  bool worker_evicted(std::size_t worker) const {
    return health_.evicted(worker);
  }
  // Per-worker health scores, states, and windowed session stats; eviction
  // decisions live here too (obs/health.h keeps them deterministic).
  const obs::HealthRegistry& health() const { return health_; }

 private:
  PoolConfig config_;
  nn::ModelFactory factory_;
  data::DatasetView test_;
  std::vector<data::DatasetView> partitions_;  // [0]=manager, [1..n]=workers
  std::vector<WorkerSpec> workers_;

  StepExecutor manager_executor_;  // evaluation + state templating
  std::vector<std::unique_ptr<StepExecutor>> worker_executors_;
  std::unique_ptr<Verifier> verifier_;
  sim::Network network_;

  std::vector<float> global_model_;     // current global model state vector
  std::vector<float> fresh_optimizer_;  // pristine optimizer state template
  CalibrationResult last_calibration_;
  bool calibrated_ = false;
  // Graceful-degradation bookkeeping: strike counting, eviction, and the
  // windowed health scores all live in the registry (one slot per worker).
  obs::HealthRegistry health_;
  // Long-lived model state: every executor (manager, verifier, one per
  // worker) holds a model+optimizer image for the pool's lifetime, plus the
  // pool's own global vectors. Charged once at construction, approximated
  // by the state-vector size.
  obs::MemScope state_mem_{obs::MemTag::kCheckpoint};

  TrainState initial_state() const;
  std::uint64_t worker_nonce(std::int64_t epoch, std::size_t worker) const;
  // Top-2 device profiles among the pool's registered workers.
  std::pair<sim::DeviceProfile, sim::DeviceProfile> top_two_devices() const;
};

}  // namespace rpol::core
