// Mining-pool orchestration: the full per-epoch RPoL protocol loop
// (Fig. 2 steps 1-3 plus verification and aggregation).
//
// One MiningPool couples a manager with n workers over a simulated WAN:
//
//   per epoch t:
//     0. (RPoL schemes) adaptive calibration on the manager's own i.i.d.
//        sub-task using the pool's top-2 device profiles -> alpha, beta,
//        optimal LSH parameters (Sec. V-C);
//     1. every worker downloads the global state and a fresh nonce N_t^w;
//     2. workers run their (possibly dishonest) policies, producing
//        checkpoint traces, and upload model update + commitment;
//     3. the manager samples q transitions per worker, verifies them
//        (RPoLv1 raw / RPoLv2 LSH + double-check) and aggregates only the
//        accepted updates per Eq. (1);
//     4. the global model is evaluated on the held-out test set.
//
// Scheme::kBaseline skips steps 0 and 3 entirely — the insecure comparison
// point of Sec. VII-E.

#pragma once

#include <memory>
#include <optional>

#include "core/calibrate.h"
#include "core/ckptstore.h"
#include "core/decentralized.h"
#include "fault/fault.h"
#include "obs/health.h"
#include "obs/mem.h"
#include "obs/obs.h"
#include "sim/network.h"

namespace rpol::core {

enum class Scheme { kBaseline, kRPoLv1, kRPoLv2 };

std::string scheme_name(Scheme scheme);

// Why a session / submission ended — the typed outcome taxonomy shared by
// protocol sessions (core/session.h, which includes this header), the pool
// layers, and the sharded manager (core/sharded_pool.h). Pinned by
// tests/core_session_test.cpp and swept by tests/fault_conformance_test.cpp:
//   kAccepted          every exchange delivered and every sampled transition
//                      verified;
//   kVerdictRejected   all messages arrived but verification failed (hash
//                      mismatch, distance above beta, LSH + double-check
//                      miss);
//   kDecodeRejected    a message stayed undecodable (or over the size cap)
//                      for the whole retry budget — malformed beyond what
//                      transport noise explains within budget;
//   kTimeout           a message was never delivered within the retry budget
//                      (drops, delays, or a withholding peer);
//   kAdmissionRejected shed by a full shard submission queue under the
//                      kReject overflow policy — delivered but never
//                      verified, and deliberately NOT a health strike (a
//                      manager overload is not worker misbehavior);
//   kRequeued          transient: waiting in a shard's overflow backlog for
//                      queue capacity (final statuses overwrite it once the
//                      submission is verified).
enum class SessionStatus : int {
  kAccepted = 0,
  kVerdictRejected,
  kDecodeRejected,
  kTimeout,
  kAdmissionRejected,
  kRequeued,
};

const char* session_status_name(SessionStatus status);

struct PoolConfig {
  Scheme scheme = Scheme::kRPoLv2;
  Hyperparams hp;
  std::int64_t epochs = 10;
  std::int64_t samples_q = 3;          // q, Sec. VII-A default
  CalibrationConfig calibration;
  double global_learning_rate = 1.0;   // eta of Eq. (1)
  std::uint64_t seed = 7;
  sim::NetworkSpec network;
  // Ablation switch: when false, calibrate only once (epoch 0) instead of
  // adapting every epoch.
  bool calibrate_every_epoch = true;
  // Future-work extension: verify each worker with a committee of its peers
  // (core/decentralized.h) instead of the manager alone. Committee members
  // re-execute with raw distance checks, so this composes with both RPoL
  // schemes' thresholds; requires >= verifiers_per_sample + 1 workers.
  bool decentralized_verification = false;
  std::int64_t verifiers_per_sample = 3;
  // Sec. V-B's Merkle construction: workers upload O(1) commitment roots
  // and sampled transitions travel with logarithmic membership proofs,
  // instead of the default ordered hash list.
  bool compact_commitments = false;
  // Fault environment on every manager<->worker link. nullptr keeps the
  // exact lossless accounting (no injector constructed); otherwise each
  // protocol leg retries under `retry` and a leg that exhausts the budget
  // fails the worker's session for this epoch.
  const fault::FaultPlan* fault_plan = nullptr;
  fault::RetryPolicy retry;
  // Graceful degradation: a worker whose sessions fail (transport
  // exhaustion or rejected verification) this many epochs in a row is
  // evicted and the pool continues each epoch with the survivors.
  std::int64_t eviction_threshold = 3;
  // Bounded-memory epochs (ROADMAP item 5): each worker streams its
  // checkpoints — hashed into the commitment and spilled to disk
  // (core/ckptstore.h) as they are produced — so no EpochTrace is ever
  // materialized, and verification fetches sampled states back through the
  // store. Commitments, verdicts, the global model, and every report field
  // are bitwise identical to the in-memory path (§6, pinned by
  // tests/runtime_determinism_test.cpp). Incompatible with
  // decentralized_verification (committees replay whole traces; the
  // constructor rejects the combination).
  bool streaming = false;
  // Hot-cache budget for the per-worker checkpoint stores; 0 resolves
  // RPOL_CKPT_BUDGET from the environment (256 MiB default).
  std::uint64_t ckpt_budget_bytes = 0;
};

struct WorkerSpec {
  std::unique_ptr<WorkerPolicy> policy;
  sim::DeviceProfile device;
};

struct EpochReport {
  std::int64_t epoch = 0;
  double test_accuracy = 0.0;
  std::vector<bool> accepted;            // per worker
  std::int64_t rejected_count = 0;
  double alpha = 0.0;
  double beta = 0.0;
  lsh::LshParams lsh_params;
  std::int64_t lsh_mismatches = 0;
  std::int64_t double_checks = 0;
  std::uint64_t bytes_this_epoch = 0;    // WAN traffic
  std::uint64_t worker_storage_bytes = 0;  // max per-worker checkpoint store
  std::int64_t manager_reexecuted_steps = 0;
  // Fault-environment accounting (all zero without a fault plan).
  std::vector<bool> participated;        // per worker: completed every leg
  std::vector<bool> evicted;             // per worker, cumulative
  std::int64_t session_failures = 0;     // legs lost to transport this epoch
  std::int64_t retransmissions = 0;      // extra transmissions this epoch
  std::int64_t evicted_count = 0;        // cumulative evictions so far
  // Typed per-worker outcome (kTimeout for lost sessions and sat-out
  // evicted workers, kVerdictRejected / kAccepted for judged ones,
  // kAdmissionRejected for submissions shed by a sharded manager).
  std::vector<SessionStatus> status;
  // Sharded-manager admission accounting (all zero on legacy runs).
  std::int64_t admission_enqueued = 0;   // submissions that entered a queue
  std::int64_t admission_requeued = 0;   // held in an overflow backlog first
  std::int64_t admission_rejected = 0;   // shed under the kReject policy
  std::int64_t max_queue_depth = 0;      // peak per-shard queue depth
};

struct PoolRunReport {
  std::vector<EpochReport> epochs;
  double final_accuracy = 0.0;
  std::uint64_t total_bytes = 0;
  std::int64_t total_session_failures = 0;
  std::int64_t total_retransmissions = 0;
};

// Everything one epoch accumulates between the pool's protocol phases
// (prepare -> train/commit -> verify -> finish). Built by
// MiningPool::prepare_epoch and consumed by finish_epoch; the sharded
// manager (core/sharded_pool.h) drives the per-worker phases from shard
// threads, which is why the layout is strictly split into
//
//   * shared, read-only-after-prepare fields (initial state, calibration
//     snapshot, LSH config/hasher), and
//   * one WorkerSlot per worker, touched only by phases for THAT worker —
//     slots of distinct workers never share mutable state, so phases for
//     different workers may run concurrently.
//
// All cross-worker mutation (network counters, report totals, health
// records, aggregation) is deferred to finish_epoch, which merges slots in
// worker-index order — the ordering that makes a sharded run's report and
// model bitwise identical to the sequential pool's (§6).
struct EpochWorkspace {
  std::int64_t epoch = 0;
  bool needs_rpol = false;

  // Shared protocol inputs, written by prepare_epoch only.
  TrainState initial;
  Digest initial_hash{};
  std::uint64_t model_bytes = 0;
  double alpha = 0.0;
  double beta = 0.0;
  lsh::LshParams lsh_params;
  std::optional<lsh::LshConfig> lsh_config;
  std::optional<lsh::PStableLsh> worker_hasher;
  const std::vector<bool>* trainable_mask = nullptr;
  sim::DeviceProfile verify_device;  // the pool's top device profile

  struct WorkerSlot {
    // Protocol artifacts.
    std::optional<fault::FaultInjector> injector;
    EpochContext context;
    EpochTrace trace;
    StreamedEpoch streamed;
    Commitment commitment;
    std::optional<CompactCommitment> compact;
    // Outcome facts (merged into EpochReport by finish_epoch).
    bool participated = true;
    bool accepted = true;
    SessionStatus status = SessionStatus::kAccepted;
    std::int64_t session_failures = 0;
    std::int64_t retransmissions = 0;
    std::int64_t rejected = 0;           // 1 when a verdict rejected
    std::int64_t lsh_mismatches = 0;
    std::int64_t double_checks = 0;
    std::int64_t reexecuted_steps = 0;
    std::uint64_t storage_bytes = 0;     // trace / store residency
    // Deferred WAN byte tallies, replayed into sim::Network in worker
    // order by finish_epoch (the network's counters are not thread-safe).
    std::uint64_t uploaded_bytes = 0;
    std::uint64_t downloaded_bytes = 0;
    // Telemetry (report-only wall clock).
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    // Bytes this slot charged to the checkpoint / merkle memory tags
    // (obs::mem_add is atomic; a shared MemScope would not be), released
    // by the workspace destructor.
    std::uint64_t mem_checkpoint = 0;
    std::uint64_t mem_merkle = 0;
  };
  std::vector<WorkerSlot> slots;

  // Shared (epoch-level) tag charges, also released by the destructor.
  std::uint64_t mem_checkpoint = 0;

  // Admission accounting, filled by the sharded manager (zero otherwise).
  std::int64_t admission_enqueued = 0;
  std::int64_t admission_requeued = 0;
  std::int64_t admission_rejected = 0;
  std::int64_t max_queue_depth = 0;

  // Roots the epoch's causal tree; alive for the workspace's lifetime so
  // pipelined epochs may overlap their spans.
  std::optional<obs::Span> epoch_span;

  EpochWorkspace() = default;
  EpochWorkspace(const EpochWorkspace&) = delete;
  EpochWorkspace& operator=(const EpochWorkspace&) = delete;
  ~EpochWorkspace();
};

class MiningPool {
 public:
  // `factory` builds the (address-encoded, if desired) task model; `train`
  // is partitioned into num_workers+1 i.i.d. parts, the manager keeping
  // part 0 for calibration. `workers` supplies one policy+device per worker.
  MiningPool(PoolConfig config, nn::ModelFactory factory,
             const data::Dataset& train, data::DatasetView test,
             std::vector<WorkerSpec> workers);

  PoolRunReport run();

  // Runs a single epoch; exposed so tests and benches can drive the
  // protocol step by step. Exactly the sequential composition of the phase
  // API below — prepare, train/commit and verify each worker in index
  // order, finish — so its results define the bitwise reference every
  // sharded schedule must reproduce.
  EpochReport run_epoch(std::int64_t epoch);

  // --- Phase API: the sharded manager's seam (core/sharded_pool.h). ---
  // Phases for DISTINCT workers touch only their own workspace slot and may
  // run concurrently; prepare/finish are single-threaded bookends. A
  // pipelined manager may hold two live workspaces (verify epoch N while
  // epoch N+1 trains): prepare_epoch(N+1) snapshots the global model BEFORE
  // finish_epoch(N) aggregates, which is the pipeline's (deterministic)
  // one-epoch staleness.
  std::unique_ptr<EpochWorkspace> prepare_epoch(std::int64_t epoch);
  // Steps 1-2 for one worker: state download, local training, commitment,
  // update/commitment upload. No-op (sit-out) for evicted workers.
  void train_commit_worker(EpochWorkspace& ws, std::size_t w);
  // Step 3 for one worker through `verifier` (the member verifier for the
  // sequential pool; a per-shard instance — see make_verifier /
  // configure_epoch_verifier — for sharded runs). No-op for kBaseline and
  // for workers whose session already failed.
  void verify_worker(EpochWorkspace& ws, std::size_t w, Verifier& verifier);
  // Merges slots in worker order: health records, eviction, aggregation
  // (Eq. 1), evaluation, WAN byte replay, report assembly.
  EpochReport finish_epoch(EpochWorkspace& ws);

  // A fresh verifier configured exactly like the pool's own (same sampling
  // seed) — one per shard, so shard threads never share verifier state.
  std::unique_ptr<Verifier> make_verifier() const;
  // Applies the workspace's calibration snapshot (beta, LSH config) to a
  // verifier; run once per epoch per shard verifier before verify_worker.
  void configure_epoch_verifier(EpochWorkspace& ws, Verifier& verifier) const;

  std::size_t num_workers() const { return workers_.size(); }
  const PoolConfig& config() const { return config_; }

  const std::vector<float>& global_model() const { return global_model_; }
  double evaluate_global();

  bool worker_evicted(std::size_t worker) const {
    return health_.evicted(worker);
  }
  // Per-worker health scores, states, and windowed session stats; eviction
  // decisions live here too (obs/health.h keeps them deterministic).
  const obs::HealthRegistry& health() const { return health_; }

 private:
  PoolConfig config_;
  nn::ModelFactory factory_;
  data::DatasetView test_;
  std::vector<data::DatasetView> partitions_;  // [0]=manager, [1..n]=workers
  std::vector<WorkerSpec> workers_;

  StepExecutor manager_executor_;  // evaluation + state templating
  std::vector<std::unique_ptr<StepExecutor>> worker_executors_;
  std::unique_ptr<Verifier> verifier_;
  sim::Network network_;

  std::vector<float> global_model_;     // current global model state vector
  std::vector<float> fresh_optimizer_;  // pristine optimizer state template
  CalibrationResult last_calibration_;
  bool calibrated_ = false;
  // Graceful-degradation bookkeeping: strike counting, eviction, and the
  // windowed health scores all live in the registry (one slot per worker).
  obs::HealthRegistry health_;
  // Long-lived model state: every executor (manager, verifier, one per
  // worker) holds a model+optimizer image for the pool's lifetime, plus the
  // pool's own global vectors. Charged once at construction, approximated
  // by the state-vector size.
  obs::MemScope state_mem_{obs::MemTag::kCheckpoint};

  TrainState initial_state() const;
  std::uint64_t worker_nonce(std::int64_t epoch, std::size_t worker) const;
  // Top-2 device profiles among the pool's registered workers.
  std::pair<sim::DeviceProfile, sim::DeviceProfile> top_two_devices() const;
  // One protocol leg for worker w under the fault environment: retries up
  // to the budget, tallies bytes/retransmissions into the worker's slot
  // (deferred; see EpochWorkspace), returns false when the budget is spent.
  bool deliver_leg(EpochWorkspace& ws, std::size_t w, int leg,
                   const char* counter, std::uint64_t bytes, bool upload,
                   std::size_t fanout);
};

}  // namespace rpol::core
