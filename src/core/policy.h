// Worker behaviours: honest training and the paper's adversaries.
//
// All policies consume the same epoch context (initial global state, nonce,
// sub-dataset) and emit an EpochTrace — the checkpoint sequence they are
// willing to commit to. Dishonest policies fabricate some or all
// checkpoints:
//
//   * ReplayPolicy (Adv1, Sec. VII-E): submits the previous global model
//     untouched — every checkpoint equals the initial state, no compute.
//   * SpoofPolicy (Adv2, Sec. VII-D/E): honestly trains a prefix of the
//     transitions, then extrapolates the remaining checkpoints with the
//     momentum-style heuristic of Eq. (12):
//       c_{i+1} = c_i + sum_j K_j (c_{i-j} - c_{i-j-1}) / sum_j K_j,
//       K_j = lambda^j.
//     This is the strongest low-cost forgery the paper evaluates: spoofed
//     checkpoints drift along the recent optimization trajectory.

#pragma once

#include <string>

#include "core/commitment.h"

namespace rpol::core {

struct EpochContext {
  std::int64_t epoch = 0;
  std::uint64_t nonce = 0;               // N_t^w from the manager
  TrainState initial;                    // global model + fresh optimizer
  const data::DatasetView* dataset = nullptr;
};

// Receives checkpoints one at a time as a policy produces them. The
// streaming pipeline (core/ckptstore.h) implements it by folding each state
// into a CommitmentBuilder and parking the bytes in a spill-backed
// CheckpointStore, so a streaming producer never owns the full chain.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void append(const TrainState& state) = 0;
};

// Trace metadata that travels alongside a streamed checkpoint sequence —
// everything EpochTrace carries except the checkpoints themselves.
struct StreamedTraceInfo {
  std::vector<std::int64_t> step_of;
  float mean_loss = 0.0F;
};

class WorkerPolicy {
 public:
  virtual ~WorkerPolicy() = default;
  virtual std::string name() const = 0;

  // Produces the epoch's checkpoint trace. `executor` is the worker's local
  // training engine; `device` its simulated hardware.
  virtual EpochTrace produce_trace(StepExecutor& executor,
                                   const EpochContext& context,
                                   sim::DeviceExecution& device) = 0;

  // Streams the epoch's checkpoints through `sink` instead of returning a
  // materialized EpochTrace. The default implementation calls
  // produce_trace and replays it — correct for every policy, bounded for
  // none. HonestPolicy overrides it with a loop whose resident set is one
  // checkpoint; both paths emit bitwise-identical states in the same order
  // (§6, proven by tests/runtime_determinism_test.cpp).
  virtual StreamedTraceInfo stream_trace(StepExecutor& executor,
                                         const EpochContext& context,
                                         sim::DeviceExecution& device,
                                         CheckpointSink& sink);

  // Fraction of transitions honestly computed (h_A of Sec. VI).
  virtual double honesty_ratio() const { return 1.0; }
};

class HonestPolicy : public WorkerPolicy {
 public:
  std::string name() const override { return "honest"; }
  EpochTrace produce_trace(StepExecutor& executor, const EpochContext& context,
                           sim::DeviceExecution& device) override;
  // Truly streaming honest epoch: each checkpoint goes to the sink the
  // moment it is saved and is never retained by the policy.
  StreamedTraceInfo stream_trace(StepExecutor& executor,
                                 const EpochContext& context,
                                 sim::DeviceExecution& device,
                                 CheckpointSink& sink) override;
};

class ReplayPolicy : public WorkerPolicy {
 public:
  std::string name() const override { return "adv1_replay"; }
  EpochTrace produce_trace(StepExecutor& executor, const EpochContext& context,
                           sim::DeviceExecution& device) override;
  double honesty_ratio() const override { return 0.0; }
};

class SpoofPolicy : public WorkerPolicy {
 public:
  // honest_fraction of the transitions are trained for real; the rest are
  // extrapolated via Eq. (12) with coefficient decay `lambda`.
  SpoofPolicy(double honest_fraction, double lambda = 0.5)
      : honest_fraction_(honest_fraction), lambda_(lambda) {}

  std::string name() const override { return "adv2_spoof"; }
  EpochTrace produce_trace(StepExecutor& executor, const EpochContext& context,
                           sim::DeviceExecution& device) override;
  double honesty_ratio() const override { return honest_fraction_; }

 private:
  double honest_fraction_;
  double lambda_;
};

// Fabricates model updates out of thin air: checkpoints follow a random
// walk from the initial state with plausible step magnitudes but no
// training behind them ("directly fabricate model updates", Sec. III-B).
class FabricationPolicy : public WorkerPolicy {
 public:
  explicit FabricationPolicy(float step_scale = 0.01F, std::uint64_t seed = 99)
      : step_scale_(step_scale), seed_(seed) {}

  std::string name() const override { return "fabricate"; }
  EpochTrace produce_trace(StepExecutor& executor, const EpochContext& context,
                           sim::DeviceExecution& device) override;
  double honesty_ratio() const override { return 0.0; }

 private:
  float step_scale_;
  std::uint64_t seed_;
};

// Cross-epoch replay: trains honestly ONCE, then re-submits that first
// trace every epoch (the classic replay attack of Sec. III-B). Defeated by
// the per-epoch nonce N_t^w: re-execution under the new nonce selects
// different batches, so the stale transitions no longer reproduce, and the
// stale C_0 no longer hash-matches the current global state.
class StaleReplayPolicy : public WorkerPolicy {
 public:
  std::string name() const override { return "stale_replay"; }
  EpochTrace produce_trace(StepExecutor& executor, const EpochContext& context,
                           sim::DeviceExecution& device) override;
  double honesty_ratio() const override { return 0.0; }

 private:
  std::optional<EpochTrace> recorded_;
};

// Eq. (12): extrapolates the next model vector from the history
// {c_1, ..., c_i} (c_i most recent). Requires history.size() >= 1; with a
// single point it degenerates to a copy.
std::vector<float> spoof_next_weights(
    const std::vector<const std::vector<float>*>& history, double lambda);

// Shared helper: the canonical honest transition loop. Starts from
// context.initial and appends one checkpoint per transition.
EpochTrace run_honest_transitions(StepExecutor& executor,
                                  const EpochContext& context,
                                  sim::DeviceExecution& device,
                                  std::int64_t transitions_to_run);

}  // namespace rpol::core
