// Reproduction-error measurement and adaptive LSH calibration (Sec. V-C).
//
// Before each epoch the manager runs its own i.i.d. sub-task once on each of
// the two best-performing device profiles registered in the pool: device A
// produces a reference trace, device B re-executes every transition from
// A's checkpoints — exactly the code path verification will take — and the
// per-transition weight distances are the epoch's reproduction errors.
//
// From those errors:
//   alpha = mean + stddev   (the paper's "measured maximum reproduction
//                            error" under its mean-plus-sd convention),
//   beta  = x * alpha + y   (default x=5, y=0, Sec. VII-D),
// and the LSH parameters are re-optimized for (alpha, beta) under the
// budget k*l <= K_lsh. The same machinery powers the Fig. 4 and Fig. 5
// experiments.

#pragma once

#include "core/policy.h"
#include "core/verifier.h"
#include "lsh/tuning.h"

namespace rpol::core {

// Per-transition reproduction errors: run the sub-task on (device_a, run A),
// then re-execute each transition on (device_b, run B) and measure model
// distances. The two runs may use the same profile with different run seeds
// ("same task on the same GPU") or different profiles.
std::vector<double> measure_reproduction_errors(
    const nn::ModelFactory& factory, const Hyperparams& hp,
    const EpochContext& context, const sim::DeviceProfile& device_a,
    std::uint64_t run_seed_a, const sim::DeviceProfile& device_b,
    std::uint64_t run_seed_b);

// The paper states alpha two ways: Sec. V-C sets it to the measured MAXIMUM
// reproduction error plus the standard deviation, Sec. VII-D to the MEAN
// plus the standard deviation. Both are provided; kMaxPlusSd is the more
// conservative choice and keeps FNR low when error distributions have
// occasional heavy-tail runs.
enum class AlphaMode { kMeanPlusSd, kMaxPlusSd };

struct CalibrationConfig {
  double beta_x = 5.0;   // beta = beta_x * alpha + beta_y
  double beta_y = 0.0;
  int k_lsh = 16;        // K_lsh budget of Eq. (6)
  AlphaMode alpha_mode = AlphaMode::kMeanPlusSd;
};

struct CalibrationResult {
  std::vector<double> errors;      // per transition
  double max_error = 0.0;
  double alpha = 0.0;
  double beta = 0.0;
  lsh::TuningResult lsh;           // optimized {r, k, l} + achieved probs
};

// Threshold derivation from an already-measured error distribution: alpha
// per the configured mode, beta = beta_x * alpha + beta_y, LSH re-optimized
// for (alpha, beta). Split out from calibrate_epoch so property tests can
// sweep synthetic error distributions without paying for training; the
// invariant it must uphold is that the honest trace used to calibrate is
// accepted (every measured error <= beta whenever beta_x >= 1 under
// kMaxPlusSd). Throws on an empty distribution.
CalibrationResult derive_thresholds(std::vector<double> errors,
                                    const CalibrationConfig& config);

// Full per-epoch calibration: measure errors on the top-2 devices, derive
// alpha/beta, optimize LSH.
CalibrationResult calibrate_epoch(const nn::ModelFactory& factory,
                                  const Hyperparams& hp,
                                  const EpochContext& manager_context,
                                  const sim::DeviceProfile& top_device,
                                  const sim::DeviceProfile& second_device,
                                  std::uint64_t epoch_seed,
                                  const CalibrationConfig& config);

}  // namespace rpol::core
