// Small statistics toolkit: moments and the Kolmogorov-Smirnov normality
// test the paper applies to reproduction errors (Sec. VII-C).

#pragma once

#include <vector>

namespace rpol::sim {

double mean(const std::vector<double>& xs);
// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(const std::vector<double>& xs);
double max_value(const std::vector<double>& xs);
double min_value(const std::vector<double>& xs);

// p-th percentile (p in [0, 100]) with linear interpolation between order
// statistics (the common "R-7" definition): p=0 is the minimum, p=100 the
// maximum, p=50 the median. Copies and sorts internally; throws on an empty
// sample. Shared by the trace analyzer's latency summaries (src/obs) and
// the bench harness so every quantile in the repo means the same thing.
double percentile(const std::vector<double>& xs, double p);

// Same quantile over an ALREADY ASCENDING-SORTED sample — the single-sort
// path for callers that need several quantiles of one distribution
// (bench::summarize_latencies). p=0 returns the front, p=100 the back,
// single-element and duplicate-heavy samples interpolate to the obvious
// constants. Throws on an empty sample, like percentile().
double percentile_sorted(const std::vector<double>& sorted, double p);

struct KsTestResult {
  double statistic = 0.0;   // sup |F_empirical - F_normal(mean, sd)|
  double p_value = 0.0;     // asymptotic Kolmogorov distribution
  bool normal_at_5pct = false;
};

// One-sample KS test against N(mean(xs), sd(xs)). Estimating parameters
// from the sample makes the test approximate (Lilliefors would be exact);
// adequate for the qualitative normality check the paper performs.
KsTestResult ks_normality_test(const std::vector<double>& xs);

}  // namespace rpol::sim
