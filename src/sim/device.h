// Simulated GPU devices: training nondeterminism and throughput.
//
// Substitution (DESIGN.md §1): the paper measures DNN reproduction errors
// across NVIDIA GPUs (RTX 3090, A10, P100, T4). Real CUDA nondeterminism
// comes from atomic-add reduction orders and cuDNN algorithm selection; its
// observable effect is a small random perturbation of each training step
// (the epsilon_t of Eq. 2). We model exactly that observable: a device
// perturbs every gradient with zero-mean Gaussian noise whose relative
// magnitude grows with the device's FP32 throughput (faster parts use more
// parallel reduction, hence more reordering — the paper's empirical Fig. 4
// trend). Each (device, run) pair gets its own noise stream, so the same
// task re-run on the same device still differs slightly, and runs on
// different devices differ more — both Fig. 4 findings hold by construction.
//
// The same profile supplies a throughput model used to *simulate* wall-clock
// training times for the paper's real-scale tasks (Tables II/III).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/rng.h"

namespace rpol::sim {

struct DeviceProfile {
  std::string name;
  double tflops_fp32 = 10.0;    // peak FP32 throughput, TFLOPs
  // Sustained fraction of peak FP32 throughput for DNN training. 0.17
  // reproduces the paper's measured per-image times (ResNet50 on GA10:
  // ~2.4 ms/image, Table II/III).
  double efficiency = 0.17;
  double noise_rel = 2e-4;      // relative per-step gradient noise (sigma)

  // Simulated seconds to process `flops` of training work.
  double compute_seconds(double flops) const {
    return flops / (tflops_fp32 * 1e12 * efficiency);
  }
};

// The four GPUs of Sec. VII-C, FP32 numbers from the paper:
// G3090 35.7 TF, GA10 31.2 TF, GP100 10.6 TF, GT4 8.1 TF.
DeviceProfile device_g3090();
DeviceProfile device_ga10();
DeviceProfile device_gp100();
DeviceProfile device_gt4();
std::vector<DeviceProfile> all_devices();

// Builds the relative noise level for a given FP32 throughput. Calibrated so
// GT4 ~ 1.5e-4 and G3090 ~ 3.2e-4 — small enough that training converges,
// large enough that reproduction distances are cleanly measurable.
double noise_rel_for_tflops(double tflops);

// A device executing a specific run: owns the noise stream. Separate run ids
// on the same device model the paper's "errors exist even for the same tasks
// on the same GPUs".
class DeviceExecution {
 public:
  DeviceExecution(DeviceProfile profile, std::uint64_t run_seed);

  const DeviceProfile& profile() const { return profile_; }

  // Applies epsilon_t of Eq. 2: perturbs every trainable gradient by
  // N(0, (noise_rel * rms(grad))^2) elementwise. Call between backward()
  // and optimizer step().
  void perturb_gradients(const std::vector<nn::Param*>& params);

 private:
  DeviceProfile profile_;
  Rng rng_;
};

}  // namespace rpol::sim
