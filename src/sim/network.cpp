#include "sim/network.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace rpol::sim {

Network::Network(NetworkSpec spec, std::size_t num_workers)
    : spec_(spec), workers_(num_workers) {
  if (num_workers == 0) throw std::invalid_argument("network needs >= 1 worker");
}

double Network::transfer_seconds(std::uint64_t bytes, std::size_t concurrent) const {
  if (concurrent == 0) throw std::invalid_argument("concurrent must be >= 1");
  const double manager_share =
      spec_.manager_bandwidth_bps / static_cast<double>(concurrent);
  const double effective_bps = std::min(spec_.worker_bandwidth_bps, manager_share);
  return spec_.latency_seconds +
         static_cast<double>(bytes) * 8.0 / effective_bps;
}

double Network::upload(std::size_t worker, std::uint64_t bytes,
                       std::size_t concurrent) {
  workers_.at(worker).bytes_sent += bytes;
  manager_.bytes_received += bytes;
  return transfer_seconds(bytes, concurrent);
}

double Network::download(std::size_t worker, std::uint64_t bytes,
                         std::size_t concurrent) {
  workers_.at(worker).bytes_received += bytes;
  manager_.bytes_sent += bytes;
  return transfer_seconds(bytes, concurrent);
}

std::uint64_t Network::total_bytes() const {
  // Every byte crosses the WAN once; count the manager side only.
  return manager_.total();
}

void Network::reset_counters() {
  manager_ = TrafficCounter{};
  for (auto& w : workers_) w = TrafficCounter{};
}

std::string format_gb(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fGB",
                static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  return buf;
}

}  // namespace rpol::sim
