#include "sim/model_specs.h"

namespace rpol::sim {

namespace {
constexpr std::uint64_t kMB = 1024ULL * 1024ULL;
}

RealModelSpec real_resnet18() {
  // 11.69M params; ~1.82 GFLOPs forward per 224px image, x3 for fwd+bwd.
  return {"ResNet18", 11'690'000ULL, 44ULL * kMB + 700ULL * 1024ULL, 5.5e9};
}

RealModelSpec real_resnet50() {
  // Paper: ResNet50 weight size 90.7 MB. ~4.1 GFLOPs forward per image.
  return {"ResNet50", 23'770'000ULL,
          static_cast<std::uint64_t>(90.7 * static_cast<double>(kMB)), 12.3e9};
}

RealModelSpec real_vgg16() {
  // Paper: VGG16 weight size 527 MB. ~15.5 GFLOPs forward per image.
  // Utilization 1.76: VGG's 3x3x512 GEMMs sustain ~30% of peak vs the
  // ResNet bottleneck mix's ~17%.
  return {"VGG16", 138'360'000ULL, 527ULL * kMB, 46.5e9, 1.76};
}

RealDatasetSpec real_cifar10() {
  return {"CIFAR-10", 50'000ULL, 3ULL * 32 * 32};
}

RealDatasetSpec real_cifar100() {
  return {"CIFAR-100", 50'000ULL, 3ULL * 32 * 32};
}

RealDatasetSpec real_imagenet() {
  // Paper: 1,281,167 training images; ~110 KB average JPEG.
  return {"ImageNet", 1'281'167ULL, 110ULL * 1024ULL};
}

std::vector<ConvLayerShape> resnet18_conv_shapes() {
  // Distinct 3x3 conv shapes of ResNet18 at 224px input (He et al. 2016).
  // conv1 is the 7x7 stem; each residual stage contributes four 3x3 convs
  // sharing one shape (the stage-entry stride-2 conv is listed separately).
  return {
      {"conv1", 3, 64, 7, 2, 3, 224, 224, 1},
      {"conv2_x", 64, 64, 3, 1, 1, 56, 56, 4},
      {"conv3_entry", 64, 128, 3, 2, 1, 56, 56, 1},
      {"conv3_x", 128, 128, 3, 1, 1, 28, 28, 3},
      {"conv4_entry", 128, 256, 3, 2, 1, 28, 28, 1},
      {"conv4_x", 256, 256, 3, 1, 1, 14, 14, 3},
      {"conv5_entry", 256, 512, 3, 2, 1, 14, 14, 1},
      {"conv5_x", 512, 512, 3, 1, 1, 7, 7, 3},
  };
}

std::vector<ConvLayerShape> vgg16_conv_shapes() {
  // Distinct 3x3 conv shapes of VGG16 at 224px input (Simonyan 2015).
  return {
      {"conv1_1", 3, 64, 3, 1, 1, 224, 224, 1},
      {"conv1_2", 64, 64, 3, 1, 1, 224, 224, 1},
      {"conv2_1", 64, 128, 3, 1, 1, 112, 112, 1},
      {"conv2_2", 128, 128, 3, 1, 1, 112, 112, 1},
      {"conv3_1", 128, 256, 3, 1, 1, 56, 56, 1},
      {"conv3_x", 256, 256, 3, 1, 1, 56, 56, 2},
      {"conv4_1", 256, 512, 3, 1, 1, 28, 28, 1},
      {"conv4_x", 512, 512, 3, 1, 1, 28, 28, 2},
      {"conv5_x", 512, 512, 3, 1, 1, 14, 14, 3},
  };
}

}  // namespace rpol::sim
