#include "sim/model_specs.h"

namespace rpol::sim {

namespace {
constexpr std::uint64_t kMB = 1024ULL * 1024ULL;
}

RealModelSpec real_resnet18() {
  // 11.69M params; ~1.82 GFLOPs forward per 224px image, x3 for fwd+bwd.
  return {"ResNet18", 11'690'000ULL, 44ULL * kMB + 700ULL * 1024ULL, 5.5e9};
}

RealModelSpec real_resnet50() {
  // Paper: ResNet50 weight size 90.7 MB. ~4.1 GFLOPs forward per image.
  return {"ResNet50", 23'770'000ULL,
          static_cast<std::uint64_t>(90.7 * static_cast<double>(kMB)), 12.3e9};
}

RealModelSpec real_vgg16() {
  // Paper: VGG16 weight size 527 MB. ~15.5 GFLOPs forward per image.
  // Utilization 1.76: VGG's 3x3x512 GEMMs sustain ~30% of peak vs the
  // ResNet bottleneck mix's ~17%.
  return {"VGG16", 138'360'000ULL, 527ULL * kMB, 46.5e9, 1.76};
}

RealDatasetSpec real_cifar10() {
  return {"CIFAR-10", 50'000ULL, 3ULL * 32 * 32};
}

RealDatasetSpec real_cifar100() {
  return {"CIFAR-100", 50'000ULL, 3ULL * 32 * 32};
}

RealDatasetSpec real_imagenet() {
  // Paper: 1,281,167 training images; ~110 KB average JPEG.
  return {"ImageNet", 1'281'167ULL, 110ULL * 1024ULL};
}

}  // namespace rpol::sim
