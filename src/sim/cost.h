// Capital cost model (Table III).
//
// Prices are the paper's Alibaba-cloud figures: GA10 compute $1.33/hour,
// WAN traffic $0.12/GB, storage $5 per 100 GB-month (= $0.05/GB-month).
// Storage is charged for the duration of one epoch expressed as a fraction
// of a month, matching the paper's per-epoch cost framing.

#pragma once

#include <cstdint>

namespace rpol::sim {

struct CostModel {
  double gpu_usd_per_hour = 1.33;
  double wan_usd_per_gb = 0.12;
  double storage_usd_per_gb_month = 0.05;

  double compute_cost(double gpu_seconds) const {
    return gpu_usd_per_hour * gpu_seconds / 3600.0;
  }
  double comm_cost(std::uint64_t bytes) const {
    return wan_usd_per_gb * static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
  }
  double storage_cost(std::uint64_t bytes, double months) const {
    return storage_usd_per_gb_month *
           static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0) * months;
  }
};

// Itemized capital cost for one scheme run.
struct CostBreakdown {
  double compute_usd = 0.0;
  double comm_usd = 0.0;
  double storage_usd = 0.0;

  double total() const { return compute_usd + comm_usd + storage_usd; }
};

}  // namespace rpol::sim
