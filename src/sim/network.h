// Wide-area network model and traffic accounting.
//
// Sec. VII-E's setting: one manager on a 10 Gbps link, workers on 100 Mbps
// links. Protocol messages are real byte buffers; this module converts their
// sizes into deterministic transfer times and keeps per-entity up/down
// counters so Tables II and III can report communication volume and epoch
// wall time.
//
// Timing model for one transfer of B bytes between worker w and manager M:
//     t = latency + B / min(worker_bw, manager_share)
// where manager_share = manager_bw / concurrent_streams models the manager
// link being divided across workers that talk simultaneously.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rpol::sim {

struct NetworkSpec {
  double manager_bandwidth_bps = 10e9;   // 10 Gbps
  double worker_bandwidth_bps = 100e6;   // 100 Mbps
  double latency_seconds = 0.02;         // WAN round-trip contribution
};

// Aggregated traffic counters for one entity.
struct TrafficCounter {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  std::uint64_t total() const { return bytes_sent + bytes_received; }
};

class Network {
 public:
  explicit Network(NetworkSpec spec, std::size_t num_workers);

  const NetworkSpec& spec() const { return spec_; }

  // Transfer worker -> manager; returns simulated seconds. `concurrent`
  // is how many workers perform this transfer at the same time (>= 1).
  double upload(std::size_t worker, std::uint64_t bytes, std::size_t concurrent = 1);

  // Transfer manager -> worker; returns simulated seconds.
  double download(std::size_t worker, std::uint64_t bytes,
                  std::size_t concurrent = 1);

  const TrafficCounter& manager_traffic() const { return manager_; }
  const TrafficCounter& worker_traffic(std::size_t worker) const {
    return workers_.at(worker);
  }
  std::uint64_t total_bytes() const;

  void reset_counters();

 private:
  double transfer_seconds(std::uint64_t bytes, std::size_t concurrent) const;

  NetworkSpec spec_;
  TrafficCounter manager_;
  std::vector<TrafficCounter> workers_;
};

// Pretty-printing helper (GB with two decimals).
std::string format_gb(std::uint64_t bytes);

}  // namespace rpol::sim
