#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rpol::sim {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean of empty sample");
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double max_value(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double min_value(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument("percentile of empty sample");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile p must be in [0, 100]");
  }
  const double rank =
      p / 100.0 * static_cast<double>(sorted.size() - 1);  // R-7
  const std::size_t lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double percentile(const std::vector<double>& xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

namespace {
double normal_cdf(double x, double mu, double sigma) {
  return 0.5 * std::erfc(-(x - mu) / (sigma * std::sqrt(2.0)));
}

// Kolmogorov distribution tail: P(D > d) approx 2 sum (-1)^{j-1} exp(-2 j^2 t^2)
double kolmogorov_p(double t) {
  if (t <= 0.0) return 1.0;
  double sum = 0.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * t * t);
    sum += ((j % 2 == 1) ? 1.0 : -1.0) * term;
    if (term < 1e-12) break;
  }
  return std::min(1.0, std::max(0.0, 2.0 * sum));
}
}  // namespace

KsTestResult ks_normality_test(const std::vector<double>& xs) {
  if (xs.size() < 3) throw std::invalid_argument("KS test needs >= 3 samples");
  const double mu = mean(xs);
  const double sigma = stddev(xs);
  if (sigma <= 0.0) {
    // Degenerate sample: all values equal; trivially not testable, report
    // non-normal with zero p-value.
    return {1.0, 0.0, false};
  }
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = normal_cdf(sorted[i], mu, sigma);
    const double upper = (static_cast<double>(i) + 1.0) / n - cdf;
    const double lower = cdf - static_cast<double>(i) / n;
    d = std::max(d, std::max(upper, lower));
  }
  const double t = d * (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n));
  const double p = kolmogorov_p(t);
  return {d, p, p > 0.05};
}

}  // namespace rpol::sim
