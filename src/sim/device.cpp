#include "sim/device.h"

#include <cmath>

namespace rpol::sim {

double noise_rel_for_tflops(double tflops) {
  // sqrt scaling: noise grows sub-linearly with throughput, matching the
  // paper's "slightly increase as GPU performance improves".
  return 1.7e-4 * std::sqrt(tflops / 10.0);
}

namespace {
DeviceProfile make_device(std::string name, double tflops) {
  DeviceProfile d;
  d.name = std::move(name);
  d.tflops_fp32 = tflops;
  d.noise_rel = noise_rel_for_tflops(tflops);
  return d;
}
}  // namespace

DeviceProfile device_g3090() { return make_device("G3090", 35.7); }
DeviceProfile device_ga10() { return make_device("GA10", 31.2); }
DeviceProfile device_gp100() { return make_device("GP100", 10.6); }
DeviceProfile device_gt4() { return make_device("GT4", 8.1); }

std::vector<DeviceProfile> all_devices() {
  return {device_g3090(), device_ga10(), device_gp100(), device_gt4()};
}

namespace {
// Deterministic (cross-platform) name hash: FNV-1a 64.
std::uint64_t name_hash(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

DeviceExecution::DeviceExecution(DeviceProfile profile, std::uint64_t run_seed)
    : profile_(std::move(profile)),
      rng_(derive_seed(run_seed, name_hash(profile_.name))) {}

void DeviceExecution::perturb_gradients(const std::vector<nn::Param*>& params) {
  if (profile_.noise_rel <= 0.0) return;
  for (nn::Param* p : params) {
    if (!p->trainable) continue;
    float* g = p->grad.data();
    const std::int64_t n = p->grad.numel();
    if (n == 0) continue;
    double sq = 0.0;
    for (std::int64_t i = 0; i < n; ++i) sq += static_cast<double>(g[i]) * g[i];
    const float rms = static_cast<float>(std::sqrt(sq / static_cast<double>(n)));
    const float sigma = static_cast<float>(profile_.noise_rel) * rms;
    if (sigma <= 0.0F) continue;
    for (std::int64_t i = 0; i < n; ++i) g[i] += sigma * rng_.next_normal();
  }
}

}  // namespace rpol::sim
