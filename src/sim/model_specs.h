// Real-scale model and dataset descriptors for the cost/time model.
//
// The Mini* models in src/nn exercise the protocol logic; the *numbers* in
// Tables II and III depend on the true sizes of ResNet50/VGG16 and ImageNet.
// These descriptors carry the published figures (parameter bytes straight
// from the paper where it states them: ResNet50 90.7 MB, VGG16 527 MB).

#pragma once

#include <cstdint>
#include <string>

namespace rpol::sim {

struct RealModelSpec {
  std::string name;
  std::uint64_t parameter_count = 0;
  std::uint64_t weight_bytes = 0;           // fp32 serialized size
  double train_flops_per_example = 0.0;     // fwd+bwd FLOPs per image
  // Architecture-specific GPU utilization relative to the DeviceProfile
  // baseline (ResNet-style = 1.0). VGG's large dense convolutions sustain a
  // higher fraction of peak FLOPs, which Table II's timings reflect.
  double device_utilization_scale = 1.0;
};

struct RealDatasetSpec {
  std::string name;
  std::uint64_t num_examples = 0;
  std::uint64_t bytes_per_example = 0;
};

RealModelSpec real_resnet18();
RealModelSpec real_resnet50();
RealModelSpec real_vgg16();

RealDatasetSpec real_cifar10();
RealDatasetSpec real_cifar100();
RealDatasetSpec real_imagenet();

}  // namespace rpol::sim
