// Real-scale model and dataset descriptors for the cost/time model.
//
// The Mini* models in src/nn exercise the protocol logic; the *numbers* in
// Tables II and III depend on the true sizes of ResNet50/VGG16 and ImageNet.
// These descriptors carry the published figures (parameter bytes straight
// from the paper where it states them: ResNet50 90.7 MB, VGG16 527 MB).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rpol::sim {

struct RealModelSpec {
  std::string name;
  std::uint64_t parameter_count = 0;
  std::uint64_t weight_bytes = 0;           // fp32 serialized size
  double train_flops_per_example = 0.0;     // fwd+bwd FLOPs per image
  // Architecture-specific GPU utilization relative to the DeviceProfile
  // baseline (ResNet-style = 1.0). VGG's large dense convolutions sustain a
  // higher fraction of peak FLOPs, which Table II's timings reflect.
  double device_utilization_scale = 1.0;
};

struct RealDatasetSpec {
  std::string name;
  std::uint64_t num_examples = 0;
  std::uint64_t bytes_per_example = 0;
};

RealModelSpec real_resnet18();
RealModelSpec real_resnet50();
RealModelSpec real_vgg16();

RealDatasetSpec real_cifar10();
RealDatasetSpec real_cifar100();
RealDatasetSpec real_imagenet();

// Per-layer convolution shape of a real architecture at its canonical
// ImageNet input resolution (224x224). These drive the micro-benchmarks
// (bench/bench_micro.cpp): the im2col-GEMM for a layer has
//   M = out_channels, K = in_channels * kernel^2, N = batch * out_h * out_w,
// so kernel performance at exactly these shapes is what the paper's
// epoch-time tables are made of. One entry per distinct shape; `repeats`
// counts how many layers in the network share it.
struct ConvLayerShape {
  std::string layer;  // stage name, e.g. "conv2_x"
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 1;
  std::int64_t in_h = 0;  // input spatial size at this layer
  std::int64_t in_w = 0;
  int repeats = 1;

  std::int64_t out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }
  // im2col-GEMM dimensions at batch size `n`.
  std::int64_t gemm_m() const { return out_channels; }
  std::int64_t gemm_k() const { return in_channels * kernel * kernel; }
  std::int64_t gemm_n(std::int64_t n) const { return n * out_h() * out_w(); }
};

std::vector<ConvLayerShape> resnet18_conv_shapes();
std::vector<ConvLayerShape> vgg16_conv_shapes();

}  // namespace rpol::sim
