#include "runtime/thread_pool.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace rpol::runtime {

namespace {

constexpr int kMaxThreads = 256;

// True while the current thread is executing a parallel_for slice; nested
// calls then run inline (deterministic either way, but this avoids
// deadlocking the pool on itself).
thread_local bool t_in_worker = false;

int default_thread_count() {
  if (const char* env = std::getenv("RPOL_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(std::min<long>(parsed, kMaxThreads));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, kMaxThreads));
}

int hw_cores() {
  static const int cores = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return cores;
}

// Persistent pool: N-1 parked worker threads plus the calling thread.
// Each job is a fixed vector of slices; worker w always takes slice w+1
// and the caller takes slice 0 — static assignment, no stealing.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int threads() const { return num_threads_; }

  void set_threads(int n) {
    n = std::clamp(n, 1, kMaxThreads);
    if (n == num_threads_) return;
    stop_workers();
    num_threads_ = n;
    spawn_workers();
  }

  void run(std::int64_t begin, std::int64_t end, std::int64_t grain,
           const RangeFn& fn) {
    const std::int64_t range = end - begin;
    if (range <= 0) return;
    grain = std::max<std::int64_t>(grain, 1);
    const std::int64_t max_slices = std::max<std::int64_t>(range / grain, 1);
    const int slices = static_cast<int>(
        std::min<std::int64_t>(max_slices, num_threads_));
    // Scheduling telemetry (write-only; slicing never depends on it).
    if (obs::enabled()) {
      obs::count("runtime.parallel_for.calls", 1);
      obs::gauge("runtime.threads").set(static_cast<double>(num_threads_));
    }
    if (slices <= 1 || t_in_worker) {
      if (obs::enabled()) obs::count("runtime.parallel_for.inline", 1);
      fn(begin, end);
      return;
    }
    // Oversubscription guard: the requested thread count pins the slice
    // decomposition above — partition boundaries (and therefore which
    // per-element chains share a panel) are the same on every host. But on
    // a single-core host the parked workers can only fight the caller for
    // that core, so execute the identical slices serially instead of
    // dispatching them. Bitwise this is a no-op by the §6 contract (every
    // element is computed wholly inside one slice); it only removes wakeup
    // and preemption overhead.
    if (hw_cores() <= 1) {
      if (obs::enabled()) {
        obs::count("runtime.parallel_for.slices",
                   static_cast<std::uint64_t>(slices));
        obs::count("runtime.parallel_for.serialized", 1);
      }
      const std::int64_t base = range / slices;
      const std::int64_t rem = range % slices;
      std::int64_t cursor = begin;
      for (int s = 0; s < slices; ++s) {
        const std::int64_t len = base + (s < rem ? 1 : 0);
        fn(cursor, cursor + len);
        cursor += len;
      }
      return;
    }
    // One job at a time: a concurrent external caller falls back to inline
    // serial execution (same bits, no deadlock) instead of queueing.
    std::unique_lock<std::mutex> job_guard(run_mutex_, std::try_to_lock);
    if (!job_guard.owns_lock()) {
      if (obs::enabled()) obs::count("runtime.parallel_for.inline", 1);
      fn(begin, end);
      return;
    }
    if (obs::enabled()) {
      obs::count("runtime.parallel_for.slices",
                 static_cast<std::uint64_t>(slices));
    }

    std::int64_t own_lo = 0, own_hi = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      slices_.clear();
      const std::int64_t base = range / slices;
      const std::int64_t rem = range % slices;
      std::int64_t cursor = begin;
      for (int s = 0; s < slices; ++s) {
        const std::int64_t len = base + (s < rem ? 1 : 0);
        slices_.emplace_back(cursor, cursor + len);
        cursor += len;
      }
      job_fn_ = &fn;
      job_error_ = nullptr;
      pending_acks_ = num_threads_ - 1;
      ++job_epoch_;
      own_lo = slices_[0].first;
      own_hi = slices_[0].second;
    }
    cv_start_.notify_all();

    // The caller owns slice 0; workers own slices 1..slices-1.
    run_slice(fn, own_lo, own_hi);

    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_acks_ == 0; });
    job_fn_ = nullptr;
    if (job_error_) std::rethrow_exception(job_error_);
  }

 private:
  ThreadPool() : num_threads_(default_thread_count()) { spawn_workers(); }

  ~ThreadPool() { stop_workers(); }

  void run_slice(const RangeFn& fn, std::int64_t lo, std::int64_t hi) {
    t_in_worker = true;
    try {
      fn(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job_error_) job_error_ = std::current_exception();
    }
    t_in_worker = false;
  }

  void worker_main(int worker_id, std::uint64_t seen_epoch) {
    for (;;) {
      const RangeFn* fn = nullptr;
      std::int64_t lo = 0, hi = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_start_.wait(lock,
                       [&] { return stop_ || job_epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = job_epoch_;
        const std::size_t slot = static_cast<std::size_t>(worker_id) + 1;
        if (slot < slices_.size()) {
          fn = job_fn_;
          lo = slices_[slot].first;
          hi = slices_[slot].second;
        }
      }
      if (fn != nullptr) run_slice(*fn, lo, hi);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_acks_ == 0) cv_done_.notify_all();
      }
    }
  }

  void spawn_workers() {
    stop_ = false;
    const std::uint64_t epoch0 = job_epoch_;  // no job in flight here
    workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
    for (int w = 0; w < num_threads_ - 1; ++w) {
      workers_.emplace_back([this, w, epoch0] { worker_main(w, epoch0); });
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      ++job_epoch_;  // wake workers even if they never saw a job
    }
    cv_start_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::vector<std::pair<std::int64_t, std::int64_t>> slices_;
  const RangeFn* job_fn_ = nullptr;
  std::exception_ptr job_error_;
  std::uint64_t job_epoch_ = 0;
  int pending_acks_ = 0;
  int num_threads_ = 1;
  bool stop_ = false;
};

}  // namespace

int threads() { return ThreadPool::instance().threads(); }

void set_threads(int n) { ThreadPool::instance().set_threads(n); }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const RangeFn& fn) {
  ThreadPool::instance().run(begin, end, grain, fn);
}

void parallel_for_aligned(std::int64_t count, std::int64_t align,
                          std::int64_t grain, const RangeFn& fn) {
  if (count <= 0) return;
  align = std::max<std::int64_t>(align, 1);
  // Partition whole blocks; the last block absorbs the unaligned tail.
  const std::int64_t blocks = (count + align - 1) / align;
  ThreadPool::instance().run(
      0, blocks, grain, [&](std::int64_t b0, std::int64_t b1) {
        fn(b0 * align, std::min(count, b1 * align));
      });
}

}  // namespace rpol::runtime
