// Deterministic parallel compute runtime.
//
// RPoL's protocol depends on *bitwise* reproducible training: the verifier
// re-executes a worker's steps and compares checkpoint hashes, so the
// numeric result of every kernel must be independent of how many threads
// happen to run it. This rules out the usual tricks (atomic float
// reductions, dynamic work stealing, thread-count-dependent accumulation
// splits). The runtime therefore provides exactly one primitive:
//
//   parallel_for(begin, end, grain, fn)
//
// which *statically* partitions [begin, end) into contiguous slices, one
// per participating thread, and invokes fn(slice_begin, slice_end) on each.
// Every output element is owned by exactly one slice, and kernels built on
// top of it keep the per-element accumulation loop serial and in a fixed
// order, so 1-thread and N-thread runs produce identical bits. See
// DESIGN.md "Compute runtime & determinism contract".
//
// Thread count resolution order:
//   1. runtime::set_threads(n)        — explicit API, highest priority
//   2. RPOL_THREADS environment var   — read once at first use
//   3. std::thread::hardware_concurrency()
//
// The pool is persistent (workers are spawned once and parked between
// kernels) and work-stealing-free. parallel_for called from inside a worker
// runs inline on the calling thread — nested parallelism never deadlocks
// and never changes results.
//
// The slice decomposition depends only on the requested thread count, never
// on the hardware: on a single-core host the same slices are executed
// serially by the caller (oversubscribed workers would only add preemption
// overhead), which by the determinism contract cannot change any bit.

#pragma once

#include <cstdint>
#include <functional>

namespace rpol::runtime {

// fn receives a half-open index slice [slice_begin, slice_end).
using RangeFn = std::function<void(std::int64_t, std::int64_t)>;

// Number of threads parallel_for may use (including the calling thread).
int threads();

// Sets the thread count (clamped to [1, 256]); resizes the persistent pool.
// Not safe to call concurrently with parallel_for.
void set_threads(int n);

// Runs fn over a static contiguous partition of [begin, end). `grain` is
// the minimum slice width: ranges shorter than 2*grain (or a pool of one
// thread, or a call made from inside a worker) run inline on the caller.
// Exceptions thrown by fn are rethrown on the calling thread after all
// slices finish. Partitioning only decides WHICH thread computes a slice;
// callers must keep per-element math independent of slice boundaries
// (see header comment) for the determinism guarantee to hold.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const RangeFn& fn);

// Panel-partitioned variant: runs fn over [0, count) with every partition
// boundary a multiple of `align`. Kernels whose micro-panels span `align`
// consecutive outputs (4-row GEMM panels, 8-channel layout blocks) need
// alignment so a panel never straddles two threads — otherwise the panel
// code path (and with it the FMA contraction pattern) would depend on where
// the thread boundaries happen to fall. `grain` is the minimum number of
// ALIGNED BLOCKS per slice, mirroring parallel_for's meaning. fn still
// receives element (not block) indices; the final slice's end is `count`
// itself, which may be unaligned (the global tail).
void parallel_for_aligned(std::int64_t count, std::int64_t align,
                          std::int64_t grain, const RangeFn& fn);

}  // namespace rpol::runtime
