// Pool mining scenario: the workload from the paper's introduction — a
// mining pool of heterogeneous workers collaboratively trains a model for a
// PoUW task while a third of them try to freeload.
//
// Shows the high-level MiningPool API: configure a scheme (Baseline /
// RPoLv1 / RPoLv2), register worker policies and devices, and run. Prints a
// per-epoch protocol report: adaptive alpha/beta, LSH parameters, detected
// cheaters, traffic, and test accuracy — then compares schemes.
//
// Run: ./build/examples/pool_mining
// With RPOL_TRACE=1 the run also writes rpol_trace.jsonl (protocol spans +
// metrics) and rpol_health.jsonl (per-worker health scores + memory
// accounting); summarize with `rpol trace` / `rpol health`.

#include <chrono>
#include <cstdio>
#include <optional>

#include "core/pool.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "obs/health.h"
#include "obs/mem.h"
#include "obs/obs.h"

using namespace rpol;

namespace {

std::vector<core::WorkerSpec> build_workers() {
  // 9 workers: 3 replay freeloaders (Adv1), 6 honest, on mixed GPUs.
  std::vector<core::WorkerSpec> workers;
  const auto devices = sim::all_devices();
  for (std::size_t w = 0; w < 9; ++w) {
    core::WorkerSpec spec;
    if (w < 3) {
      spec.policy = std::make_unique<core::ReplayPolicy>();
    } else {
      spec.policy = std::make_unique<core::HonestPolicy>();
    }
    spec.device = devices[w % devices.size()];
    workers.push_back(std::move(spec));
  }
  return workers;
}

}  // namespace

int main() {
  // Shared task: 10-class blobs, split 80/20 train/test.
  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_examples = 4096;
  data_cfg.num_classes = 10;
  data_cfg.features = 32;
  data_cfg.class_separation = 1.2F;
  const data::Dataset dataset = data::make_synthetic_blobs(data_cfg);
  const data::TrainTestSplit split = data::train_test_split(dataset, 0.2, 11);

  core::Hyperparams hp;
  hp.learning_rate = 0.015F;
  hp.batch_size = 32;
  hp.steps_per_epoch = 10;
  hp.checkpoint_interval = 2;

  const nn::ModelFactory factory = nn::mlp_factory(32, {32, 16}, 10, 5);

  double baseline_acc = 0.0;
  // Sample peak RSS while the RPoLv2 pool is built and run (write-only
  // observation); the summary rides along in the rpol.health.v1 export
  // below. The window brackets only the measured pool so its growth is
  // attributable to that pool's tagged subsystems.
  std::optional<obs::RssSampler> rss;
  for (const core::Scheme scheme :
       {core::Scheme::kBaseline, core::Scheme::kRPoLv2}) {
    core::PoolConfig cfg;
    cfg.scheme = scheme;
    cfg.hp = hp;
    cfg.epochs = 8;
    cfg.samples_q = 3;
    cfg.seed = 123;
    if (scheme == core::Scheme::kRPoLv2 && obs::enabled()) {
      rss.emplace(std::chrono::milliseconds(5));
    }
    core::MiningPool pool(cfg, factory, dataset, split.test, build_workers());

    std::printf("\n=== scheme: %s ===\n", core::scheme_name(scheme).c_str());
    std::printf("%-7s %-10s %-10s %-12s %-12s %-10s %-10s\n", "epoch",
                "test acc", "rejected", "alpha", "beta", "LSH(k,l)", "MB/epoch");
    const core::PoolRunReport report = pool.run();
    for (const auto& e : report.epochs) {
      char lsh_desc[16] = "-";
      if (scheme == core::Scheme::kRPoLv2) {
        std::snprintf(lsh_desc, sizeof lsh_desc, "(%d,%d)", e.lsh_params.k,
                      e.lsh_params.l);
      }
      std::printf("%-7lld %-10.4f %lld/9%-6s %-12.2e %-12.2e %-10s %-10.2f\n",
                  static_cast<long long>(e.epoch), e.test_accuracy,
                  static_cast<long long>(e.rejected_count), "",
                  e.alpha, e.beta, lsh_desc,
                  static_cast<double>(e.bytes_this_epoch) / (1024.0 * 1024.0));
    }
    if (scheme == core::Scheme::kBaseline) {
      baseline_acc = report.final_accuracy;
    } else {
      std::printf("\nRPoLv2 final accuracy %.4f vs insecure baseline %.4f "
                  "(freeloaders excluded every epoch)\n",
                  report.final_accuracy, baseline_acc);
      // Export per-worker health + memory accounting from the RPoLv2 pool
      // (the pool is loop-scoped, so export before it is destroyed).
      if (rss.has_value()) rss->stop();
      obs::RssSampler::Summary rss_summary;
      if (rss.has_value()) rss_summary = rss->summary();
      const std::string health_path = obs::maybe_export_health(
          "rpol_health.jsonl", pool.health(),
          rss.has_value() ? &rss_summary : nullptr);
      if (!health_path.empty()) {
        std::printf("health written to %s (summarize with `rpol health`)\n",
                    health_path.c_str());
      }
    }
  }
  const std::string trace_path = obs::maybe_export("rpol_trace.jsonl");
  if (!trace_path.empty()) {
    std::printf("trace written to %s (summarize with `rpol trace`)\n",
                trace_path.c_str());
  }
  return 0;
}
