// Asynchronous pooled learning (future-work extension): workers on wildly
// different hardware submit whenever they finish; the manager verifies each
// submission with standard RPoL machinery and applies accepted updates with
// staleness-discounted weights.
//
// Run: ./build/examples/async_learning

#include <cstdio>

#include "core/async_pool.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"

using namespace rpol;

int main() {
  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_classes = 10;
  data_cfg.num_examples = 4096;
  data_cfg.features = 32;
  data_cfg.class_separation = 1.2F;
  const data::Dataset dataset = data::make_synthetic_blobs(data_cfg);
  const data::TrainTestSplit split = data::train_test_split(dataset, 0.2, 9);

  core::AsyncPoolConfig cfg;
  cfg.hp.learning_rate = 0.015F;
  cfg.hp.batch_size = 32;
  cfg.hp.steps_per_epoch = 8;
  cfg.hp.checkpoint_interval = 2;
  cfg.ticks = 16;
  cfg.beta = 2e-3;
  cfg.staleness_discount = 0.6;
  cfg.seed = 3;

  // Heterogeneous fleet: two fast honest workers, two slow honest workers,
  // one fast fabricator injecting random-walk "updates".
  std::vector<core::AsyncWorkerSpec> workers;
  const auto devices = sim::all_devices();
  const std::vector<std::int64_t> periods{1, 1, 3, 5, 1};
  for (std::size_t w = 0; w < periods.size(); ++w) {
    core::AsyncWorkerSpec spec;
    spec.policy = w == 4 ? std::unique_ptr<core::WorkerPolicy>(
                               std::make_unique<core::FabricationPolicy>(0.05F))
                         : std::make_unique<core::HonestPolicy>();
    spec.device = devices[w % devices.size()];
    spec.period = periods[w];
    workers.push_back(std::move(spec));
  }

  core::AsyncMiningPool pool(cfg, nn::mlp_factory(32, {32, 16}, 10, 8), dataset,
                             split.test, std::move(workers));
  const core::AsyncRunReport report = pool.run();

  std::printf("tick-by-tick test accuracy:");
  for (const double a : report.accuracy_curve) std::printf(" %.3f", a);
  std::printf("\n\nsubmissions (worker 4 is the fabricator):\n");
  std::printf("%-6s %-8s %-10s %-10s\n", "tick", "worker", "staleness", "verdict");
  for (const auto& s : report.submissions) {
    std::printf("%-6lld %-8zu %-10lld %s\n", static_cast<long long>(s.tick),
                s.worker, static_cast<long long>(s.staleness),
                s.accepted ? "accepted" : "REJECTED");
  }
  std::printf("\napplied %lld updates, rejected %lld; final accuracy %.4f\n",
              static_cast<long long>(report.applied),
              static_cast<long long>(report.rejected), report.final_accuracy);
  return 0;
}
