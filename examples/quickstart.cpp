// Quickstart: verify one worker's training with RPoL in ~80 lines.
//
//   1. build a training task (model factory + dataset),
//   2. the worker trains one epoch with PRF-deterministic batches on a
//      simulated GPU and commits to its checkpoints,
//   3. the manager samples q transitions, re-executes them, and accepts or
//      rejects — here for an honest worker and for a replay attacker.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/verifier.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"

using namespace rpol;

int main() {
  // --- 1. Task: a small MLP on a synthetic 10-class dataset. -------------
  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_examples = 2048;
  data_cfg.num_classes = 10;
  data_cfg.features = 32;
  const data::Dataset dataset = data::make_synthetic_blobs(data_cfg);
  const data::DatasetView worker_data = data::DatasetView::whole(dataset);

  const nn::ModelFactory factory = nn::mlp_factory(32, {32, 16}, 10, /*seed=*/1);
  core::Hyperparams hp;
  hp.learning_rate = 0.02F;
  hp.batch_size = 32;
  hp.steps_per_epoch = 20;
  hp.checkpoint_interval = 5;

  // --- 2. Worker side: train and commit. ---------------------------------
  core::EpochContext ctx;
  ctx.nonce = 0xC0FFEE;  // the manager hands this out per epoch
  ctx.dataset = &worker_data;
  {
    core::StepExecutor init(factory, hp);
    ctx.initial = init.save_state();  // the distributed global state
  }

  core::StepExecutor worker(factory, hp);
  sim::DeviceExecution worker_gpu(sim::device_ga10(), /*run_seed=*/7);
  core::HonestPolicy honest;
  const core::EpochTrace trace = honest.produce_trace(worker, ctx, worker_gpu);
  const core::Commitment commitment = core::commit_v1(trace);
  std::printf("worker: %lld checkpoints, commitment root %.16s..., loss %.3f\n",
              static_cast<long long>(trace.checkpoints.size()),
              digest_to_hex(commitment.root).c_str(), trace.mean_loss);

  // --- 3. Manager side: sample, re-execute, accept/reject. ---------------
  core::VerifierConfig vcfg;
  vcfg.samples_q = 3;
  vcfg.beta = 1e-3;  // distance threshold (see adaptive calibration)
  core::Verifier verifier(factory, hp, vcfg);
  sim::DeviceExecution manager_gpu(sim::device_g3090(), /*run_seed=*/99);

  const core::VerifyResult honest_result = verifier.verify(
      commitment, trace, ctx, core::hash_state(ctx.initial), manager_gpu);
  std::printf("manager: honest worker %s (%lld steps re-executed, %.1f KB of "
              "proofs)\n",
              honest_result.accepted ? "ACCEPTED" : "REJECTED",
              static_cast<long long>(honest_result.reexecuted_steps),
              static_cast<double>(honest_result.proof_bytes) / 1024.0);
  for (const auto& check : honest_result.checks) {
    std::printf("  transition %lld: distance %.2e <= beta %.2e -> %s\n",
                static_cast<long long>(check.transition), check.distance,
                vcfg.beta, check.passed ? "pass" : "FAIL");
  }

  // A replay attacker submits the old global model without training.
  core::StepExecutor lazy(factory, hp);
  sim::DeviceExecution lazy_gpu(sim::device_gt4(), /*run_seed=*/8);
  core::ReplayPolicy replay;
  const core::EpochTrace fake = replay.produce_trace(lazy, ctx, lazy_gpu);
  sim::DeviceExecution manager_gpu2(sim::device_g3090(), /*run_seed=*/100);
  const core::VerifyResult fake_result =
      verifier.verify(core::commit_v1(fake), fake, ctx,
                      core::hash_state(ctx.initial), manager_gpu2);
  std::printf("manager: replay attacker %s\n",
              fake_result.accepted ? "ACCEPTED (!)" : "REJECTED");
  return fake_result.accepted ? 1 : 0;
}
