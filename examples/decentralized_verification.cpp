// Decentralized verification + fair-exchange escrow: the paper's two
// future-work items working together.
//
// A prover worker trains (or spoofs) an epoch; q sampled transitions are
// verified by a committee of 5 peer workers (3 votes per sample, one
// colluder among them) instead of the manager alone. Payouts flow through
// an escrow that the manager cannot cheat: a wrongly-zeroed worker wins a
// dispute arbitrated by re-execution.
//
// Run: ./build/examples/decentralized_verification

#include <cstdio>

#include "chain/escrow.h"
#include "core/decentralized.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"

using namespace rpol;

int main() {
  // Task setup (same shape as quickstart).
  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_examples = 2048;
  data_cfg.num_classes = 10;
  data_cfg.features = 32;
  const data::Dataset dataset = data::make_synthetic_blobs(data_cfg);
  const data::DatasetView worker_data = data::DatasetView::whole(dataset);
  const nn::ModelFactory factory = nn::mlp_factory(32, {32, 16}, 10, 1);
  core::Hyperparams hp;
  hp.learning_rate = 0.02F;
  hp.batch_size = 32;
  hp.steps_per_epoch = 20;
  hp.checkpoint_interval = 5;

  core::EpochContext ctx;
  ctx.nonce = 0xDECEA5ED;
  ctx.dataset = &worker_data;
  {
    core::StepExecutor init(factory, hp);
    ctx.initial = init.save_state();
  }

  // Prover traces: one honest, one spoofing 80% of the work.
  core::StepExecutor prover(factory, hp);
  sim::DeviceExecution prover_gpu(sim::device_ga10(), 7);
  core::HonestPolicy honest_policy;
  const core::EpochTrace honest = honest_policy.produce_trace(prover, ctx, prover_gpu);
  core::SpoofPolicy spoof_policy(0.2, 0.5);
  const core::EpochTrace spoofed = spoof_policy.produce_trace(prover, ctx, prover_gpu);

  // Verifier committee: 5 peers, one of them colluding with provers.
  std::vector<core::VerifierNode> committee;
  const auto devices = sim::all_devices();
  for (std::size_t i = 0; i < 5; ++i) {
    core::VerifierNode node;
    node.behavior = i == 0 ? core::VerifierBehavior::kColludeAccept
                           : core::VerifierBehavior::kHonest;
    node.device = devices[i % devices.size()];
    node.run_seed = 500 + i;
    committee.push_back(node);
  }

  core::DecentralizedConfig dcfg;
  dcfg.samples_q = 3;
  dcfg.verifiers_per_sample = 3;
  dcfg.beta = 2e-3;
  core::DecentralizedVerifier verifier(factory, hp, dcfg);

  for (const auto& [trace, label] :
       {std::pair{&honest, "honest prover"}, std::pair{&spoofed, "spoofing prover"}}) {
    const auto result = verifier.verify(core::commit_v1(*trace), *trace, ctx,
                                        core::hash_state(ctx.initial), committee);
    std::printf("%s: %s (critical path %lld steps vs %lld total — ~%.1fx "
                "parallel speedup)\n",
                label, result.accepted ? "ACCEPTED" : "REJECTED",
                static_cast<long long>(result.critical_path_steps),
                static_cast<long long>(result.total_reexecuted_steps),
                result.critical_path_steps > 0
                    ? static_cast<double>(result.total_reexecuted_steps) /
                          static_cast<double>(result.critical_path_steps)
                    : 0.0);
    for (std::size_t s = 0; s < result.samples.size(); ++s) {
      std::printf("  sample %lld votes:",
                  static_cast<long long>(result.samples[s]));
      for (const auto& vote : result.votes[s]) {
        std::printf(" v%zu=%s", vote.verifier, vote.pass ? "pass" : "fail");
      }
      std::printf("\n");
    }
  }

  // Fair exchange: manager wrongly zeroes worker 1; the dispute (arbitrated
  // by decentralized re-verification of its trace) restores the payout.
  std::printf("\n--- escrowed reward settlement ---\n");
  chain::FairExchangeEscrow escrow(2, core::RewardPolicy{250});
  escrow.fund(10'000);
  escrow.register_commitment(0, core::commit_v1(honest).root);
  escrow.register_commitment(1, core::commit_v1(honest).root);
  escrow.submit_outcome({1, 0});  // manager stiffs worker 1
  const bool upheld = escrow.dispute(1, 1, [&](std::size_t) {
    const auto recheck = verifier.verify(core::commit_v1(honest), honest, ctx,
                                         core::hash_state(ctx.initial), committee);
    return recheck.accepted;
  });
  std::printf("worker 1 dispute %s\n", upheld ? "UPHELD" : "rejected");
  const core::RewardDistribution payout = escrow.settle();
  std::printf("settlement: fee=%llu, worker0=%llu, worker1=%llu (conserved: %s)\n",
              static_cast<unsigned long long>(payout.manager_fee),
              static_cast<unsigned long long>(payout.worker_payouts[0]),
              static_cast<unsigned long long>(payout.worker_payouts[1]),
              payout.total() == 10'000 ? "yes" : "NO");
  return 0;
}
