// PoUW consensus round: three consensus nodes compete on a published
// training task; one is a thief who steals another node's trained model and
// re-claims it under his own address.
//
// Demonstrates the chain API: publishing tasks, address-encoded (AMLayer)
// models, proposal verification, winner selection on the late-revealed test
// set, and reward payout — the system setting of Sec. III-A / Fig. 2.
//
// Run: ./build/examples/blockchain_round

#include <cstdio>

#include "chain/blockchain.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"

using namespace rpol;

namespace {

chain::BlockProposal train_for(const Address& address,
                               const nn::ModelFactory& base,
                               const data::DatasetView& train,
                               const core::Hyperparams& hp, std::int64_t steps,
                               std::uint64_t nonce) {
  const core::AmLayerConfig am_cfg;
  const nn::ModelFactory with_am = [base, am_cfg, address]() {
    nn::Model m = base();
    m.prepend(std::make_unique<core::AmLayer>(address, am_cfg));
    return m;
  };
  core::StepExecutor executor(with_am, hp);
  const core::DeterministicSelector selector(nonce);
  executor.run_steps(0, steps, train, selector, nullptr);
  chain::BlockProposal proposal;
  proposal.proposer = address;
  proposal.base_factory = base;
  proposal.amlayer_config = am_cfg;
  proposal.model_state = executor.model().state_vector();
  return proposal;
}

}  // namespace

int main() {
  // Phase-coded synthetic images: fragile classes make model theft visibly
  // unprofitable (see data/synthetic.h).
  data::SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 8;
  data_cfg.num_examples = 480;
  data_cfg.image_size = 8;
  data_cfg.noise_stddev = 0.2F;
  data_cfg.phase_coded = true;
  data_cfg.min_frequency = 2.0F;
  data_cfg.max_frequency = 2.0F;
  const data::Dataset dataset = data::make_synthetic_images(data_cfg);
  const data::TrainTestSplit split = data::train_test_split(dataset, 0.25, 3);

  nn::ModelConfig model_cfg;
  model_cfg.image_size = 8;
  model_cfg.width = 4;
  model_cfg.num_classes = 8;
  const nn::ModelFactory base = nn::mini_resnet18_factory(model_cfg, 1);

  core::Hyperparams hp;
  hp.learning_rate = 0.05F;
  hp.batch_size = 16;
  hp.steps_per_epoch = 12;

  chain::Blockchain chain;
  const auto task_id =
      chain.publish_task("MiniResNet18 on synth-8class", 0.8, /*reward=*/50);
  std::printf("published task %llu (reward 50)\n",
              static_cast<unsigned long long>(task_id));

  const Address diligent = Address::from_seed(1);
  const Address lazy = Address::from_seed(2);
  const Address thief = Address::from_seed(3);

  std::vector<chain::BlockProposal> proposals;
  proposals.push_back(train_for(diligent, base, split.train, hp, 150, 10));
  proposals.push_back(train_for(lazy, base, split.train, hp, 20, 20));
  // The thief copies the diligent node's model and swaps the claimed
  // address WITHOUT being able to regenerate the AMLayer weights.
  chain::BlockProposal stolen = proposals[0];
  stolen.proposer = thief;
  proposals.push_back(std::move(stolen));

  for (const auto& p : proposals) {
    const bool owner_ok = chain::verify_embedded_amlayer(
        p.model_state, p.proposer, p.amlayer_config);
    const double acc =
        chain::evaluate_proposal_accuracy(p, p.proposer, split.test, hp);
    std::printf("proposal by %.10s...: AMLayer ownership %s, test accuracy %.2f%%\n",
                p.proposer.str().c_str(), owner_ok ? "OK" : "INVALID",
                100.0 * acc);
  }

  const auto winner = chain.run_round(task_id, std::move(proposals),
                                      split.test, hp);
  if (!winner.has_value()) {
    std::printf("no valid proposal won the round\n");
    return 1;
  }
  std::printf("\nwinner: proposal %zu by %s\n", *winner,
              chain.tip().header.proposer.str().c_str());
  std::printf("chain height %llu, valid=%s\n",
              static_cast<unsigned long long>(chain.height()),
              chain.validate_chain() ? "yes" : "no");
  std::printf("balances: diligent=%llu lazy=%llu thief=%llu\n",
              static_cast<unsigned long long>(chain.balance(diligent)),
              static_cast<unsigned long long>(chain.balance(lazy)),
              static_cast<unsigned long long>(chain.balance(thief)));
  return 0;
}
