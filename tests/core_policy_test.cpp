// Tests for the extended adversary policies: fabrication, cross-epoch
// (stale) replay, and the Eq. (12) spoof helper itself.

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

struct PolicyFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/111);
    view = data::DatasetView::whole(task.dataset);
    context = task.context(31337, view);
  }

  VerifyResult verify(const EpochTrace& trace, const EpochContext& ctx) {
    VerifierConfig cfg;
    cfg.samples_q = 4;  // every transition for 10-step/3-interval traces
    cfg.beta = 2e-3;
    Verifier verifier(task.factory, task.hp, cfg);
    sim::DeviceExecution manager_device(sim::device_g3090(), 777);
    return verifier.verify(commit_v1(trace), trace, ctx,
                           hash_state(ctx.initial), manager_device);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
};

// ---------------------------------------------------------------------------
// spoof_next_weights (Eq. 12)

TEST(SpoofHelper, SinglePointDegeneratesToCopy) {
  const std::vector<float> only{1.0F, 2.0F};
  EXPECT_EQ(spoof_next_weights({&only}, 0.5), only);
  EXPECT_THROW(spoof_next_weights({}, 0.5), std::invalid_argument);
}

TEST(SpoofHelper, TwoPointsLinearExtrapolation) {
  const std::vector<float> c1{0.0F, 0.0F};
  const std::vector<float> c2{1.0F, -2.0F};
  // One diff with weight 1: c3 = c2 + (c2 - c1).
  const auto c3 = spoof_next_weights({&c1, &c2}, 0.5);
  EXPECT_FLOAT_EQ(c3[0], 2.0F);
  EXPECT_FLOAT_EQ(c3[1], -4.0F);
}

TEST(SpoofHelper, LambdaWeightsRecentDiffsMore) {
  const std::vector<float> c1{0.0F};
  const std::vector<float> c2{1.0F};  // diff1 = 1
  const std::vector<float> c3{1.0F}; // diff2 = 0 (most recent)
  // lambda=0.5: weights {1, 0.5}/1.5 on diffs {0, 1} (newest first):
  // c4 = 1 + (1*0 + 0.5*1)/1.5 = 1.333...
  const auto c4 = spoof_next_weights({&c1, &c2, &c3}, 0.5);
  EXPECT_NEAR(c4[0], 1.0F + 0.5F / 1.5F, 1e-6F);
}

// ---------------------------------------------------------------------------
// FabricationPolicy

TEST_F(PolicyFixture, FabricationProducesWellFormedTrace) {
  StepExecutor executor(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_gt4(), 1);
  FabricationPolicy fabricate(0.01F);
  const EpochTrace trace = fabricate.produce_trace(executor, context, device);
  EXPECT_EQ(trace.num_transitions(), 4);
  EXPECT_EQ(trace.checkpoints.front().model, context.initial.model);
  // Checkpoints move (it fakes progress)...
  EXPECT_GT(l2_distance(trace.checkpoints.back().model,
                        context.initial.model),
            0.0);
}

TEST_F(PolicyFixture, FabricationRejectedByVerifier) {
  StepExecutor executor(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_gt4(), 1);
  FabricationPolicy fabricate(0.01F);
  const EpochTrace trace = fabricate.produce_trace(executor, context, device);
  const VerifyResult result = verify(trace, context);
  EXPECT_FALSE(result.accepted);
  // Hashes are self-consistent; the re-execution distance is what fails.
  for (const auto& check : result.checks) EXPECT_TRUE(check.hash_ok);
}

TEST_F(PolicyFixture, FabricationDeterministicPerEpoch) {
  StepExecutor executor(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_gt4(), 1);
  FabricationPolicy a(0.01F, 5), b(0.01F, 5);
  EXPECT_EQ(a.produce_trace(executor, context, device).checkpoints.back().model,
            b.produce_trace(executor, context, device).checkpoints.back().model);
}

// ---------------------------------------------------------------------------
// StaleReplayPolicy

TEST_F(PolicyFixture, StaleReplayPassesFirstEpochOnly) {
  StepExecutor executor(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_ga10(), 2);
  StaleReplayPolicy stale;

  // Epoch 0: the policy actually trains, so it verifies.
  const EpochTrace first = stale.produce_trace(executor, context, device);
  EXPECT_TRUE(verify(first, context).accepted);

  // Epoch 1: new nonce and new global state; the replayed trace must fail —
  // its C_0 is the OLD initial state, caught by the initial-hash check.
  EpochContext next_epoch = context;
  next_epoch.epoch = 1;
  next_epoch.nonce = 424242;
  next_epoch.initial.model = first.checkpoints.back().model;
  const EpochTrace replayed = stale.produce_trace(executor, next_epoch, device);
  EXPECT_EQ(replayed.checkpoints.front().model, context.initial.model);
  const VerifyResult result = verify(replayed, next_epoch);
  EXPECT_FALSE(result.accepted);
}

TEST_F(PolicyFixture, StaleReplayFailsEvenFromSameGlobalState) {
  // Suppose aggregation left the global model unchanged (e.g. all updates
  // rejected). The stale trace's C_0 then hash-matches — but the NONCE
  // changed, so re-execution selects different batches and the distances
  // blow past beta. This is exactly the replay protection the
  // stochastic-yet-deterministic selection provides (Sec. V-B).
  StepExecutor executor(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_ga10(), 3);
  StaleReplayPolicy stale;
  const EpochTrace first = stale.produce_trace(executor, context, device);
  ASSERT_TRUE(verify(first, context).accepted);

  EpochContext same_state_new_nonce = context;
  same_state_new_nonce.epoch = 1;
  same_state_new_nonce.nonce = 99999;  // fresh nonce, same initial state
  const EpochTrace replayed =
      stale.produce_trace(executor, same_state_new_nonce, device);
  const VerifyResult result = verify(replayed, same_state_new_nonce);
  EXPECT_FALSE(result.accepted);
}

// ---------------------------------------------------------------------------
// Policy metadata

TEST(PolicyMetadata, NamesAndHonestyRatios) {
  HonestPolicy honest;
  ReplayPolicy replay;
  SpoofPolicy spoof(0.3);
  FabricationPolicy fabricate;
  StaleReplayPolicy stale;
  EXPECT_EQ(honest.name(), "honest");
  EXPECT_EQ(replay.name(), "adv1_replay");
  EXPECT_EQ(spoof.name(), "adv2_spoof");
  EXPECT_EQ(fabricate.name(), "fabricate");
  EXPECT_EQ(stale.name(), "stale_replay");
  EXPECT_DOUBLE_EQ(honest.honesty_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(replay.honesty_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(spoof.honesty_ratio(), 0.3);
}

}  // namespace
}  // namespace rpol::core
