// Asynchronous-pool tests: staleness bookkeeping, verification of async
// submissions, convergence, and the staleness-discount ablation.

#include <gtest/gtest.h>

#include "core/async_pool.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

struct AsyncFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/171, /*steps=*/8, /*interval=*/2);
    split = std::make_unique<data::TrainTestSplit>(
        data::train_test_split(task.dataset, 0.25, 5));
  }

  AsyncPoolConfig config(std::int64_t ticks = 12) {
    AsyncPoolConfig cfg;
    cfg.hp = task.hp;
    cfg.ticks = ticks;
    cfg.beta = 2e-3;
    cfg.seed = 19;
    return cfg;
  }

  std::vector<AsyncWorkerSpec> workers(std::size_t num_adv,
                                       std::vector<std::int64_t> periods) {
    std::vector<AsyncWorkerSpec> specs;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < periods.size(); ++w) {
      AsyncWorkerSpec spec;
      if (w < num_adv) {
        spec.policy = std::make_unique<SpoofPolicy>(0.1, 0.5);
      } else {
        spec.policy = std::make_unique<HonestPolicy>();
      }
      spec.device = devices[w % devices.size()];
      spec.period = periods[w];
      specs.push_back(std::move(spec));
    }
    return specs;
  }

  TinyTask task{TinyTask::make()};
  std::unique_ptr<data::TrainTestSplit> split;
};

TEST_F(AsyncFixture, HonestWorkersAllAcceptedAndModelImproves) {
  AsyncMiningPool pool(config(), task.factory, task.dataset, split->test,
                       workers(0, {1, 2, 3, 4}));
  const AsyncRunReport report = pool.run();
  EXPECT_EQ(report.rejected, 0);
  EXPECT_GT(report.applied, 0);
  EXPECT_GT(report.final_accuracy, report.accuracy_curve.front());
  EXPECT_GT(report.final_accuracy, 0.5);
}

TEST_F(AsyncFixture, FastWorkersSubmitMoreOften) {
  AsyncMiningPool pool(config(12), task.factory, task.dataset, split->test,
                       workers(0, {1, 4}));
  const AsyncRunReport report = pool.run();
  std::int64_t fast = 0, slow = 0;
  for (const auto& s : report.submissions) {
    (s.worker == 0 ? fast : slow) += 1;
  }
  EXPECT_EQ(fast, 12);
  EXPECT_EQ(slow, 3);
}

TEST_F(AsyncFixture, StalenessReflectsConcurrentUpdates) {
  AsyncMiningPool pool(config(8), task.factory, task.dataset, split->test,
                       workers(0, {1, 4}));
  const AsyncRunReport report = pool.run();
  // The slow worker's submissions must report positive staleness: the fast
  // worker applied several updates while it trained.
  bool slow_saw_staleness = false;
  for (const auto& s : report.submissions) {
    if (s.worker == 1 && s.staleness > 0) slow_saw_staleness = true;
    if (s.worker == 0 && s.tick == 1) {
      EXPECT_EQ(s.staleness, 0);
    }
  }
  EXPECT_TRUE(slow_saw_staleness);
}

TEST_F(AsyncFixture, AsyncAdversariesRejected) {
  AsyncMiningPool pool(config(8), task.factory, task.dataset, split->test,
                       workers(1, {1, 1, 2}));
  const AsyncRunReport report = pool.run();
  std::int64_t adv_accepted = 0, honest_rejected = 0;
  for (const auto& s : report.submissions) {
    if (s.worker == 0 && s.accepted) ++adv_accepted;
    if (s.worker != 0 && !s.accepted) ++honest_rejected;
  }
  EXPECT_EQ(adv_accepted, 0);
  EXPECT_EQ(honest_rejected, 0);
  EXPECT_GT(report.rejected, 0);
}

TEST_F(AsyncFixture, UnverifiedAsyncPoolAbsorbsSpoofedUpdates) {
  AsyncPoolConfig insecure = config(8);
  insecure.verify = false;
  AsyncMiningPool verified_pool(config(8), task.factory, task.dataset,
                                split->test, workers(2, {1, 1, 1, 2}));
  AsyncMiningPool insecure_pool(insecure, task.factory, task.dataset,
                                split->test, workers(2, {1, 1, 1, 2}));
  const AsyncRunReport vr = verified_pool.run();
  const AsyncRunReport ir = insecure_pool.run();
  EXPECT_EQ(ir.rejected, 0);
  EXPECT_GE(vr.final_accuracy, ir.final_accuracy - 0.02);
}

TEST_F(AsyncFixture, StalenessDiscountStabilizesSlowPools) {
  // With very heterogeneous speeds, discounting stale updates should not
  // hurt (and typically helps) final accuracy vs applying them at full
  // weight. At minimum both must converge above chance.
  AsyncPoolConfig discounted = config(16);
  discounted.staleness_discount = 0.5;
  AsyncPoolConfig undiscounted = config(16);
  undiscounted.staleness_discount = 1.0;
  AsyncMiningPool a(discounted, task.factory, task.dataset, split->test,
                    workers(0, {1, 1, 6, 6}));
  AsyncMiningPool b(undiscounted, task.factory, task.dataset, split->test,
                    workers(0, {1, 1, 6, 6}));
  const double acc_discounted = a.run().final_accuracy;
  const double acc_undiscounted = b.run().final_accuracy;
  EXPECT_GT(acc_discounted, 0.4);
  EXPECT_GT(acc_undiscounted, 0.4);
}

TEST_F(AsyncFixture, InvalidConfigsThrow) {
  EXPECT_THROW(AsyncMiningPool(config(), task.factory, task.dataset,
                               split->test, {}),
               std::invalid_argument);
  EXPECT_THROW(AsyncMiningPool(config(), task.factory, task.dataset,
                               split->test, workers(0, {0})),
               std::invalid_argument);
}

}  // namespace
}  // namespace rpol::core
