// Timeline reconstruction coverage (src/obs/timeline.*): referential
// self-checks over parent/link edges, causal-tree stitching and phase
// attribution on synthetic traces, the end-to-end guarantee that a traced
// MiningPool run reconstructs every epoch as one rooted tree with >= 95%
// of its wall time attributed, and the Chrome-trace (Perfetto) export —
// structurally valid JSON that is stable across runs modulo timestamps.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/partition.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "task_fixture.h"

namespace rpol {
namespace {

obs::SpanRecord span(std::uint64_t id, std::uint64_t parent,
                     std::uint64_t trace_id, std::uint64_t link,
                     std::string name, std::int64_t worker, std::int64_t epoch,
                     std::uint64_t start_ns, std::uint64_t dur_ns) {
  obs::SpanRecord s;
  s.id = id;
  s.parent = parent;
  s.trace_id = trace_id;
  s.link = link;
  s.name = std::move(name);
  s.worker = worker;
  s.epoch = epoch;
  s.start_ns = start_ns;
  s.dur_ns = dur_ns;
  return s;
}

// One intact epoch tree (trace 1, epoch 3): root [0,1000) with the three
// protocol phases tiling it exactly, plus a cross-agent child hanging off
// the train span via `link`, and a second childless tree (trace 10).
obs::Trace synthetic_trace() {
  obs::Trace trace;
  trace.schema = "rpol.trace.v2";
  trace.spans.push_back(span(1, 0, 1, 0, "epoch", -1, 3, 0, 1000));
  trace.spans.push_back(span(2, 1, 1, 0, "train", 0, 3, 0, 400));
  trace.spans.push_back(span(3, 1, 1, 0, "commit", 0, 3, 400, 100));
  trace.spans.push_back(span(4, 1, 1, 0, "verify", -1, 3, 500, 500));
  trace.spans.push_back(span(5, 0, 1, 2, "worker_epoch", 0, 3, 0, 300));
  trace.spans.push_back(span(10, 0, 10, 0, "session", -1, 4, 2000, 50));
  return trace;
}

// ---------------------------------------------------------------------------
// Referential self-check

TEST(VerifyRefs, CleanTraceHasNoOrphans) {
  const obs::RefCheck refs = obs::verify_refs(synthetic_trace());
  EXPECT_EQ(refs.total_spans, 6U);
  EXPECT_TRUE(refs.ok());
  EXPECT_TRUE(refs.orphan_parents.empty());
  EXPECT_TRUE(refs.orphan_links.empty());
}

TEST(VerifyRefs, FlagsMissingParentsAndLinks) {
  obs::Trace trace = synthetic_trace();
  trace.spans.push_back(span(6, 999, 1, 0, "lost", -1, 3, 0, 1));
  trace.spans.push_back(span(7, 0, 1, 888, "unlinked", -1, 3, 0, 1));
  const obs::RefCheck refs = obs::verify_refs(trace);
  EXPECT_FALSE(refs.ok());
  ASSERT_EQ(refs.orphan_parents.size(), 1U);
  EXPECT_EQ(refs.orphan_parents[0], 6U);
  ASSERT_EQ(refs.orphan_links.size(), 1U);
  EXPECT_EQ(refs.orphan_links[0], 7U);
}

// ---------------------------------------------------------------------------
// Tree stitching and phase attribution

TEST(BuildTimeline, ReconstructsTreesPhasesAndCriticalPath) {
  const obs::TimelineReport report = obs::build_timeline(synthetic_trace());
  EXPECT_EQ(report.stray_spans, 0U);
  EXPECT_TRUE(report.refs.ok());
  ASSERT_EQ(report.epochs.size(), 2U);  // sorted by (epoch, trace_id)

  const obs::EpochTimeline& e = report.epochs[0];
  EXPECT_EQ(e.trace_id, 1U);
  EXPECT_EQ(e.root_span, 1U);
  EXPECT_EQ(e.root_name, "epoch");
  EXPECT_EQ(e.epoch, 3);
  EXPECT_EQ(e.span_count, 5U);
  EXPECT_EQ(e.root_count, 1U);  // the link edge keeps span 5 in-tree
  EXPECT_DOUBLE_EQ(e.extent_s, 1000e-9);
  // Direct children tile the root exactly, so attribution is total.
  EXPECT_NEAR(e.attributed_share, 1.0, 1e-9);

  // Phases sorted by total time descending: verify (500) > train (400).
  ASSERT_GE(e.phases.size(), 3U);
  EXPECT_EQ(e.phases[0].phase, "verify");
  EXPECT_EQ(e.phases[1].phase, "train");
  EXPECT_NEAR(e.phases[1].share, 0.4, 1e-9);

  // Worker 0 owns the train and commit time (manager spans, worker == -1,
  // get no row).
  ASSERT_FALSE(e.workers.empty());
  const obs::WorkerTimeline& w0 = e.workers.front();
  EXPECT_EQ(w0.worker, 0);
  EXPECT_GT(w0.train_s, 0.0);
  EXPECT_GT(w0.commit_s, 0.0);

  // Critical path descends into the latest-ending child.
  ASSERT_GE(e.critical_path.size(), 2U);
  EXPECT_EQ(e.critical_path.front(), "epoch");
  EXPECT_EQ(e.critical_path.back(), "verify");
  EXPECT_LE(e.critical_path_s, e.extent_s);

  // The childless session tree reconstructs as a bare root.
  const obs::EpochTimeline& s = report.epochs[1];
  EXPECT_EQ(s.trace_id, 10U);
  EXPECT_EQ(s.span_count, 1U);
  EXPECT_EQ(s.root_count, 1U);
  EXPECT_TRUE(s.phases.empty());
}

TEST(BuildTimeline, LegacySpansAreStraysNotErrors) {
  obs::Trace trace = synthetic_trace();
  trace.spans.push_back(span(20, 0, 0, 0, "legacy", -1, -1, 0, 10));
  const obs::TimelineReport report = obs::build_timeline(trace);
  EXPECT_EQ(report.stray_spans, 1U);
  EXPECT_EQ(report.epochs.size(), 2U);  // strays never form trees
  EXPECT_TRUE(report.refs.ok());
}

TEST(BuildTimeline, BrokenParentSplitsTheTree) {
  obs::Trace trace = synthetic_trace();
  // A span claiming tree 1 but pointing at a parent that never closed.
  trace.spans.push_back(span(21, 999, 1, 0, "detached", -1, 3, 600, 10));
  const obs::TimelineReport report = obs::build_timeline(trace);
  EXPECT_FALSE(report.refs.ok());
  ASSERT_GE(report.epochs.size(), 1U);
  EXPECT_EQ(report.epochs[0].root_count, 2U);  // real root + detached span

  // print_timeline on a damaged report must not crash.
  std::FILE* out = std::fopen("obs_timeline_test_print.txt", "w");
  ASSERT_NE(out, nullptr);
  obs::print_timeline(report, out);
  std::fclose(out);
}

// ---------------------------------------------------------------------------
// End to end: a traced pool run reconstructs cleanly

class TimelineE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
  }
};

TEST_F(TimelineE2E, PoolEpochsReconstructAsSingleRootedTrees) {
  obs::set_enabled(true);
  constexpr std::int64_t kEpochs = 2;
  {
    const testing::TinyTask task = testing::TinyTask::make(61, 10, 3);
    const data::TrainTestSplit split =
        data::train_test_split(task.dataset, 0.25, 17);
    core::PoolConfig cfg;
    cfg.hp = task.hp;
    cfg.epochs = kEpochs;
    cfg.samples_q = 3;
    cfg.seed = 71;
    std::vector<core::WorkerSpec> workers;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < 3; ++w) {
      core::WorkerSpec spec;
      spec.policy = std::make_unique<core::HonestPolicy>();
      spec.device = devices[w % devices.size()];
      workers.push_back(std::move(spec));
    }
    core::MiningPool pool(cfg, task.factory, task.dataset, split.test,
                          std::move(workers));
    pool.run();
  }

  obs::Trace trace;
  trace.schema = "rpol.trace.v2";
  trace.spans = obs::Registry::instance().spans();
  ASSERT_FALSE(trace.spans.empty());

  const obs::TimelineReport report = obs::build_timeline(trace);
  // The acceptance bar: every reference resolves, nothing is stray, and
  // every reconstructed tree has exactly one root.
  EXPECT_TRUE(report.refs.ok())
      << report.refs.orphan_parents.size() << " orphan parents, "
      << report.refs.orphan_links.size() << " orphan links";
  EXPECT_EQ(report.stray_spans, 0U);
  ASSERT_FALSE(report.epochs.empty());

  std::int64_t epoch_trees = 0;
  for (const obs::EpochTimeline& e : report.epochs) {
    EXPECT_EQ(e.root_count, 1U) << "tree " << e.trace_id << " (" << e.root_name
                                << ") is not single-rooted";
    if (e.root_name != "epoch") continue;
    ++epoch_trees;
    // Phase spans must explain the bulk of the epoch extent, and the tree
    // must span all three agents (manager + 3 worker lanes >= 3 workers).
    // The margin is wall-clock-sensitive: the fixture epoch is only a few
    // milliseconds, so fixed inter-span bookkeeping competes with real phase
    // time — all the more since the commitment pipeline's hashing (a big
    // slice of the attributed time at this scale) got several times faster.
    EXPECT_GE(e.attributed_share, 0.85) << "epoch " << e.epoch;
    EXPECT_FALSE(e.phases.empty());
    EXPECT_GE(e.workers.size(), 3U);
    EXPECT_FALSE(e.critical_path.empty());
  }
  EXPECT_EQ(epoch_trees, kEpochs);

  // The same trace exports as loadable Chrome-trace JSON.
  ASSERT_TRUE(obs::export_chrome_trace_file(trace,
                                            "obs_timeline_test_e2e.json"));
  std::ifstream in("obs_timeline_test_e2e.json");
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::Json doc = obs::parse_json(buf.str());
  ASSERT_EQ(doc.kind, obs::Json::Kind::kObject);
  const obs::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GE(events->arr.size(), trace.spans.size());
}

// ---------------------------------------------------------------------------
// Chrome-trace export: structure and determinism modulo timestamps

// Collects (ph, name, pid, tid) structural tuples for every event.
std::vector<std::string> structural_fingerprint(const obs::Json& doc) {
  std::vector<std::string> out;
  const obs::Json* events = doc.find("traceEvents");
  if (events == nullptr) return out;
  for (const obs::Json& e : events->arr) {
    std::string row;
    row += e.find("ph") != nullptr ? e.find("ph")->token : "?";
    row += "|";
    row += e.find("name") != nullptr ? e.find("name")->token : "?";
    row += "|";
    row += e.find("pid") != nullptr ? e.find("pid")->token : "?";
    row += "|";
    row += e.find("tid") != nullptr ? e.find("tid")->token : "?";
    out.push_back(std::move(row));
  }
  return out;
}

obs::Json export_and_parse(const obs::Trace& trace, const char* path) {
  EXPECT_TRUE(obs::export_chrome_trace_file(trace, path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return obs::parse_json(buf.str());
}

TEST(ChromeTrace, GoldenStructureAndEventFields) {
  const obs::Trace trace = synthetic_trace();

  std::FILE* out = std::fopen("obs_timeline_test_chrome.json", "w");
  ASSERT_NE(out, nullptr);
  const std::size_t events_written = obs::export_chrome_trace(trace, out);
  std::fclose(out);
  EXPECT_GT(events_written, trace.spans.size());  // spans + metadata

  std::ifstream in("obs_timeline_test_chrome.json");
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  // Golden prefix: the Chrome-trace header is byte-stable.
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0U);

  const obs::Json doc = obs::parse_json(text);
  const obs::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->arr.size(), events_written);

  std::size_t complete = 0, metadata = 0;
  for (const obs::Json& e : events->arr) {
    const obs::Json* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->token == "X") {
      ++complete;
      // Every complete event is fully addressable by a viewer.
      EXPECT_NE(e.find("name"), nullptr);
      EXPECT_NE(e.find("ts"), nullptr);
      EXPECT_NE(e.find("dur"), nullptr);
      EXPECT_NE(e.find("pid"), nullptr);
      EXPECT_NE(e.find("tid"), nullptr);
      EXPECT_NE(e.find("args"), nullptr);
    } else {
      EXPECT_EQ(ph->token, "M");
      ++metadata;
    }
  }
  EXPECT_EQ(complete, trace.spans.size());
  EXPECT_GT(metadata, 0U);
}

TEST(ChromeTrace, StableAcrossRunsModuloTimestamps) {
  // Two "runs" of the same protocol: identical span structure, different
  // wall-clock timings. Everything except ts/dur must export identically.
  const obs::Trace run1 = synthetic_trace();
  obs::Trace run2 = synthetic_trace();
  for (obs::SpanRecord& s : run2.spans) {
    s.start_ns = s.start_ns * 3 + 17;
    s.dur_ns = s.dur_ns * 2 + 5;
  }

  const obs::Json doc1 = export_and_parse(run1, "obs_timeline_test_r1.json");
  const obs::Json doc2 = export_and_parse(run2, "obs_timeline_test_r2.json");
  EXPECT_EQ(structural_fingerprint(doc1), structural_fingerprint(doc2));

  // And a bit-identical re-export for the SAME trace: full determinism.
  const obs::Json doc1b = export_and_parse(run1, "obs_timeline_test_r1b.json");
  std::ifstream a("obs_timeline_test_r1.json"), b("obs_timeline_test_r1b.json");
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

}  // namespace
}  // namespace rpol
