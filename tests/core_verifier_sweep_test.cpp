// Property sweep: the verification protocol must behave identically across
// every optimizer the task might use (SGD / SGDM / RMSprop / Adam) and both
// RPoL schemes — honest workers accepted, replayers and spoofers rejected.
// The optimizer state is part of the checkpointed TrainState, so this
// sweeps the exactness of state capture/restore across optimizer families.

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

struct SweepCase {
  nn::OptimizerKind optimizer;
  float lr;
  Scheme scheme;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return nn::optimizer_kind_name(info.param.optimizer) + "_" +
         scheme_name(info.param.scheme);
}

class VerifierSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    task = TinyTask::make(/*seed=*/141, /*steps=*/10, /*interval=*/3);
    task.hp.optimizer = GetParam().optimizer;
    task.hp.learning_rate = GetParam().lr;
    view = data::DatasetView::whole(task.dataset);
    context = task.context(/*nonce=*/606, view);
  }

  VerifyResult verify(const EpochTrace& trace) {
    VerifierConfig cfg;
    cfg.samples_q = 4;
    cfg.beta = beta_for(GetParam().optimizer);
    cfg.use_lsh = GetParam().scheme == Scheme::kRPoLv2;
    lsh::LshConfig lcfg;
    if (cfg.use_lsh) {
      lcfg.params = lsh::optimize_lsh(cfg.beta / 5.0, cfg.beta, 16).params;
      StepExecutor probe(task.factory, task.hp);
      lcfg.dim = static_cast<std::int64_t>(
          extract_trainable(context.initial.model, probe.trainable_mask())
              .size());
      lcfg.seed = 71;
      cfg.lsh_config = lcfg;
    }
    Verifier verifier(task.factory, task.hp, cfg);
    sim::DeviceExecution manager_device(sim::device_g3090(), 888);
    Commitment commitment;
    if (cfg.use_lsh) {
      const lsh::PStableLsh hasher(*cfg.lsh_config);
      StepExecutor probe(task.factory, task.hp);
      commitment = commit_v2(trace, hasher, &probe.trainable_mask());
    } else {
      commitment = commit_v1(trace);
    }
    return verifier.verify(commitment, trace, context,
                           hash_state(context.initial), manager_device);
  }

  // Adaptive optimizers divide by sqrt(second moments), which inflates the
  // relative effect of injected noise (cold slots especially); give them a
  // wider tolerance band. Measured on this task: RMSprop honest errors peak
  // ~8e-2 on the first transition vs spoof distances >= 5e-1.
  static double beta_for(nn::OptimizerKind kind) {
    switch (kind) {
      case nn::OptimizerKind::kRmsProp:
        return 0.2;
      case nn::OptimizerKind::kAdam:
        return 5e-2;
      default:
        return 2e-3;
    }
  }

  EpochTrace produce(WorkerPolicy& policy, std::uint64_t seed) {
    StepExecutor executor(task.factory, task.hp);
    sim::DeviceExecution device(sim::device_ga10(), seed);
    return policy.produce_trace(executor, context, device);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
};

TEST_P(VerifierSweep, HonestAccepted) {
  HonestPolicy honest;
  const VerifyResult result = verify(produce(honest, 1));
  EXPECT_TRUE(result.accepted);
}

TEST_P(VerifierSweep, ReplayRejected) {
  ReplayPolicy replay;
  EXPECT_FALSE(verify(produce(replay, 2)).accepted);
}

TEST_P(VerifierSweep, SpoofRejected) {
  SpoofPolicy spoof(0.1, 0.5);
  EXPECT_FALSE(verify(produce(spoof, 3)).accepted);
}

TEST_P(VerifierSweep, NoiselessReexecutionIsExactForThisOptimizer) {
  // Bit-exact re-execution without device noise: validates optimizer state
  // round-tripping for every optimizer family.
  StepExecutor a(task.factory, task.hp);
  StepExecutor b(task.factory, task.hp);
  const TrainState start = a.save_state();
  const DeterministicSelector sel(context.nonce);
  a.run_steps(0, 6, view, sel, nullptr);
  const TrainState mid = a.save_state();
  a.run_steps(6, 4, view, sel, nullptr);
  b.load_state(mid);
  b.run_steps(6, 4, view, sel, nullptr);
  EXPECT_EQ(a.save_state().model, b.save_state().model);
  EXPECT_EQ(a.save_state().optimizer, b.save_state().optimizer);
  (void)start;
}

INSTANTIATE_TEST_SUITE_P(
    OptimizerSchemeGrid, VerifierSweep,
    ::testing::Values(
        SweepCase{nn::OptimizerKind::kSgd, 0.02F, Scheme::kRPoLv1},
        SweepCase{nn::OptimizerKind::kSgd, 0.02F, Scheme::kRPoLv2},
        SweepCase{nn::OptimizerKind::kSgdMomentum, 0.02F, Scheme::kRPoLv1},
        SweepCase{nn::OptimizerKind::kSgdMomentum, 0.02F, Scheme::kRPoLv2},
        SweepCase{nn::OptimizerKind::kRmsProp, 0.002F, Scheme::kRPoLv1},
        SweepCase{nn::OptimizerKind::kRmsProp, 0.002F, Scheme::kRPoLv2},
        SweepCase{nn::OptimizerKind::kAdam, 0.002F, Scheme::kRPoLv1},
        SweepCase{nn::OptimizerKind::kAdam, 0.002F, Scheme::kRPoLv2}),
    case_name);

}  // namespace
}  // namespace rpol::core
