// Adversarial conformance suite for the fault-injection harness and the
// robust protocol session (src/fault/ + core/session.h's retry state
// machine), plus pool-level graceful degradation.
//
// The table below sweeps fault plans x byzantine behaviors and pins four
// contracts:
//   (a) honest workers are never rejected under pure transport faults that
//       stay within the retry budget;
//   (b) every scripted byzantine behavior ends rejected or evicted — never
//       accepted;
//   (c) outcomes are bitwise seed-reproducible: the same plan seed yields
//       identical verdicts, byte counts, retry counts, fault stats, and
//       final models;
//   (d) byte accounting balances: the per-message-type counters sum to the
//       direction totals, with retransmitted and duplicated bytes counted
//       under their message type.

#include <gtest/gtest.h>

#include <limits>

#include "core/async_pool.h"
#include "core/session.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

// Message-type shorthands for building per-type profiles.
constexpr int kIdxAnnouncement = static_cast<int>(MessageType::kAnnouncement);
constexpr int kIdxState = static_cast<int>(MessageType::kGlobalState);
constexpr int kIdxCommitment = static_cast<int>(MessageType::kCommitment);
constexpr int kIdxUpdate = static_cast<int>(MessageType::kUpdate);
constexpr int kIdxProofRequest = static_cast<int>(MessageType::kProofRequest);
constexpr int kIdxProofResponse = static_cast<int>(MessageType::kProofResponse);

struct Scenario {
  const char* name;
  Scheme scheme = Scheme::kRPoLv2;
  bool has_plan = true;  // false = null plan (the zero-cost path)
  fault::FaultPlan plan;
  fault::RetryPolicy retry;
  bool expect_accept = false;
  // Exact expected status when the scenario is deterministic by design;
  // nullopt when only the accept/not-accept class is pinned.
  std::optional<SessionStatus> expect_status;
};

fault::FaultProfile uniform(double drop, double delay, double truncate,
                            double corrupt, double duplicate) {
  fault::FaultProfile p;
  p.drop = drop;
  p.delay = delay;
  p.truncate = truncate;
  p.corrupt = corrupt;
  p.duplicate = duplicate;
  return p;
}

// Corruption is only recoverable on messages whose receiver can validate
// integrity and NACK (state: announced hash; commitment: root binding;
// proof response: commitment hashes). The announcement and proof request
// carry no binding, so a corrupted-but-decodable copy would silently change
// protocol semantics — honest-transport scenarios keep corruption off them.
void add_validated_corruption(fault::FaultPlan& plan, double probability) {
  for (const int type : {kIdxState, kIdxCommitment, kIdxProofResponse}) {
    plan.profile(type).corrupt = probability;
  }
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> table;

  {
    Scenario s;
    s.name = "lossless_null_plan_v2";
    s.has_plan = false;
    s.expect_accept = true;
    s.expect_status = SessionStatus::kAccepted;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "lossless_empty_plan_v1";
    s.scheme = Scheme::kRPoLv1;
    s.plan = fault::FaultPlan::transport({}, /*seed=*/11);
    s.expect_accept = true;
    s.expect_status = SessionStatus::kAccepted;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "light_drop_v1";
    s.scheme = Scheme::kRPoLv1;
    s.plan = fault::FaultPlan::transport(uniform(0.05, 0, 0, 0, 0), 21);
    s.expect_accept = true;
    s.expect_status = SessionStatus::kAccepted;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "light_drop_v2";
    s.plan = fault::FaultPlan::transport(uniform(0.05, 0, 0, 0, 0), 22);
    s.expect_accept = true;
    s.expect_status = SessionStatus::kAccepted;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "delay_v2";
    s.plan = fault::FaultPlan::transport(uniform(0, 0.15, 0, 0, 0), 23);
    s.expect_accept = true;
    s.expect_status = SessionStatus::kAccepted;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "truncate_v2";
    s.plan = fault::FaultPlan::transport(uniform(0, 0, 0.12, 0, 0), 24);
    s.expect_accept = true;
    s.expect_status = SessionStatus::kAccepted;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "corrupt_validated_v2";
    s.plan = fault::FaultPlan::transport({}, 25);
    add_validated_corruption(s.plan, 0.15);
    s.expect_accept = true;
    s.expect_status = SessionStatus::kAccepted;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "duplicate_v1";
    s.scheme = Scheme::kRPoLv1;
    s.plan = fault::FaultPlan::transport(uniform(0, 0, 0, 0, 0.25), 26);
    s.expect_accept = true;
    s.expect_status = SessionStatus::kAccepted;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "mixed_transport_v2";
    s.plan = fault::FaultPlan::transport(uniform(0.04, 0.04, 0.04, 0, 0.05), 27);
    add_validated_corruption(s.plan, 0.04);
    s.expect_accept = true;
    s.expect_status = SessionStatus::kAccepted;
    table.push_back(s);
  }
  {
    // Transport hostile enough that no honest worker survives the budget:
    // the typed outcome must be timeout, not a verdict against the worker.
    Scenario s;
    s.name = "blackout_drop_v2";
    s.plan = fault::FaultPlan::transport(uniform(0.995, 0, 0, 0, 0), 28);
    s.retry.max_attempts = 3;
    s.expect_accept = false;
    s.expect_status = SessionStatus::kTimeout;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "stale_replay_v1";
    s.scheme = Scheme::kRPoLv1;
    s.plan = fault::FaultPlan::adversary(
        fault::Byzantine::kStaleCommitmentReplay, 31);
    s.expect_accept = false;
    s.expect_status = SessionStatus::kVerdictRejected;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "stale_replay_v2";
    s.plan = fault::FaultPlan::adversary(
        fault::Byzantine::kStaleCommitmentReplay, 32);
    s.expect_accept = false;
    s.expect_status = SessionStatus::kVerdictRejected;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "forged_proofs_v1";
    s.scheme = Scheme::kRPoLv1;
    s.plan = fault::FaultPlan::adversary(
        fault::Byzantine::kForgedCheckpointState, 33);
    s.expect_accept = false;
    s.expect_status = SessionStatus::kDecodeRejected;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "forged_proofs_v2";
    s.plan = fault::FaultPlan::adversary(
        fault::Byzantine::kForgedCheckpointState, 34);
    s.expect_accept = false;
    s.expect_status = SessionStatus::kDecodeRejected;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "proof_withholding_v1";
    s.scheme = Scheme::kRPoLv1;
    s.plan =
        fault::FaultPlan::adversary(fault::Byzantine::kProofWithholding, 35);
    s.expect_accept = false;
    s.expect_status = SessionStatus::kTimeout;
    table.push_back(s);
  }
  {
    Scenario s;
    s.name = "proof_withholding_v2";
    s.plan =
        fault::FaultPlan::adversary(fault::Byzantine::kProofWithholding, 36);
    s.expect_accept = false;
    s.expect_status = SessionStatus::kTimeout;
    table.push_back(s);
  }
  {
    // The junk payload must be rejected by the size cap BEFORE decoding.
    Scenario s;
    s.name = "oversized_payload_v2";
    s.plan =
        fault::FaultPlan::adversary(fault::Byzantine::kOversizedPayload, 37);
    s.plan.oversized_payload_bytes = 1ull << 20;
    s.retry.max_message_bytes = 1ull << 16;
    s.expect_accept = false;
    s.expect_status = SessionStatus::kDecodeRejected;
    table.push_back(s);
  }
  {
    // Byzantine behavior under a lossy transport: whichever typed failure
    // wins, the session must not accept.
    Scenario s;
    s.name = "forged_proofs_plus_drop_v2";
    s.plan = fault::FaultPlan::adversary(
        fault::Byzantine::kForgedCheckpointState, 38);
    for (int t = 0; t < kNumMessageTypes; ++t) s.plan.profile(t).drop = 0.05;
    s.expect_accept = false;
    table.push_back(s);
  }

  return table;
}

struct FaultConformance : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/131, /*steps=*/12, /*interval=*/3);
    view = data::DatasetView::whole(task.dataset);
    StepExecutor init(task.factory, task.hp);
    global = init.save_state();
    model_dim = static_cast<std::int64_t>(
        extract_trainable(global.model, init.trainable_mask()).size());
  }

  SessionConfig config(const Scenario& scenario) {
    SessionConfig cfg;
    cfg.scheme = scenario.scheme;
    cfg.samples_q = 3;
    cfg.beta = 2e-3;
    if (scenario.scheme == Scheme::kRPoLv2) {
      lsh::LshConfig lcfg;
      lcfg.params = lsh::optimize_lsh(cfg.beta / 5.0, cfg.beta, 16).params;
      lcfg.dim = model_dim;
      lcfg.seed = 44;
      cfg.lsh = lcfg;
    }
    if (scenario.has_plan) cfg.fault_plan = &scenario.plan;
    cfg.retry = scenario.retry;
    return cfg;
  }

  SessionOutcome run(const Scenario& scenario) {
    HonestPolicy honest;  // byzantine behaviors are scripted by the plan
    return run_protocol_session(task.factory, task.hp, config(scenario),
                                global, /*nonce=*/505, view, honest,
                                sim::device_ga10(), /*worker_seed=*/3,
                                sim::device_g3090(), /*manager_seed=*/4);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  TrainState global;
  std::int64_t model_dim = 0;
};

TEST_F(FaultConformance, ScenarioTable) {
  const auto table = scenarios();
  ASSERT_GE(table.size(), 12u);
  for (const Scenario& scenario : table) {
    SCOPED_TRACE(scenario.name);
    const SessionOutcome first = run(scenario);
    const SessionOutcome second = run(scenario);

    // (a)/(b): the verdict class, and the exact typed status where pinned.
    EXPECT_EQ(first.accepted, scenario.expect_accept);
    EXPECT_EQ(first.accepted, first.status == SessionStatus::kAccepted);
    if (scenario.expect_status.has_value()) {
      EXPECT_EQ(first.status, *scenario.expect_status)
          << "got " << session_status_name(first.status);
    }

    // (c): bitwise seed-reproducibility of the complete outcome.
    EXPECT_EQ(first.status, second.status);
    EXPECT_EQ(first.final_model, second.final_model);
    EXPECT_EQ(first.bytes_to_worker, second.bytes_to_worker);
    EXPECT_EQ(first.bytes_to_manager, second.bytes_to_manager);
    EXPECT_EQ(first.bytes_by_type, second.bytes_by_type);
    EXPECT_EQ(first.retries_by_type, second.retries_by_type);
    EXPECT_EQ(first.total_retries, second.total_retries);
    EXPECT_EQ(first.backoff_ticks, second.backoff_ticks);
    EXPECT_TRUE(first.faults == second.faults);

    // (d): every byte crossing the channel is attributed to exactly one
    // message type, retransmissions and duplicates included.
    std::uint64_t typed_total = 0;
    for (const std::uint64_t b : first.bytes_by_type) typed_total += b;
    EXPECT_EQ(typed_total, first.bytes_to_worker + first.bytes_to_manager);

    // Fault bookkeeping coherence: a retry implies a prior fault, and the
    // zero-cost path reports no faults at all.
    if (!scenario.has_plan || !scenario.plan.has_transport_faults()) {
      if (scenario.plan.byzantine != fault::Byzantine::kProofWithholding &&
          scenario.plan.byzantine != fault::Byzantine::kOversizedPayload &&
          scenario.plan.byzantine != fault::Byzantine::kForgedCheckpointState) {
        EXPECT_EQ(first.total_retries, 0);
      }
      EXPECT_EQ(first.faults.total_faults(), 0u);
    }
    if (first.total_retries > 0) {
      EXPECT_GT(first.backoff_ticks, 0);
    }
  }
}

TEST_F(FaultConformance, HonestNeverRejectedAcrossSeedsWithinBudget) {
  // (a) strengthened: sweep plan seeds under a light mixed plan; an honest
  // worker must come through every time (each message has 5 attempts and
  // per-attempt fault probability ~0.1 — the budget absorbs it).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Scenario s;
    s.name = "seed_sweep";
    s.plan = fault::FaultPlan::transport(uniform(0.04, 0.03, 0.03, 0, 0.03),
                                         seed * 1009);
    add_validated_corruption(s.plan, 0.04);
    const SessionOutcome outcome = run(s);
    EXPECT_EQ(outcome.status, SessionStatus::kAccepted) << "seed " << seed;
  }
}

TEST_F(FaultConformance, RetriesHappenAndAreTyped) {
  Scenario s;
  s.name = "drop_heavy_but_within_budget";
  s.plan = fault::FaultPlan::transport(uniform(0.30, 0, 0, 0, 0), 97);
  const SessionOutcome outcome = run(s);
  EXPECT_TRUE(outcome.accepted);
  EXPECT_GT(outcome.total_retries, 0);
  std::int64_t typed = 0;
  for (const std::uint64_t r : outcome.retries_by_type) {
    typed += static_cast<std::int64_t>(r);
  }
  EXPECT_EQ(typed, outcome.total_retries);
  EXPECT_GT(outcome.faults.total_faults(), 0u);
}

TEST_F(FaultConformance, StatusNamesPinned) {
  EXPECT_STREQ(session_status_name(SessionStatus::kAccepted), "accepted");
  EXPECT_STREQ(session_status_name(SessionStatus::kVerdictRejected),
               "verdict_rejected");
  EXPECT_STREQ(session_status_name(SessionStatus::kDecodeRejected),
               "decode_rejected");
  EXPECT_STREQ(session_status_name(SessionStatus::kTimeout), "timeout");
  EXPECT_STREQ(fault::byzantine_name(fault::Byzantine::kNone), "none");
  EXPECT_STREQ(
      fault::byzantine_name(fault::Byzantine::kStaleCommitmentReplay),
      "stale_commitment_replay");
  EXPECT_STREQ(fault::byzantine_name(fault::Byzantine::kForgedCheckpointState),
               "forged_checkpoint_state");
  EXPECT_STREQ(fault::byzantine_name(fault::Byzantine::kProofWithholding),
               "proof_withholding");
  EXPECT_STREQ(fault::byzantine_name(fault::Byzantine::kOversizedPayload),
               "oversized_payload");
}

TEST(FaultPrimitives, BackoffIsExponentialAndCapped) {
  fault::RetryPolicy policy;
  policy.backoff_base_ticks = 2;
  policy.backoff_cap_ticks = 16;
  EXPECT_EQ(fault::backoff_ticks(policy, 0), 2);
  EXPECT_EQ(fault::backoff_ticks(policy, 1), 4);
  EXPECT_EQ(fault::backoff_ticks(policy, 2), 8);
  EXPECT_EQ(fault::backoff_ticks(policy, 3), 16);
  EXPECT_EQ(fault::backoff_ticks(policy, 10), 16);  // capped
}

// Regression: the doubling loop used to run `base << retry` arithmetic that
// overflowed (signed UB) once `retry` grew past the cap's bit width, or when
// the cap itself sat in the top half of the int64 range. The saturating
// rewrite must pin to the cap instead, for ANY attempt index — asan/ubsan
// tier-1 passes run this test, so an overflow would trip the sanitizer too.
TEST(FaultPrimitives, BackoffSaturatesAtExtremeAttemptCounts) {
  fault::RetryPolicy policy;
  policy.backoff_base_ticks = 2;
  policy.backoff_cap_ticks = 16;
  // Way past the doubling range: stays exactly at the cap.
  EXPECT_EQ(fault::backoff_ticks(policy, 1000), 16);
  EXPECT_EQ(fault::backoff_ticks(policy, std::numeric_limits<int>::max()), 16);

  // Cap in the top half of the int64 range: doubling from 1 would overflow
  // after 62 shifts; the result must saturate at the cap, never wrap.
  policy.backoff_base_ticks = 1;
  policy.backoff_cap_ticks = std::numeric_limits<std::int64_t>::max();
  const std::int64_t at62 = fault::backoff_ticks(policy, 62);
  EXPECT_EQ(at62, std::int64_t{1} << 62);
  EXPECT_EQ(fault::backoff_ticks(policy, 63),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(fault::backoff_ticks(policy, 10000),
            std::numeric_limits<std::int64_t>::max());

  // Degenerate policies clamp instead of producing negative waits.
  policy.backoff_base_ticks = -5;
  policy.backoff_cap_ticks = 16;
  EXPECT_EQ(fault::backoff_ticks(policy, 0), 0);
  EXPECT_EQ(fault::backoff_ticks(policy, 7), 0);
  policy.backoff_base_ticks = 4;
  policy.backoff_cap_ticks = -1;
  EXPECT_EQ(fault::backoff_ticks(policy, 3), 0);
  // Base above the cap: the cap wins from attempt zero.
  policy.backoff_base_ticks = 100;
  policy.backoff_cap_ticks = 16;
  EXPECT_EQ(fault::backoff_ticks(policy, 0), 16);
  // Negative attempt indices are treated as attempt zero.
  policy.backoff_base_ticks = 2;
  EXPECT_EQ(fault::backoff_ticks(policy, -3), 2);
}

TEST(FaultPrimitives, ExpectedTransmissionsMatchesGeometricSum) {
  EXPECT_DOUBLE_EQ(fault::expected_transmissions(0.0, 5), 1.0);
  EXPECT_NEAR(fault::expected_transmissions(0.5, 3), 1.75, 1e-12);
  EXPECT_DOUBLE_EQ(fault::expected_transmissions(1.0, 4), 4.0);
}

TEST(FaultPrimitives, InjectorStreamsAreIndependentButReproducible) {
  fault::FaultPlan plan =
      fault::FaultPlan::transport(uniform(0.5, 0, 0, 0, 0), 1234);
  fault::FaultInjector a1(plan, /*stream=*/0);
  fault::FaultInjector a2(plan, /*stream=*/0);
  fault::FaultInjector b(plan, /*stream=*/1);
  bool diverged = false;
  for (int i = 0; i < 64; ++i) {
    const auto d1 = a1.attempt(0);
    const auto d2 = a2.attempt(0);
    const auto d3 = b.attempt(0);
    EXPECT_EQ(static_cast<int>(d1.status), static_cast<int>(d2.status));
    diverged = diverged || d1.status != d3.status;
  }
  EXPECT_TRUE(diverged);  // different streams, different fault sequences
  EXPECT_TRUE(a1.stats() == a2.stats());
}

// ---------------------------------------------------------------------------
// Chunked state transfer under faults (bounded-memory sessions): the global
// state and the model update travel as independently integrity-checked
// chunks (core/wire.h StateChunk) under their logical MessageType, so the
// per-type fault profiles and retry budgets apply to every chunk. The
// contracts mirror the legacy table, plus one new one: a transfer that loses
// a middle chunk ends in a TYPED failure — a torn or partially-assembled
// state is never accepted.

struct ChunkedSession : public FaultConformance {
  SessionOutcome run_chunked(const Scenario& scenario,
                             std::size_t chunk_bytes) {
    HonestPolicy honest;
    SessionConfig cfg = config(scenario);
    cfg.chunk_bytes = chunk_bytes;
    return run_protocol_session(task.factory, task.hp, cfg, global,
                                /*nonce=*/505, view, honest,
                                sim::device_ga10(), /*worker_seed=*/3,
                                sim::device_g3090(), /*manager_seed=*/4);
  }
};

TEST_F(ChunkedSession, LosslessChunkedMatchesLegacyModelBits) {
  // Chunking is pure transport framing: on a clean channel the verdict and
  // every model bit must match the single-frame path at any chunk size,
  // including one larger than the whole encoding (single-chunk stream).
  Scenario s;
  s.name = "lossless_chunked";
  s.has_plan = false;
  const SessionOutcome legacy = run(s);
  ASSERT_EQ(legacy.status, SessionStatus::kAccepted);
  for (const std::size_t chunk_bytes : {48ul, 256ul, 1ul << 20}) {
    SCOPED_TRACE(chunk_bytes);
    const SessionOutcome chunked = run_chunked(s, chunk_bytes);
    EXPECT_EQ(chunked.status, SessionStatus::kAccepted);
    EXPECT_EQ(chunked.final_model, legacy.final_model);
    // Byte accounting still balances with chunk framing in play.
    std::uint64_t typed_total = 0;
    for (const std::uint64_t b : chunked.bytes_by_type) typed_total += b;
    EXPECT_EQ(typed_total,
              chunked.bytes_to_worker + chunked.bytes_to_manager);
  }
}

TEST_F(ChunkedSession, SurvivesTransportFaultsWithinBudget) {
  // Per-chunk integrity + per-chunk retry: a lossy-but-bounded channel
  // heals chunk by chunk, and the accepted model is bitwise the lossless
  // one. Retries must actually occur (the plan is hot enough to hit some of
  // the dozens of chunk legs).
  Scenario lossless;
  lossless.name = "reference";
  lossless.has_plan = false;
  const SessionOutcome reference = run_chunked(lossless, 64);

  Scenario s;
  s.name = "chunked_mixed_transport";
  s.plan = fault::FaultPlan::transport(uniform(0.06, 0.04, 0, 0, 0.05), 41);
  add_validated_corruption(s.plan, 0.06);
  const SessionOutcome outcome = run_chunked(s, 64);
  EXPECT_EQ(outcome.status, SessionStatus::kAccepted);
  EXPECT_EQ(outcome.final_model, reference.final_model);
  EXPECT_GT(outcome.total_retries, 0);
  EXPECT_GT(outcome.faults.total_faults(), 0u);
}

TEST_F(ChunkedSession, PersistentChunkLossIsTypedTimeout) {
  // Every state chunk dropped: the first chunk leg exhausts its budget and
  // the session reports transport timeout — not a verdict, not a crash.
  Scenario s;
  s.name = "chunk_blackout";
  s.plan = fault::FaultPlan::transport({}, 42);
  s.plan.profile(kIdxState).drop = 1.0;
  s.retry.max_attempts = 3;
  const SessionOutcome outcome = run_chunked(s, 64);
  EXPECT_EQ(outcome.status, SessionStatus::kTimeout);
  EXPECT_FALSE(outcome.accepted);
}

TEST_F(ChunkedSession, PersistentTruncationAndCorruptionAreDecodeRejected) {
  // Chunks that always arrive mangled fail their framing/digest check every
  // attempt; exhaustion through NACKs is the typed decode rejection. Sweep
  // both legs (download of the global state, upload of the update).
  for (const int target : {kIdxState, kIdxUpdate}) {
    for (const bool truncate : {true, false}) {
      SCOPED_TRACE(target);
      SCOPED_TRACE(truncate);
      Scenario s;
      s.name = "chunk_mangled";
      s.plan = fault::FaultPlan::transport({}, 43);
      if (truncate) {
        s.plan.profile(target).truncate = 1.0;
      } else {
        s.plan.profile(target).corrupt = 1.0;
      }
      s.retry.max_attempts = 3;
      const SessionOutcome outcome = run_chunked(s, 64);
      EXPECT_EQ(outcome.status, SessionStatus::kDecodeRejected);
      EXPECT_FALSE(outcome.accepted);
    }
  }
}

TEST_F(ChunkedSession, MiddleChunkFaultSweepNeverAcceptsTornState) {
  // Seed sweep over a plan hostile to state chunks (drop + truncate +
  // duplicate at rates that overwhelm a 2-attempt budget on SOME middle
  // chunk most runs): every outcome must carry a typed status, and any
  // accepted run must reproduce the lossless model bits exactly — the
  // assembler's ordered offsets make a torn accept structurally impossible,
  // and this pins it end to end.
  Scenario lossless;
  lossless.name = "reference";
  lossless.has_plan = false;
  const SessionOutcome reference = run_chunked(lossless, 48);

  int failed = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario s;
    s.name = "chunk_fault_sweep";
    s.plan = fault::FaultPlan::transport({}, seed * 7919);
    s.plan.profile(kIdxState).drop = 0.25;
    s.plan.profile(kIdxState).truncate = 0.15;
    s.plan.profile(kIdxUpdate).drop = 0.25;
    s.plan.profile(kIdxUpdate).duplicate = 0.20;
    s.retry.max_attempts = 2;
    const SessionOutcome outcome = run_chunked(s, 48);
    switch (outcome.status) {
      case SessionStatus::kAccepted:
        EXPECT_TRUE(outcome.accepted);
        EXPECT_EQ(outcome.final_model, reference.final_model)
            << "seed " << seed << " accepted a torn state";
        break;
      case SessionStatus::kTimeout:
      case SessionStatus::kDecodeRejected:
        ++failed;
        EXPECT_FALSE(outcome.accepted);
        EXPECT_TRUE(outcome.final_model.empty());
        break;
      case SessionStatus::kVerdictRejected:
        ADD_FAILURE() << "transport faults must not produce a verdict "
                         "against an honest worker (seed "
                      << seed << ")";
        break;
    }
  }
  // The sweep must actually exercise the failure path (the rates above
  // guarantee it overwhelmingly; a silent all-accept would mean the plan
  // never touched a chunk).
  EXPECT_GT(failed, 0);
}

// ---------------------------------------------------------------------------
// Pool-level graceful degradation.

struct PoolDegradation : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/61, /*steps=*/10, /*interval=*/3);
    split = std::make_unique<data::TrainTestSplit>(
        data::train_test_split(task.dataset, 0.25, 17));
  }

  PoolConfig config(std::int64_t epochs) {
    PoolConfig cfg;
    cfg.scheme = Scheme::kRPoLv1;
    cfg.hp = task.hp;
    cfg.epochs = epochs;
    cfg.samples_q = 2;
    cfg.seed = 71;
    return cfg;
  }

  std::vector<WorkerSpec> honest_workers(std::size_t count) {
    std::vector<WorkerSpec> specs;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < count; ++w) {
      WorkerSpec spec;
      spec.policy = std::make_unique<HonestPolicy>();
      spec.device = devices[w % devices.size()];
      specs.push_back(std::move(spec));
    }
    return specs;
  }

  TinyTask task{TinyTask::make()};
  std::unique_ptr<data::TrainTestSplit> split;
};

TEST_F(PoolDegradation, LightFaultsRetransmitWithoutEvicting) {
  PoolConfig cfg = config(/*epochs=*/3);
  const fault::FaultPlan plan = fault::FaultPlan::transport(
      uniform(0.10, 0, 0, 0, 0), /*seed=*/7);
  cfg.fault_plan = &plan;
  MiningPool pool(cfg, task.factory, task.dataset, split->test,
                  honest_workers(4));
  const PoolRunReport report = pool.run();
  EXPECT_GT(report.total_retransmissions, 0);
  for (const auto& epoch : report.epochs) {
    EXPECT_EQ(epoch.evicted_count, 0);
    for (const bool p : epoch.participated) EXPECT_TRUE(p);
    for (const bool a : epoch.accepted) EXPECT_TRUE(a);
  }
}

TEST_F(PoolDegradation, BlackoutEvictsAndPoolSurvives) {
  PoolConfig cfg = config(/*epochs=*/4);
  const fault::FaultPlan plan = fault::FaultPlan::transport(
      uniform(0.999, 0, 0, 0, 0), /*seed=*/9);
  cfg.fault_plan = &plan;
  cfg.retry.max_attempts = 2;
  cfg.eviction_threshold = 2;
  MiningPool pool(cfg, task.factory, task.dataset, split->test,
                  honest_workers(3));
  const PoolRunReport report = pool.run();
  ASSERT_EQ(report.epochs.size(), 4u);
  EXPECT_GT(report.total_session_failures, 0);
  // All workers unreachable => evicted once the threshold trips...
  EXPECT_EQ(report.epochs.back().evicted_count, 3);
  for (const bool e : report.epochs.back().evicted) EXPECT_TRUE(e);
  // ...and later epochs still complete (evaluation runs, nothing crashes,
  // evicted workers sit out).
  for (const bool p : report.epochs.back().participated) EXPECT_FALSE(p);
  EXPECT_GT(report.epochs.back().test_accuracy, 0.0);
  for (std::size_t w = 0; w < 3; ++w) EXPECT_TRUE(pool.worker_evicted(w));
}

TEST_F(PoolDegradation, EpochReportsAreSeedReproducible) {
  const fault::FaultPlan plan = fault::FaultPlan::transport(
      uniform(0.15, 0.05, 0, 0, 0.05), /*seed=*/13);
  auto run_once = [&]() {
    PoolConfig cfg = config(/*epochs=*/2);
    cfg.fault_plan = &plan;
    MiningPool pool(cfg, task.factory, task.dataset, split->test,
                    honest_workers(4));
    return pool.run();
  };
  const PoolRunReport r1 = run_once();
  const PoolRunReport r2 = run_once();
  ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
  EXPECT_EQ(r1.total_bytes, r2.total_bytes);
  EXPECT_EQ(r1.total_retransmissions, r2.total_retransmissions);
  EXPECT_EQ(r1.total_session_failures, r2.total_session_failures);
  for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_EQ(r1.epochs[e].accepted, r2.epochs[e].accepted);
    EXPECT_EQ(r1.epochs[e].participated, r2.epochs[e].participated);
    EXPECT_EQ(r1.epochs[e].bytes_this_epoch, r2.epochs[e].bytes_this_epoch);
    EXPECT_EQ(r1.epochs[e].test_accuracy, r2.epochs[e].test_accuracy);
  }
}

TEST_F(PoolDegradation, AsyncPoolEvictsUnreachableWorkerAndContinues) {
  AsyncPoolConfig cfg;
  cfg.hp = task.hp;
  cfg.ticks = 10;
  cfg.beta = 2e-3;
  cfg.seed = 19;
  const fault::FaultPlan plan = fault::FaultPlan::transport(
      uniform(0.999, 0, 0, 0, 0), /*seed=*/5);
  cfg.fault_plan = &plan;
  cfg.retry.max_attempts = 2;
  cfg.eviction_threshold = 2;

  std::vector<AsyncWorkerSpec> specs;
  const auto devices = sim::all_devices();
  for (std::size_t w = 0; w < 3; ++w) {
    AsyncWorkerSpec spec;
    spec.policy = std::make_unique<HonestPolicy>();
    spec.device = devices[w % devices.size()];
    spec.period = static_cast<std::int64_t>(w) + 1;
    specs.push_back(std::move(spec));
  }
  AsyncMiningPool pool(cfg, task.factory, task.dataset, split->test,
                       std::move(specs));
  const AsyncRunReport report = pool.run();
  EXPECT_GT(report.lost, 0);
  EXPECT_EQ(report.applied, 0);
  // Everyone blacked out => eventually evicted, but the scheduler kept
  // ticking and evaluating to the end.
  EXPECT_EQ(report.accuracy_curve.size(), 10u);
  for (const auto& sub : report.submissions) EXPECT_FALSE(sub.delivered);
}

TEST_F(PoolDegradation, NullPlanMatchesLegacyAccountingExactly) {
  // The fault layer must be zero-cost when not installed: a pool with no
  // plan produces byte-for-byte the same report as before the layer existed
  // (cross-checked against a pool with an explicit all-zero plan, which
  // draws RNG but never faults).
  const fault::FaultPlan zero = fault::FaultPlan::transport({}, /*seed=*/3);
  auto run_with = [&](const fault::FaultPlan* plan) {
    PoolConfig cfg = config(/*epochs=*/2);
    cfg.fault_plan = plan;
    MiningPool pool(cfg, task.factory, task.dataset, split->test,
                    honest_workers(4));
    return pool.run();
  };
  const PoolRunReport without = run_with(nullptr);
  const PoolRunReport with_zero = run_with(&zero);
  ASSERT_EQ(without.epochs.size(), with_zero.epochs.size());
  EXPECT_EQ(without.total_bytes, with_zero.total_bytes);
  EXPECT_EQ(without.total_retransmissions, 0);
  EXPECT_EQ(with_zero.total_retransmissions, 0);
  for (std::size_t e = 0; e < without.epochs.size(); ++e) {
    EXPECT_EQ(without.epochs[e].test_accuracy, with_zero.epochs[e].test_accuracy);
    EXPECT_EQ(without.epochs[e].bytes_this_epoch,
              with_zero.epochs[e].bytes_this_epoch);
  }
}

}  // namespace
}  // namespace rpol::core
