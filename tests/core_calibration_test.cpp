// Adaptive-calibration tests (Sec. V-C / VII-C): reproduction-error
// measurement across device pairs, the Fig. 4 trends, alpha/beta
// derivation and LSH re-optimization.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "core/calibrate.h"
#include "data/partition.h"
#include "sim/stats.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

struct CalibrationFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/31, /*steps=*/12, /*interval=*/3);
    view = data::DatasetView::whole(task.dataset);
    context = task.context(/*nonce=*/555, view);
  }

  std::vector<double> errors(const sim::DeviceProfile& a, std::uint64_t sa,
                             const sim::DeviceProfile& b, std::uint64_t sb) {
    return measure_reproduction_errors(task.factory, task.hp, context, a, sa, b,
                                       sb);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
};

TEST_F(CalibrationFixture, ErrorsExistOnSameDeviceDifferentRuns) {
  const auto errs = errors(sim::device_g3090(), 1, sim::device_g3090(), 2);
  ASSERT_EQ(errs.size(), 4u);
  for (const double e : errs) EXPECT_GT(e, 0.0);
}

TEST_F(CalibrationFixture, IdenticalRunsHaveZeroError) {
  // Same device AND same run seed => bit-identical noise => zero distance.
  const auto errs = errors(sim::device_g3090(), 7, sim::device_g3090(), 7);
  for (const double e : errs) EXPECT_EQ(e, 0.0);
}

TEST_F(CalibrationFixture, FasterDevicePairsLargerErrors) {
  // Fig. 4: the top-2 pair (G3090, GA10) shows the largest errors; a slow
  // pair (GT4, GP100) the smallest. Average over several runs to de-noise.
  auto mean_error = [&](const sim::DeviceProfile& a, const sim::DeviceProfile& b) {
    double total = 0.0;
    int count = 0;
    for (std::uint64_t s = 0; s < 3; ++s) {
      for (const double e : errors(a, 100 + s, b, 200 + s)) {
        total += e;
        ++count;
      }
    }
    return total / count;
  };
  const double fast_pair = mean_error(sim::device_g3090(), sim::device_ga10());
  const double slow_pair = mean_error(sim::device_gt4(), sim::device_gp100());
  EXPECT_GT(fast_pair, slow_pair);
}

TEST_F(CalibrationFixture, ErrorsGrowWithCheckpointInterval) {
  // Sec. VII-C: reproduction errors grow (~linearly) with the interval.
  auto mean_for_interval = [&](std::int64_t interval) {
    TinyTask t = TinyTask::make(/*seed=*/31, /*steps=*/12, interval);
    const auto v = data::DatasetView::whole(t.dataset);
    const EpochContext ctx = t.context(555, v);
    const auto errs = measure_reproduction_errors(
        t.factory, t.hp, ctx, sim::device_g3090(), 11, sim::device_ga10(), 12);
    return sim::mean(errs);
  };
  const double e2 = mean_for_interval(2);
  const double e6 = mean_for_interval(6);
  EXPECT_GT(e6, 1.5 * e2);
}

TEST_F(CalibrationFixture, IidSubtasksHaveSimilarErrors) {
  // Fig. 4: errors across i.i.d. sub-datasets are close (within a small
  // factor), supporting the manager estimating alpha from its own part.
  const auto parts = data::shuffle_and_partition(task.dataset, 4, 9);
  std::vector<double> means;
  for (const auto& part : parts) {
    EpochContext ctx = context;
    ctx.dataset = &part;
    const auto errs = measure_reproduction_errors(
        task.factory, task.hp, ctx, sim::device_g3090(), 21, sim::device_ga10(),
        22);
    means.push_back(sim::mean(errs));
  }
  const double lo = sim::min_value(means);
  const double hi = sim::max_value(means);
  EXPECT_LT(hi / lo, 3.0);
}

TEST_F(CalibrationFixture, CalibrateEpochProducesSaneThresholds) {
  CalibrationConfig cfg;  // beta = 5 alpha
  const CalibrationResult result =
      calibrate_epoch(task.factory, task.hp, context, sim::device_g3090(),
                      sim::device_ga10(), /*epoch_seed=*/3, cfg);
  EXPECT_GT(result.alpha, 0.0);
  EXPECT_NEAR(result.beta, 5.0 * result.alpha, 1e-12);
  EXPECT_GE(result.alpha, result.max_error * 0.5);
  EXPECT_LE(result.lsh.params.k * result.lsh.params.l, cfg.k_lsh);
  // The tuned family tolerates alpha and rejects beta on the analytic model.
  EXPECT_GT(result.lsh.pr_alpha, 0.9);
  EXPECT_LT(result.lsh.pr_beta, 0.1);
}

TEST_F(CalibrationFixture, AlphaCoversObservedWorkerErrors) {
  // The manager's alpha (mean + sd on its own sub-task, top-2 devices) must
  // upper-bound typical worker reproduction distances measured under the
  // verification pairing (worker GA10 vs manager G3090) — the "0 false
  // negatives" premise of Sec. VII-D. Allow beta as the hard bound.
  CalibrationConfig cfg;
  const CalibrationResult calib =
      calibrate_epoch(task.factory, task.hp, context, sim::device_g3090(),
                      sim::device_ga10(), 5, cfg);
  const auto worker_errors =
      errors(sim::device_ga10(), 300, sim::device_g3090(), 301);
  for (const double e : worker_errors) {
    EXPECT_LT(e, calib.beta);
  }
}

// ---------------------------------------------------------------------------
// Property tests over derive_thresholds(): seeded synthetic reproduction-
// error distributions must always yield thresholds that accept the honest
// trace the calibration was derived from (every measured error stays inside
// the verifier's acceptance region) while respecting the LSH budget.
// ---------------------------------------------------------------------------

namespace {

// Seeded synthetic reproduction-error distribution. Lognormal matches the
// heavy-ish right tail of real fp-reassociation noise; the scale sweeps many
// orders of magnitude so the property holds across task sizes.
std::vector<double> synthetic_errors(std::uint64_t seed, std::size_t n,
                                     double scale, double sigma) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(0.0, sigma);
  std::vector<double> errors;
  errors.reserve(n);
  for (std::size_t i = 0; i < n; ++i) errors.push_back(scale * dist(rng));
  return errors;
}

}  // namespace

TEST(CalibrationProperty, HonestTraceAlwaysAcceptedUnderMaxPlusSd) {
  // With alpha = max + sd and beta = beta_x * alpha (beta_x >= 1), every
  // error in the calibrating distribution is <= beta: the honest trace that
  // produced the distribution can never be rejected by the distance test.
  CalibrationConfig cfg;
  cfg.alpha_mode = AlphaMode::kMaxPlusSd;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const double scale = std::pow(10.0, -9.0 + static_cast<double>(seed % 8));
    const auto errors =
        synthetic_errors(seed * 7919, /*n=*/4 + seed % 13, scale,
                         /*sigma=*/0.25 + 0.1 * static_cast<double>(seed % 5));
    const CalibrationResult result = derive_thresholds(errors, cfg);
    EXPECT_DOUBLE_EQ(result.max_error, sim::max_value(errors));
    EXPECT_GE(result.alpha, result.max_error) << "seed " << seed;
    for (const double e : errors) {
      EXPECT_LE(e, result.beta) << "seed " << seed;
    }
  }
}

TEST(CalibrationProperty, LshBudgetAndSeparationHoldAcrossDistributions) {
  // For every seeded distribution the re-optimized LSH family must respect
  // the k*l <= K_lsh budget and separate the thresholds: accepting at alpha
  // is always at least as likely as accepting at beta (alpha < beta).
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    CalibrationConfig cfg;
    cfg.k_lsh = 4 + static_cast<int>(seed % 3) * 8;  // 4, 12, 20
    cfg.alpha_mode = seed % 2 == 0 ? AlphaMode::kMaxPlusSd
                                   : AlphaMode::kMeanPlusSd;
    const auto errors = synthetic_errors(seed * 104729, /*n=*/8, 1e-4, 0.5);
    const CalibrationResult result = derive_thresholds(errors, cfg);
    EXPECT_LT(result.alpha, result.beta) << "seed " << seed;
    EXPECT_LE(result.lsh.params.k * result.lsh.params.l, cfg.k_lsh)
        << "seed " << seed;
    EXPECT_GE(result.lsh.params.k, 1);
    EXPECT_GE(result.lsh.params.l, 1);
    EXPECT_GE(result.lsh.pr_alpha, result.lsh.pr_beta) << "seed " << seed;
  }
}

TEST(CalibrationProperty, DerivationIsDeterministic) {
  const auto errors = synthetic_errors(42, 10, 1e-3, 0.4);
  CalibrationConfig cfg;
  const CalibrationResult a = derive_thresholds(errors, cfg);
  const CalibrationResult b = derive_thresholds(errors, cfg);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.beta, b.beta);
  EXPECT_EQ(a.lsh.params.k, b.lsh.params.k);
  EXPECT_EQ(a.lsh.params.l, b.lsh.params.l);
  EXPECT_EQ(a.lsh.params.r, b.lsh.params.r);
}

TEST(CalibrationProperty, DegenerateDistributionsStayWellPosed) {
  CalibrationConfig cfg;
  // Empty distribution: calibration cannot proceed.
  EXPECT_THROW(derive_thresholds({}, cfg), std::logic_error);
  // All-zero errors (bitwise-identical devices): the degenerate guard must
  // still produce a positive, ordered (alpha, beta) pair.
  const CalibrationResult zero =
      derive_thresholds(std::vector<double>(5, 0.0), cfg);
  EXPECT_GT(zero.alpha, 0.0);
  EXPECT_GT(zero.beta, zero.alpha);
  // A single measurement is a legal (if thin) distribution.
  const CalibrationResult one = derive_thresholds({1e-5}, cfg);
  EXPECT_GT(one.alpha, 0.0);
  EXPECT_LE(one.lsh.params.k * one.lsh.params.l, cfg.k_lsh);
}

TEST_F(CalibrationFixture, PerTaskErrorsLookNormal) {
  // Sec. VII-C: reproduction errors for the same task over i.i.d. data
  // "follow a normal distribution" (KS-tested). The per-task statistic is
  // the run's mean checkpoint error; collect it over many independent runs.
  std::vector<double> per_task;
  for (std::uint64_t s = 0; s < 40; ++s) {
    per_task.push_back(sim::mean(
        errors(sim::device_g3090(), 1000 + s, sim::device_ga10(), 2000 + s)));
  }
  const auto ks = sim::ks_normality_test(per_task);
  EXPECT_TRUE(ks.normal_at_5pct) << "KS stat=" << ks.statistic
                                 << " p=" << ks.p_value;
}

}  // namespace
}  // namespace rpol::core
