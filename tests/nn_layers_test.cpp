// Gradient checks and behavioural tests for every primitive layer.
//
// Each layer's backward pass is validated against central finite
// differences through a full softmax-CE loss — the strongest correctness
// guarantee available for an explicit-backprop library.

#include <gtest/gtest.h>

#include "nn/blocks.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "obs/obs.h"
#include "test_util.h"

namespace rpol::nn {
namespace {

Tensor random_input(const Shape& shape, std::uint64_t seed, float stddev = 1.0F) {
  Rng rng(seed);
  return Tensor::randn(shape, rng, stddev);
}

std::vector<std::int64_t> cyclic_labels(std::int64_t n, std::int64_t classes) {
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % classes;
  return labels;
}

// ---------------------------------------------------------------------------
// Linear

TEST(Linear, ForwardHandValues) {
  Rng rng(1);
  Linear fc(2, 2, rng);
  fc.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  fc.bias().value = Tensor({2}, {10, 20});
  const Tensor x({1, 2}, {5, 6});
  const Tensor y = fc.forward(x, true);
  EXPECT_EQ(y.at2(0, 0), 1 * 5 + 2 * 6 + 10);
  EXPECT_EQ(y.at2(0, 1), 3 * 5 + 4 * 6 + 20);
}

TEST(Linear, GradientCheck) {
  Rng rng(2);
  Model m("t");
  m.add(std::make_unique<Linear>(6, 4, rng));
  const Tensor x = random_input({3, 6}, 100);
  rpol::testing::check_model_gradients(m, x, cyclic_labels(3, 4), 5e-2, 1e-3, 1);
}

TEST(Linear, InputShapeMismatchThrows) {
  Rng rng(3);
  Linear fc(4, 2, rng);
  const Tensor bad({2, 5});
  EXPECT_THROW(fc.forward(bad, true), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Conv2d

TEST(Conv2d, OutputShape) {
  Rng rng(4);
  Conv2d conv(Conv2dSpec{3, 8, 3, 2, 1}, rng);
  EXPECT_EQ(conv.output_shape({2, 3, 8, 8}), (Shape{2, 8, 4, 4}));
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(5);
  Conv2d conv(Conv2dSpec{1, 1, 1, 1, 0}, rng, /*bias=*/false);
  conv.weight().value = Tensor({1, 1}, {1.0F});
  const Tensor x = random_input({2, 1, 3, 3}, 6);
  const Tensor y = conv.forward(x, true);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y.at(i), x.at(i));
}

TEST(Conv2d, GradientCheckStride1) {
  Rng rng(7);
  Model m("t");
  m.add(std::make_unique<Conv2d>(Conv2dSpec{2, 3, 3, 1, 1}, rng));
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Linear>(3 * 4 * 4, 3, rng));
  const Tensor x = random_input({2, 2, 4, 4}, 101);
  rpol::testing::check_model_gradients(m, x, cyclic_labels(2, 3), 5e-2, 2e-3, 5);
}

TEST(Conv2d, GradientCheckStride2NoBias) {
  Rng rng(8);
  Model m("t");
  m.add(std::make_unique<Conv2d>(Conv2dSpec{2, 2, 3, 2, 1}, rng, /*bias=*/false));
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Linear>(2 * 2 * 2, 2, rng));
  const Tensor x = random_input({2, 2, 4, 4}, 102);
  rpol::testing::check_model_gradients(m, x, cyclic_labels(2, 2), 5e-2, 2e-3, 3);
}

// ---------------------------------------------------------------------------
// Direct-vs-fallback path parity (tensor/layout.h).
//
// The blocked/packed kernels must be BITWISE equal to im2col + GEMM — the
// determinism contract extends across execution paths, not just thread
// counts. These tests flip the RPOL_DIRECT_CONV gate programmatically and
// compare outputs and gradients with EXPECT_EQ on raw floats.

// Restores the direct-conv gate on scope exit.
class DirectConvGuard {
 public:
  DirectConvGuard() : initial_(layout::direct_conv_enabled()) {}
  ~DirectConvGuard() { layout::set_direct_conv_enabled(initial_); }

 private:
  bool initial_;
};

TEST(Conv2d, DirectPathBitwiseMatchesFallbackForwardBackward) {
  DirectConvGuard guard;
  const std::vector<Conv2dSpec> specs = {
      {5, 7, 3, 1, 1},   // unaligned channels
      {8, 16, 3, 2, 1},  // stride 2
      {8, 16, 1, 1, 0},  // 1x1
      {3, 12, 1, 2, 0},  // 1x1 stride 2 (ResNet projection shortcut)
  };
  for (const Conv2dSpec& spec : specs) {
    Rng rng(200);
    Conv2d conv(spec, rng, /*bias=*/true);
    const Tensor x = random_input({2, spec.in_channels, 8, 8}, 201);
    Rng grng(202);
    const Tensor dy =
        Tensor::randn(conv.output_shape(x.shape()), grng, 0.5F);

    layout::set_direct_conv_enabled(false);
    const Tensor y_ref = conv.forward(x, true);
    const Tensor dx_ref = conv.backward(dy);
    const Tensor dw_ref = conv.weight().grad;
    const Tensor db_ref = conv.bias().grad;

    conv.weight().grad.zero();
    conv.bias().grad.zero();
    layout::set_direct_conv_enabled(true);
    const Tensor y_dir = conv.forward(x, true);
    const Tensor dx_dir = conv.backward(dy);

    for (std::int64_t i = 0; i < y_ref.numel(); ++i) {
      ASSERT_EQ(y_dir.at(i), y_ref.at(i)) << "forward el " << i;
    }
    for (std::int64_t i = 0; i < dx_ref.numel(); ++i) {
      ASSERT_EQ(dx_dir.at(i), dx_ref.at(i)) << "dX el " << i;
    }
    for (std::int64_t i = 0; i < dw_ref.numel(); ++i) {
      ASSERT_EQ(conv.weight().grad.at(i), dw_ref.at(i)) << "dW el " << i;
    }
    for (std::int64_t i = 0; i < db_ref.numel(); ++i) {
      ASSERT_EQ(conv.bias().grad.at(i), db_ref.at(i)) << "db el " << i;
    }
  }
}

TEST(Linear, PackedPathBitwiseMatchesFallback) {
  DirectConvGuard guard;
  Rng rng(210);
  Linear fc(13, 11, rng);  // unaligned: final panel is zero-padded
  const Tensor x = random_input({5, 13}, 211);

  layout::set_direct_conv_enabled(false);
  const Tensor y_ref = fc.forward(x, true);
  layout::set_direct_conv_enabled(true);
  const Tensor y_packed = fc.forward(x, true);
  for (std::int64_t i = 0; i < y_ref.numel(); ++i) {
    ASSERT_EQ(y_packed.at(i), y_ref.at(i));
  }
}

TEST(Linear, PackCacheInvalidatesOnOptimizerStep) {
  Rng rng(212);
  Linear fc(6, 4, rng);
  const Tensor x = random_input({2, 6}, 213);
  const Tensor y0 = fc.forward(x, true);  // populates the pack cache
  std::vector<Param*> params;
  fc.collect_params(params);
  // Give the weight a nonzero gradient and step: the version bump must
  // invalidate the cached panels, so the next forward sees new weights.
  fc.weight().grad.fill(1.0F);
  Sgd opt(params, /*lr=*/0.5F);
  opt.step();
  const Tensor y1 = fc.forward(x, true);
  bool changed = false;
  for (std::int64_t i = 0; i < y0.numel(); ++i) {
    if (y0.at(i) != y1.at(i)) changed = true;
  }
  EXPECT_TRUE(changed) << "stale packed weights served after optimizer step";
}

TEST(Model, PackCacheInvalidatesAcrossStateReload) {
  // Regression test for the full checkpoint round trip: every Param mutation
  // path — optimizer steps AND load_state_vector — must bump the version so
  // the pack caches never serve panels built from stale weights. Observed
  // via the rebuild/hit counters (write-only, so enabling obs here cannot
  // perturb the numerics under test).
  DirectConvGuard guard;
  layout::set_direct_conv_enabled(true);
  obs::set_enabled(true);

  auto build = [](std::uint64_t seed) {
    Rng r(seed);
    Model m("t");
    m.add(std::make_unique<Conv2d>(Conv2dSpec{2, 8, 3, 1, 1}, r));
    m.add(std::make_unique<Flatten>());
    m.add(std::make_unique<Linear>(8 * 4 * 4, 3, r));
    return m;
  };
  Model m = build(218);
  const Tensor x = random_input({2, 2, 4, 4}, 219);

  Sgd opt(m.trainable_params(), /*lr=*/0.1F);
  auto train_step = [&] {
    (void)m.forward(x, true);  // builds packs against the current versions
    for (Param* p : m.trainable_params()) p->grad.fill(0.25F);
    opt.step();
  };

  train_step();
  const std::vector<float> snapshot = m.state_vector();
  const Tensor y_at_snapshot = m.forward(x, false);

  train_step();  // moves past the snapshot; packs now hold newer weights

  const std::uint64_t rebuilds_before =
      obs::counter("tensor.pack.rebuild").value();
  m.load_state_vector(snapshot);
  const Tensor y_reloaded = m.forward(x, false);
  EXPECT_GT(obs::counter("tensor.pack.rebuild").value(), rebuilds_before)
      << "load_state_vector did not invalidate the pack caches";
  ASSERT_EQ(y_reloaded.numel(), y_at_snapshot.numel());
  for (std::int64_t i = 0; i < y_reloaded.numel(); ++i) {
    ASSERT_EQ(y_reloaded.at(i), y_at_snapshot.at(i))
        << "stale panel reuse after reload, el " << i;
  }

  // A fresh model fed the same state must agree bitwise — the reloaded
  // model's caches carry no history.
  Model fresh = build(999);
  fresh.load_state_vector(snapshot);
  const Tensor y_fresh = fresh.forward(x, false);
  for (std::int64_t i = 0; i < y_reloaded.numel(); ++i) {
    ASSERT_EQ(y_reloaded.at(i), y_fresh.at(i)) << "el " << i;
  }

  // Repeat forwards without mutation are hits, never rebuilds.
  const std::uint64_t rebuilds_stable =
      obs::counter("tensor.pack.rebuild").value();
  const std::uint64_t hits_before = obs::counter("tensor.pack.hit").value();
  (void)m.forward(x, false);
  EXPECT_EQ(obs::counter("tensor.pack.rebuild").value(), rebuilds_stable);
  EXPECT_GT(obs::counter("tensor.pack.hit").value(), hits_before);

  obs::set_enabled(false);
  obs::Registry::instance().reset();
}

TEST(Conv2d, UnsupportedKernelFallsBackUnderDefaultGate) {
  // 5x5 has no direct kernel; the layer must route through im2col + GEMM
  // even with the gate enabled, and gradients must still check out.
  Rng rng(214);
  Model m("t");
  m.add(std::make_unique<Conv2d>(Conv2dSpec{2, 2, 5, 1, 2}, rng));
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Linear>(2 * 4 * 4, 2, rng));
  const Tensor x = random_input({2, 2, 4, 4}, 215);
  rpol::testing::check_model_gradients(m, x, cyclic_labels(2, 2), 5e-2, 2e-3, 7);
}

TEST(Conv2d, GradientCheckThroughFallbackPath) {
  // Same model as GradientCheckStride1 but with the direct gate forced
  // off, keeping the legacy path covered by finite differences.
  DirectConvGuard guard;
  layout::set_direct_conv_enabled(false);
  Rng rng(216);
  Model m("t");
  m.add(std::make_unique<Conv2d>(Conv2dSpec{2, 3, 3, 1, 1}, rng));
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Linear>(3 * 4 * 4, 3, rng));
  const Tensor x = random_input({2, 2, 4, 4}, 217);
  rpol::testing::check_model_gradients(m, x, cyclic_labels(2, 3), 5e-2, 2e-3, 5);
}

// ---------------------------------------------------------------------------
// BatchNorm2d

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  const Tensor x = random_input({4, 2, 3, 3}, 9, 5.0F);
  const Tensor y = bn.forward(x, /*training=*/true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t n = 0; n < 4; ++n)
      for (std::int64_t h = 0; h < 3; ++h)
        for (std::int64_t w = 0; w < 3; ++w) {
          sum += y.at4(n, c, h, w);
          sq += static_cast<double>(y.at4(n, c, h, w)) * y.at4(n, c, h, w);
        }
    const double mean = sum / 36.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / 36.0 - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  const Tensor x = random_input({8, 1, 2, 2}, 10, 2.0F);
  // Train several times so running stats move toward batch stats.
  for (int i = 0; i < 50; ++i) bn.forward(x, true);
  const Tensor y_eval = bn.forward(x, /*training=*/false);
  const Tensor y_train = bn.forward(x, /*training=*/true);
  for (std::int64_t i = 0; i < y_eval.numel(); ++i) {
    EXPECT_NEAR(y_eval.at(i), y_train.at(i), 0.15F);
  }
}

TEST(BatchNorm2d, GradientCheck) {
  Rng rng(11);
  Model m("t");
  m.add(std::make_unique<Conv2d>(Conv2dSpec{1, 2, 3, 1, 1}, rng, false));
  m.add(std::make_unique<BatchNorm2d>(2));
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Linear>(2 * 3 * 3, 2, rng));
  const Tensor x = random_input({4, 1, 3, 3}, 103);
  // BatchNorm couples examples, finite differences are noisier: relax tol.
  rpol::testing::check_model_gradients(m, x, cyclic_labels(4, 2), 8e-2, 5e-3, 7);
}

TEST(BatchNorm2d, BuffersAreNonTrainable) {
  BatchNorm2d bn(3);
  std::vector<Param*> params;
  bn.collect_params(params);
  ASSERT_EQ(params.size(), 4u);
  EXPECT_TRUE(params[0]->trainable);   // gamma
  EXPECT_TRUE(params[1]->trainable);   // beta
  EXPECT_FALSE(params[2]->trainable);  // running mean
  EXPECT_FALSE(params[3]->trainable);  // running var
}

// ---------------------------------------------------------------------------
// ReLU / pooling / flatten

TEST(ReLU, ForwardAndBackwardMask) {
  ReLU relu;
  const Tensor x({4}, {-1.0F, 2.0F, -3.0F, 4.0F});
  const Tensor y = relu.forward(x, true);
  EXPECT_EQ(y.at(0), 0.0F);
  EXPECT_EQ(y.at(1), 2.0F);
  const Tensor g({4}, {10, 10, 10, 10});
  const Tensor dx = relu.backward(g);
  EXPECT_EQ(dx.at(0), 0.0F);
  EXPECT_EQ(dx.at(1), 10.0F);
  EXPECT_EQ(dx.at(2), 0.0F);
  EXPECT_EQ(dx.at(3), 10.0F);
}

TEST(MaxPool2d, SelectsMaxAndRoutesGradient) {
  MaxPool2d pool;
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_EQ(y.at(0), 5.0F);
  const Tensor g({1, 1, 1, 1}, {7.0F});
  const Tensor dx = pool.backward(g);
  EXPECT_EQ(dx.at(0), 0.0F);
  EXPECT_EQ(dx.at(1), 7.0F);
  EXPECT_EQ(dx.at(2), 0.0F);
}

TEST(MaxPool2d, OddSpatialThrows) {
  MaxPool2d pool;
  Tensor x({1, 1, 3, 3});
  EXPECT_THROW(pool.forward(x, true), std::invalid_argument);
}

TEST(GlobalAvgPool, AveragesAndBackpropagates) {
  GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = gap.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_NEAR(y.at2(0, 0), 2.5F, 1e-6F);
  EXPECT_NEAR(y.at2(0, 1), 25.0F, 1e-6F);
  const Tensor g({1, 2}, {4.0F, 8.0F});
  const Tensor dx = gap.backward(g);
  EXPECT_NEAR(dx.at4(0, 0, 0, 0), 1.0F, 1e-6F);
  EXPECT_NEAR(dx.at4(0, 1, 1, 1), 2.0F, 1e-6F);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flatten;
  const Tensor x = random_input({2, 3, 4, 4}, 12);
  const Tensor y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  const Tensor dx = flatten.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

// ---------------------------------------------------------------------------
// Residual blocks

TEST(BasicBlock, IdentitySkipWhenShapesMatch) {
  Rng rng(13);
  BasicBlock block(4, 4, 1, rng);
  EXPECT_EQ(block.output_shape({1, 4, 4, 4}), (Shape{1, 4, 4, 4}));
}

TEST(BasicBlock, ProjectionSkipOnStride) {
  Rng rng(14);
  BasicBlock block(4, 8, 2, rng);
  EXPECT_EQ(block.output_shape({1, 4, 4, 4}), (Shape{1, 8, 2, 2}));
}

TEST(BasicBlock, GradientCheck) {
  Rng rng(15);
  Model m("t");
  m.add(std::make_unique<BasicBlock>(2, 2, 1, rng));
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(2, 2, rng));
  const Tensor x = random_input({3, 2, 4, 4}, 104);
  rpol::testing::check_model_gradients(m, x, cyclic_labels(3, 2), 8e-2, 5e-3, 11);
}

TEST(BasicBlock, ProjectionGradientCheck) {
  Rng rng(16);
  Model m("t");
  m.add(std::make_unique<BasicBlock>(2, 4, 2, rng));
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(4, 2, rng));
  const Tensor x = random_input({3, 2, 4, 4}, 105);
  rpol::testing::check_model_gradients(m, x, cyclic_labels(3, 2), 8e-2, 5e-3, 13);
}

TEST(BottleneckBlock, ExpansionShape) {
  Rng rng(17);
  BottleneckBlock block(4, 2, 1, rng);
  EXPECT_EQ(block.output_shape({1, 4, 4, 4}), (Shape{1, 8, 4, 4}));
}

TEST(BottleneckBlock, GradientCheck) {
  Rng rng(18);
  Model m("t");
  m.add(std::make_unique<BottleneckBlock>(2, 1, 1, rng));
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(4, 2, rng));
  const Tensor x = random_input({2, 2, 4, 4}, 106);
  rpol::testing::check_model_gradients(m, x, cyclic_labels(2, 2), 8e-2, 5e-3, 9);
}

TEST(Sequential, EmptyIsIdentity) {
  Sequential seq;
  const Tensor x = random_input({2, 3}, 19);
  const Tensor y = seq.forward(x, true);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y.at(i), x.at(i));
}

// ---------------------------------------------------------------------------
// Loss

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  const Tensor logits({2, 4});  // all zeros
  const float l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0F), 1e-5F);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = random_input({3, 5}, 20);
  loss.forward(logits, {0, 2, 4});
  const Tensor grad = loss.backward();
  for (std::int64_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 5; ++c) sum += grad.at2(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, ShapeMismatchThrows) {
  SoftmaxCrossEntropy loss;
  const Tensor logits({2, 3});
  EXPECT_THROW(loss.forward(logits, {0}), std::invalid_argument);
}

TEST(Accuracy, CountsCorrectPredictions) {
  const Tensor logits({3, 2}, {1, 0, 0, 1, 1, 0});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0, 1}), 0.0);
  EXPECT_NEAR(accuracy(logits, {0, 0, 0}), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace rpol::nn
