// Exporter & analyzer coverage for the observability layer (src/obs):
// golden-line checks of the rpol.trace.v2 JSONL schema, a full
// export -> parse round trip through the analyzer, TraceContext propagation
// semantics, tolerant vs strict parsing of damaged files, the empty-trace
// and disabled-registry edge cases, histogram bucket math, fault-counter
// reporting, and the shared sim::percentile quantile routine.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/analyze.h"
#include "obs/obs.h"
#include "sim/stats.h"

namespace rpol {
namespace {

// Every test starts from a disabled, empty registry and leaves it that way,
// so obs state never leaks across tests (or into other suites' processes).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
  }
};

std::vector<std::string> export_lines() {
  const char* path = "obs_trace_test_out.jsonl";
  EXPECT_TRUE(obs::Registry::instance().export_jsonl_file(path));
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// sim::percentile (shared by analyzer summaries and the bench harness)

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 100.0), 5.0);
}

TEST(Percentile, LinearInterpolationR7) {
  const std::vector<double> xs = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 25.0), 12.5);
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 75.0), 17.5);
  // Singleton: every percentile is the single value.
  EXPECT_DOUBLE_EQ(sim::percentile({7.0}, 95.0), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(sim::percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(sim::percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(sim::percentile({1.0}, 101.0), std::invalid_argument);
  EXPECT_THROW(sim::percentile_sorted({}, 50.0), std::invalid_argument);
  EXPECT_THROW(sim::percentile_sorted({1.0}, 100.5), std::invalid_argument);
}

// Edge-case pins for the R-7 routine: p=100 on every size (the rank lands
// exactly on the last index — no out-of-bounds interpolation partner),
// duplicate-heavy samples (interpolating between equal values must return
// exactly that value, no rounding drift), and near-100 percentiles whose
// rank falls inside the final gap.
TEST(Percentile, ExactTopAndDuplicateHeavySamples) {
  EXPECT_DOUBLE_EQ(sim::percentile({3.0}, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(sim::percentile({3.0, 9.0}, 100.0), 9.0);
  EXPECT_DOUBLE_EQ(sim::percentile({3.0, 9.0}, 99.9), 9.0 - 0.001 * 6.0);

  // All-equal sample: every percentile is the common value, bit-exact.
  const std::vector<double> flat(17, 4.25);
  for (const double p : {0.0, 37.5, 50.0, 95.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(sim::percentile(flat, p), 4.25) << "p=" << p;
  }

  // Duplicate-heavy with one outlier: the median sits in the duplicate
  // plateau; p=100 is exactly the outlier; p=95 interpolates into the gap.
  std::vector<double> heavy(19, 1.0);
  heavy.push_back(100.0);  // sorted rank 19 of 0..19
  EXPECT_DOUBLE_EQ(sim::percentile(heavy, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::percentile(heavy, 100.0), 100.0);
  const double rank = 0.95 * 19.0;  // 18.05: between the plateau and outlier
  EXPECT_DOUBLE_EQ(sim::percentile(heavy, 95.0),
                   1.0 + (rank - 18.0) * (100.0 - 1.0));

  // percentile_sorted is the same function modulo the caller's sort.
  std::vector<double> sorted = heavy;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {0.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(sim::percentile_sorted(sorted, p),
                     sim::percentile(heavy, p));
  }
}

// bench_util::summarize_latencies rides on the same quantile routine; its
// empty-input contract (all zeros, no throw) is what lets soak benches
// report windows with zero completed samples.
TEST(Percentile, LatencySummaryHandlesEmptySingleAndDuplicates) {
  const bench::LatencySummary empty = bench::summarize_latencies({});
  EXPECT_DOUBLE_EQ(empty.best, 0.0);
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95, 0.0);
  EXPECT_DOUBLE_EQ(empty.worst, 0.0);

  const bench::LatencySummary one = bench::summarize_latencies({2.5});
  EXPECT_DOUBLE_EQ(one.best, 2.5);
  EXPECT_DOUBLE_EQ(one.p50, 2.5);
  EXPECT_DOUBLE_EQ(one.p95, 2.5);
  EXPECT_DOUBLE_EQ(one.worst, 2.5);

  const bench::LatencySummary dup =
      bench::summarize_latencies({1.0, 1.0, 1.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(dup.best, 1.0);
  EXPECT_DOUBLE_EQ(dup.p50, 1.0);
  EXPECT_DOUBLE_EQ(dup.worst, 5.0);
  EXPECT_DOUBLE_EQ(dup.p95, 1.0 + 0.8 * 4.0);  // rank 3.8 in the final gap
}

// ---------------------------------------------------------------------------
// Histogram bucket math

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(obs::Histogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(obs::Histogram::bucket_upper_bound(static_cast<int>(v)), v);
  }
}

TEST(Histogram, BucketBoundsAreConsistent) {
  // Each value lands in exactly the bucket whose bound interval covers it.
  for (int i = 0; i < obs::Histogram::kNumBuckets - 1; ++i) {
    const std::uint64_t ub = obs::Histogram::bucket_upper_bound(i);
    EXPECT_EQ(obs::Histogram::bucket_index(ub), i) << "bucket " << i;
    EXPECT_EQ(obs::Histogram::bucket_index(ub + 1), i + 1) << "bucket " << i;
    EXPECT_LT(ub, obs::Histogram::bucket_upper_bound(i + 1));
  }
  EXPECT_EQ(obs::Histogram::bucket_index(UINT64_MAX),
            obs::Histogram::kNumBuckets - 1);
}

TEST(Histogram, RecordsAndApproximatesPercentiles) {
  obs::Histogram h("t");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v * 1000);
  EXPECT_EQ(h.count(), 100U);
  EXPECT_EQ(h.max(), 100'000U);
  // Log-linear buckets bound the relative error at ~12.5% (upper estimate).
  const std::uint64_t p50 = h.approx_percentile(50.0);
  EXPECT_GE(p50, 50'000U);
  EXPECT_LE(p50, 58'000U);
  const std::uint64_t p95 = h.approx_percentile(95.0);
  EXPECT_GE(p95, 95'000U);
  EXPECT_LE(p95, 108'000U);
  // Empty histogram reports 0 everywhere.
  obs::Histogram empty("e");
  EXPECT_EQ(empty.approx_percentile(50.0), 0U);
}

TEST(Histogram, SingleSampleCollapsesAllPercentiles) {
  obs::Histogram h("one");
  h.record(5);  // small value -> exact bucket, so the estimate is exact
  EXPECT_EQ(h.count(), 1U);
  EXPECT_EQ(h.max(), 5U);
  EXPECT_EQ(h.approx_percentile(0.0), 5U);
  EXPECT_EQ(h.approx_percentile(50.0), 5U);
  EXPECT_EQ(h.approx_percentile(95.0), 5U);
  EXPECT_EQ(h.approx_percentile(100.0), 5U);
}

TEST(Histogram, AllSamplesInOneBucketShareOneEstimate) {
  obs::Histogram h("same");
  for (int i = 0; i < 1000; ++i) h.record(70'000);
  EXPECT_EQ(h.count(), 1000U);
  const int idx = obs::Histogram::bucket_index(70'000);
  EXPECT_EQ(h.bucket(idx), 1000U);
  // Every percentile resolves to the one occupied bucket, clamped by max():
  // with identical samples the estimate is exact at every p.
  EXPECT_GE(obs::Histogram::bucket_upper_bound(idx), 70'000U);
  EXPECT_EQ(h.approx_percentile(1.0), 70'000U);
  EXPECT_EQ(h.approx_percentile(50.0), 70'000U);
  EXPECT_EQ(h.approx_percentile(99.0), 70'000U);
}

// ---------------------------------------------------------------------------
// Exporter schema (golden lines) and analyzer round trip

TEST_F(ObsTest, GoldenJsonlSchema) {
  obs::set_enabled(true);
  obs::count("bytes.commitment", 42);
  obs::gauge("runtime.threads").set(4.0);
  obs::histogram("kernel.matmul_ns").record(5);
  {
    // Root a fresh causal tree (invalid remote context), then hang a
    // same-agent child off it — the propagation shape every epoch uses.
    obs::Span root("epoch", obs::TraceContext{}, -1, 3);
    obs::Span child("train", root, 1, 3);
    child.attr("storage_bytes", std::uint64_t{1024});
    child.attr("note", std::string_view("a\"b"));
  }

  const std::vector<std::string> lines = export_lines();
  ASSERT_EQ(lines.size(), 6U);  // meta, counter, gauge, histogram, 2 spans
  EXPECT_EQ(lines[0].rfind("{\"type\":\"meta\",\"schema\":\"rpol.trace.v2\","
                           "\"wall_unix_ns\":",
                           0),
            0U);
  EXPECT_EQ(lines[1],
            "{\"type\":\"counter\",\"name\":\"bytes.commitment\",\"value\":42}");
  EXPECT_EQ(lines[2],
            "{\"type\":\"gauge\",\"name\":\"runtime.threads\",\"value\":4}");
  EXPECT_EQ(lines[3].rfind("{\"type\":\"histogram\",\"name\":\"kernel.matmul_"
                           "ns\",\"count\":1,\"sum\":5,\"max\":5,",
                           0),
            0U);
  EXPECT_NE(lines[3].find("\"buckets\":[[5,1]]"), std::string::npos);
  // Spans export in completion order: the child closes before the root.
  // Both carry the root's id as their trace; neither crossed an agent
  // boundary, so link stays 0.
  EXPECT_EQ(lines[4].rfind("{\"type\":\"span\",\"id\":2,\"parent\":1,"
                           "\"trace\":1,\"link\":0,"
                           "\"name\":\"train\",\"worker\":1,\"epoch\":3,",
                           0),
            0U);
  EXPECT_NE(lines[4].find("\"storage_bytes\":1024"), std::string::npos);
  EXPECT_NE(lines[4].find("\"note\":\"a\\\"b\""), std::string::npos);
  EXPECT_EQ(lines[5].rfind("{\"type\":\"span\",\"id\":1,\"parent\":0,"
                           "\"trace\":1,\"link\":0,"
                           "\"name\":\"epoch\",\"worker\":-1,\"epoch\":3,",
                           0),
            0U);
}

TEST_F(ObsTest, SpanPropagationSemantics) {
  obs::set_enabled(true);
  // Legacy ctor: raw parent id, no trace membership.
  obs::Span legacy("legacy", std::uint64_t{0});
  EXPECT_EQ(legacy.trace_id(), 0U);
  EXPECT_EQ(legacy.context().trace_id, 0U);
  EXPECT_TRUE(legacy.context().valid());  // span_id is still real

  // Invalid remote context roots a new tree: trace_id == own id.
  obs::Span root("epoch", obs::TraceContext{});
  EXPECT_EQ(root.trace_id(), root.id());

  // Same-agent child inherits the tree, links nothing.
  obs::Span child("train", root);
  EXPECT_EQ(child.trace_id(), root.trace_id());

  // A valid remote context is adopted: same tree, link = remote span.
  const obs::TraceContext remote = root.context();
  obs::Span adopted("worker_epoch", remote, 2, 0);
  EXPECT_EQ(adopted.trace_id(), root.trace_id());
  EXPECT_NE(adopted.id(), root.id());

  // Inert spans (tracing off) hand out the all-zero context, so remote
  // receivers degrade to fresh roots instead of linking to id 0.
  obs::set_enabled(false);
  obs::Span inert("off");
  EXPECT_FALSE(inert.context().valid());
  EXPECT_EQ(inert.context().trace_id, 0U);
  obs::set_enabled(true);

  // The recorded link field round-trips through the registry snapshot.
  const auto spans = obs::Registry::instance().spans();
  ASSERT_EQ(spans.size(), 0U);  // all spans above are still open
  {
    obs::Span closed("verify", remote, 2, 0);
  }
  const auto closed_spans = obs::Registry::instance().spans();
  ASSERT_EQ(closed_spans.size(), 1U);
  EXPECT_EQ(closed_spans[0].trace_id, root.trace_id());
  EXPECT_EQ(closed_spans[0].link, root.id());
  EXPECT_EQ(closed_spans[0].parent, 0U);  // cross-agent: no local parent
}

TEST_F(ObsTest, ExportParsesBackLosslessly) {
  obs::set_enabled(true);
  obs::count("bytes.state", 123'456'789'012ULL);  // needs u64 round trip
  obs::count("bytes.update", 7);
  obs::count("verify.accept", 2);
  obs::gauge("table3.RPoLv2.capital_usd").set(5.46);
  obs::histogram("kernel.matmul_ns").record(1000);
  obs::histogram("kernel.matmul_ns").record(2000);
  {
    // Adopt a synthetic remote context so non-zero trace/link round-trip.
    obs::Span verify("verify", obs::TraceContext{10, 5}, 2, 1);
    verify.attr("accepted", true);
    verify.attr("double_checks", std::int64_t{1});
  }
  ASSERT_TRUE(obs::Registry::instance().export_jsonl_file(
      "obs_trace_test_out.jsonl"));

  const obs::Trace trace = obs::load_trace_file("obs_trace_test_out.jsonl");
  EXPECT_EQ(trace.schema, "rpol.trace.v2");
  EXPECT_GT(trace.wall_unix_ns, 0U);
  EXPECT_EQ(trace.skipped_lines, 0U);
  EXPECT_EQ(trace.counters.at("bytes.state"), 123'456'789'012ULL);
  EXPECT_EQ(trace.counters.at("verify.accept"), 2U);
  EXPECT_DOUBLE_EQ(trace.gauges.at("table3.RPoLv2.capital_usd"), 5.46);
  ASSERT_EQ(trace.histograms.size(), 1U);
  EXPECT_EQ(trace.histograms[0].count, 2U);
  EXPECT_EQ(trace.histograms[0].sum, 3000U);
  ASSERT_EQ(trace.spans.size(), 1U);
  EXPECT_EQ(trace.spans[0].name, "verify");
  EXPECT_EQ(trace.spans[0].worker, 2);
  EXPECT_EQ(trace.spans[0].epoch, 1);
  EXPECT_EQ(trace.spans[0].trace_id, 10U);
  EXPECT_EQ(trace.spans[0].link, 5U);

  const obs::TraceSummary summary = obs::summarize_trace(trace);
  EXPECT_EQ(summary.bytes_total, 123'456'789'019ULL);
  ASSERT_EQ(summary.bytes_by_type.size(), 2U);
  EXPECT_EQ(summary.bytes_by_type[0].first, "state");
  ASSERT_EQ(summary.workers.size(), 1U);
  EXPECT_EQ(summary.workers[0].worker, 2);
  EXPECT_EQ(summary.workers[0].accepts, 1);
  EXPECT_EQ(summary.workers[0].double_checks, 1);
  ASSERT_EQ(summary.phases.size(), 1U);
  EXPECT_EQ(summary.phases[0].name, "verify");
  EXPECT_EQ(summary.phases[0].count, 1U);
}

TEST_F(ObsTest, EmptyTraceExportsMetaOnlyAndSummarizes) {
  obs::set_enabled(true);
  const std::vector<std::string> lines = export_lines();
  ASSERT_EQ(lines.size(), 1U);  // just the meta line

  const obs::Trace trace = obs::load_trace_file("obs_trace_test_out.jsonl");
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_TRUE(trace.counters.empty());
  const obs::TraceSummary summary = obs::summarize_trace(trace);
  EXPECT_EQ(summary.wall_extent_s, 0.0);
  EXPECT_TRUE(summary.phases.empty());
  EXPECT_EQ(summary.bytes_total, 0U);
  // Printing an empty trace must not crash.
  obs::print_trace_summary(trace, stdout);
}

TEST_F(ObsTest, ParserRejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW(obs::parse_trace_jsonl(empty), std::runtime_error);
  std::istringstream no_meta(
      "{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\n");
  EXPECT_THROW(obs::parse_trace_jsonl(no_meta), std::runtime_error);
  std::istringstream bad_schema(
      "{\"type\":\"meta\",\"schema\":\"other.v9\",\"wall_unix_ns\":1}\n");
  EXPECT_THROW(obs::parse_trace_jsonl(bad_schema), std::runtime_error);
  std::istringstream garbage("not json at all\n");
  EXPECT_THROW(obs::parse_trace_jsonl(garbage), std::runtime_error);
  EXPECT_THROW(obs::load_trace_file("does_not_exist.jsonl"),
               std::runtime_error);
}

TEST_F(ObsTest, TolerantParserSkipsDamagedRecordsAndCountsThem) {
  // A valid meta line followed by a mix of good records and damage: the
  // default (tolerant) mode keeps the good records and counts the rest.
  const std::string body =
      "{\"type\":\"meta\",\"schema\":\"rpol.trace.v2\",\"wall_unix_ns\":1}\n"
      "{\"type\":\"counter\",\"name\":\"bytes.update\",\"value\":7}\n"
      "{\"type\":\"span\",\"id\":1,\"parent\":0,\"trace\":1,\"link\"\n"
      "totally not json\n"
      "{\"type\":\"gauge\",\"name\":\"runtime.threads\",\"value\":4}\n";
  std::istringstream tolerant(body);
  const obs::Trace trace = obs::parse_trace_jsonl(tolerant);
  EXPECT_EQ(trace.counters.at("bytes.update"), 7U);
  EXPECT_DOUBLE_EQ(trace.gauges.at("runtime.threads"), 4.0);
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_EQ(trace.skipped_lines, 2U);
  ASSERT_GE(trace.parse_errors.size(), 1U);
  // Messages carry the 1-based line number for diagnosis.
  EXPECT_NE(trace.parse_errors[0].find("line 3"), std::string::npos);

  // Strict mode refuses the same stream.
  std::istringstream strict(body);
  EXPECT_THROW(obs::parse_trace_jsonl(strict, /*strict=*/true),
               std::runtime_error);
}

TEST_F(ObsTest, TruncatedFinalLineIsFlaggedNotFatal) {
  // An unterminated, unparseable final line is an export cut mid-append
  // (crash, or a reader racing the writer) — tolerant mode keeps the whole
  // prefix and flags the tail instead of reporting interior damage.
  const std::string meta =
      "{\"type\":\"meta\",\"schema\":\"rpol.trace.v2\",\"wall_unix_ns\":1}";
  const std::string counter =
      "{\"type\":\"counter\",\"name\":\"bytes.update\",\"value\":7}";
  const std::string partial = "{\"type\":\"span\",\"id\":9,\"par";
  const std::string body = meta + "\n" + counter + "\n" + partial;
  const std::size_t tail_offset = meta.size() + 1 + counter.size() + 1;

  std::istringstream tolerant(body);
  const obs::Trace trace = obs::parse_trace_jsonl(tolerant);
  EXPECT_EQ(trace.counters.at("bytes.update"), 7U);
  EXPECT_TRUE(trace.truncated_tail);
  EXPECT_EQ(trace.truncated_tail_offset, tail_offset);
  EXPECT_EQ(trace.skipped_lines, 0U);

  // Strict mode names the byte offset of the cut record.
  std::istringstream strict(body);
  try {
    obs::parse_trace_jsonl(strict, /*strict=*/true);
    FAIL() << "strict parse accepted a truncated tail";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset " +
                                         std::to_string(tail_offset)),
              std::string::npos)
        << e.what();
  }

  // A complete final line that merely lacks its newline is NOT a cut.
  std::istringstream whole(meta + "\n" + counter);
  const obs::Trace ok = obs::parse_trace_jsonl(whole);
  EXPECT_FALSE(ok.truncated_tail);
  EXPECT_EQ(ok.counters.at("bytes.update"), 7U);
}

TEST_F(ObsTest, LegacyV1TracesStillLoad) {
  // Pre-propagation exports have no trace/link span fields; they must load
  // with both defaulting to 0 so old captures stay analyzable.
  const std::string body =
      "{\"type\":\"meta\",\"schema\":\"rpol.trace.v1\",\"wall_unix_ns\":9}\n"
      "{\"type\":\"span\",\"id\":4,\"parent\":2,\"name\":\"train\","
      "\"worker\":0,\"epoch\":1,\"start_ns\":10,\"dur_ns\":20,\"attrs\":{}}\n";
  std::istringstream in(body);
  const obs::Trace trace = obs::parse_trace_jsonl(in);
  EXPECT_EQ(trace.schema, "rpol.trace.v1");
  ASSERT_EQ(trace.spans.size(), 1U);
  EXPECT_EQ(trace.spans[0].id, 4U);
  EXPECT_EQ(trace.spans[0].parent, 2U);
  EXPECT_EQ(trace.spans[0].trace_id, 0U);
  EXPECT_EQ(trace.spans[0].link, 0U);
  EXPECT_EQ(trace.skipped_lines, 0U);
}

// Reads `path` fully; print_trace_summary writes to FILE*, so the fault
// counter tests route it through a scratch file.
std::string slurp(const char* path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(ObsTest, FaultCountersAppearInSummaryOnlyWhenNonzero) {
  obs::Trace trace;
  trace.schema = "rpol.trace.v2";
  trace.counters["bytes.update"] = 10;

  const char* path = "obs_trace_test_summary.txt";
  std::FILE* out = std::fopen(path, "w");
  ASSERT_NE(out, nullptr);
  obs::print_trace_summary(trace, out);
  std::fclose(out);
  // Fault-free runs keep the report unchanged — no resilience block.
  EXPECT_EQ(slurp(path).find("fault resilience"), std::string::npos);

  trace.counters["session.retry"] = 2;
  trace.counters["pool.retransmission"] = 3;
  trace.counters["pool.eviction"] = 1;
  trace.counters["session.decode_reject"] = 4;
  out = std::fopen(path, "w");
  ASSERT_NE(out, nullptr);
  obs::print_trace_summary(trace, out);
  std::fclose(out);
  const std::string report = slurp(path);
  EXPECT_NE(report.find("fault resilience"), std::string::npos);
  EXPECT_NE(report.find("retransmissions=5"), std::string::npos);
  EXPECT_NE(report.find("evictions=1"), std::string::npos);
  EXPECT_NE(report.find("decode_rejects=4"), std::string::npos);
}

TEST_F(ObsTest, DisabledRegistryRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  // count() feeds both surfaces, so the live gate must be off too for the
  // write to be suppressed (the tier-1 RPOL_LIVE=1 pass would otherwise
  // correctly let it through).
  const bool live_was_on = obs::live_enabled();
  obs::set_live_enabled(false);
  obs::count("bytes.state", 100);  // guarded: must not register
  {
    obs::Span s("epoch");
    EXPECT_FALSE(s.active());
    EXPECT_EQ(s.id(), 0U);
    s.attr("ignored", std::int64_t{1});
  }
  EXPECT_EQ(obs::Registry::instance().span_count(), 0U);
  EXPECT_EQ(obs::maybe_export("obs_trace_test_unwritten.jsonl"), "");
  // Direct handle use still works (set_enabled only gates the hot paths) —
  // but the export remains schema-valid either way.
  const std::vector<std::string> lines = export_lines();
  ASSERT_EQ(lines.size(), 1U);
  obs::set_live_enabled(live_was_on);
}

TEST_F(ObsTest, ResetZeroesMetricsButKeepsHandles) {
  obs::set_enabled(true);
  obs::Counter& c = obs::counter("bytes.update");
  c.add(5);
  { obs::Span s("epoch"); }
  EXPECT_EQ(obs::Registry::instance().span_count(), 1U);
  obs::Registry::instance().reset();
  EXPECT_EQ(c.value(), 0U);  // the same handle, zeroed
  EXPECT_EQ(obs::Registry::instance().span_count(), 0U);
  c.add(3);
  EXPECT_EQ(obs::counter("bytes.update").value(), 3U);
}

TEST_F(ObsTest, SampleTickFiresOneInEvery) {
  obs::set_enabled(true);
  std::atomic<std::uint64_t> tick{0};
  int fired = 0;
  for (int i = 0; i < 64; ++i) fired += obs::sample_tick(tick, 8) ? 1 : 0;
  EXPECT_EQ(fired, 8);
  obs::set_enabled(false);
  EXPECT_FALSE(obs::sample_tick(tick, 8));
  EXPECT_EQ(tick.load(), 64U);  // disabled guard skips the increment too
}

// Histogram record() spreads a sample over several words (count, sum, one
// bucket), so a reset or snapshot racing writers could once observe a
// half-applied sample. The writer-exclusion guard must make every snapshot
// internally consistent — count == sum over buckets — no matter how hard
// concurrent recorders hammer it, and nothing recorded may be torn in half
// (each value lands entirely before or entirely after each reset).
TEST_F(ObsTest, HistogramResetAndSnapshotStayConsistentUnderWriters) {
  obs::Histogram h("test.hammer");
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  std::vector<std::uint64_t> recorded(kWriters, 0);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&h, &stop, &recorded, t] {
      std::uint64_t n = 0;
      do {  // at least one record even if the main loop finishes first
        h.record(static_cast<std::uint64_t>(t) * 1000 + (n % 97));
        ++n;
      } while (!stop.load(std::memory_order_relaxed));
      recorded[static_cast<std::size_t>(t)] = n;
    });
  }

  // Wait for the writers to actually be running so the snapshots below
  // genuinely race them (the rounds otherwise finish before the OS
  // schedules a single writer thread).
  while (h.count() == 0) {
  }

  for (int round = 0; round < 200; ++round) {
    const obs::Histogram::Snapshot snap = h.snapshot();
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t b : snap.buckets) bucket_sum += b;
    ASSERT_EQ(snap.count, bucket_sum)
        << "snapshot tore a concurrent record at round " << round;
    // Interleave resets with the snapshots: a torn reset would leave a
    // half-wiped state the next consistency check catches.
    if (round % 10 == 9) h.reset();
  }
  stop.store(true);
  for (auto& w : writers) w.join();

  // Final consistency after the dust settles: one more full reset leaves a
  // genuinely empty histogram.
  h.reset();
  const obs::Histogram::Snapshot fin = h.snapshot();
  EXPECT_EQ(fin.count, 0U);
  EXPECT_EQ(fin.sum, 0U);
  std::uint64_t fin_sum = 0;
  for (const std::uint64_t b : fin.buckets) fin_sum += b;
  EXPECT_EQ(fin_sum, 0U);
  std::uint64_t total = 0;
  for (const std::uint64_t n : recorded) total += n;
  EXPECT_GT(total, 0U);  // the hammer actually ran
}

}  // namespace
}  // namespace rpol
