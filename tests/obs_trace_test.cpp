// Exporter & analyzer coverage for the observability layer (src/obs):
// golden-line checks of the rpol.trace.v1 JSONL schema, a full
// export -> parse round trip through the analyzer, the empty-trace and
// disabled-registry edge cases, histogram bucket math, and the shared
// sim::percentile quantile routine.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analyze.h"
#include "obs/obs.h"
#include "sim/stats.h"

namespace rpol {
namespace {

// Every test starts from a disabled, empty registry and leaves it that way,
// so obs state never leaks across tests (or into other suites' processes).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
  }
};

std::vector<std::string> export_lines() {
  const char* path = "obs_trace_test_out.jsonl";
  EXPECT_TRUE(obs::Registry::instance().export_jsonl_file(path));
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// sim::percentile (shared by analyzer summaries and the bench harness)

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 100.0), 5.0);
}

TEST(Percentile, LinearInterpolationR7) {
  const std::vector<double> xs = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 25.0), 12.5);
  EXPECT_DOUBLE_EQ(sim::percentile(xs, 75.0), 17.5);
  // Singleton: every percentile is the single value.
  EXPECT_DOUBLE_EQ(sim::percentile({7.0}, 95.0), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(sim::percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(sim::percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(sim::percentile({1.0}, 101.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Histogram bucket math

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(obs::Histogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(obs::Histogram::bucket_upper_bound(static_cast<int>(v)), v);
  }
}

TEST(Histogram, BucketBoundsAreConsistent) {
  // Each value lands in exactly the bucket whose bound interval covers it.
  for (int i = 0; i < obs::Histogram::kNumBuckets - 1; ++i) {
    const std::uint64_t ub = obs::Histogram::bucket_upper_bound(i);
    EXPECT_EQ(obs::Histogram::bucket_index(ub), i) << "bucket " << i;
    EXPECT_EQ(obs::Histogram::bucket_index(ub + 1), i + 1) << "bucket " << i;
    EXPECT_LT(ub, obs::Histogram::bucket_upper_bound(i + 1));
  }
  EXPECT_EQ(obs::Histogram::bucket_index(UINT64_MAX),
            obs::Histogram::kNumBuckets - 1);
}

TEST(Histogram, RecordsAndApproximatesPercentiles) {
  obs::Histogram h("t");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v * 1000);
  EXPECT_EQ(h.count(), 100U);
  EXPECT_EQ(h.max(), 100'000U);
  // Log-linear buckets bound the relative error at ~12.5% (upper estimate).
  const std::uint64_t p50 = h.approx_percentile(50.0);
  EXPECT_GE(p50, 50'000U);
  EXPECT_LE(p50, 58'000U);
  const std::uint64_t p95 = h.approx_percentile(95.0);
  EXPECT_GE(p95, 95'000U);
  EXPECT_LE(p95, 108'000U);
  // Empty histogram reports 0 everywhere.
  obs::Histogram empty("e");
  EXPECT_EQ(empty.approx_percentile(50.0), 0U);
}

// ---------------------------------------------------------------------------
// Exporter schema (golden lines) and analyzer round trip

TEST_F(ObsTest, GoldenJsonlSchema) {
  obs::set_enabled(true);
  obs::count("bytes.commitment", 42);
  obs::gauge("runtime.threads").set(4.0);
  obs::histogram("kernel.matmul_ns").record(5);
  {
    obs::Span root("epoch", 0, -1, 3);
    obs::Span child("train", root.id(), 1, 3);
    child.attr("storage_bytes", std::uint64_t{1024});
    child.attr("note", std::string_view("a\"b"));
  }

  const std::vector<std::string> lines = export_lines();
  ASSERT_EQ(lines.size(), 6U);  // meta, counter, gauge, histogram, 2 spans
  EXPECT_EQ(lines[0].rfind("{\"type\":\"meta\",\"schema\":\"rpol.trace.v1\","
                           "\"wall_unix_ns\":",
                           0),
            0U);
  EXPECT_EQ(lines[1],
            "{\"type\":\"counter\",\"name\":\"bytes.commitment\",\"value\":42}");
  EXPECT_EQ(lines[2],
            "{\"type\":\"gauge\",\"name\":\"runtime.threads\",\"value\":4}");
  EXPECT_EQ(lines[3].rfind("{\"type\":\"histogram\",\"name\":\"kernel.matmul_"
                           "ns\",\"count\":1,\"sum\":5,\"max\":5,",
                           0),
            0U);
  EXPECT_NE(lines[3].find("\"buckets\":[[5,1]]"), std::string::npos);
  // Spans export in completion order: the child closes before the root.
  EXPECT_EQ(lines[4].rfind("{\"type\":\"span\",\"id\":2,\"parent\":1,"
                           "\"name\":\"train\",\"worker\":1,\"epoch\":3,",
                           0),
            0U);
  EXPECT_NE(lines[4].find("\"storage_bytes\":1024"), std::string::npos);
  EXPECT_NE(lines[4].find("\"note\":\"a\\\"b\""), std::string::npos);
  EXPECT_EQ(lines[5].rfind("{\"type\":\"span\",\"id\":1,\"parent\":0,"
                           "\"name\":\"epoch\",\"worker\":-1,\"epoch\":3,",
                           0),
            0U);
}

TEST_F(ObsTest, ExportParsesBackLosslessly) {
  obs::set_enabled(true);
  obs::count("bytes.state", 123'456'789'012ULL);  // needs u64 round trip
  obs::count("bytes.update", 7);
  obs::count("verify.accept", 2);
  obs::gauge("table3.RPoLv2.capital_usd").set(5.46);
  obs::histogram("kernel.matmul_ns").record(1000);
  obs::histogram("kernel.matmul_ns").record(2000);
  {
    obs::Span verify("verify", 0, 2, 1);
    verify.attr("accepted", true);
    verify.attr("double_checks", std::int64_t{1});
  }
  ASSERT_TRUE(obs::Registry::instance().export_jsonl_file(
      "obs_trace_test_out.jsonl"));

  const obs::Trace trace = obs::load_trace_file("obs_trace_test_out.jsonl");
  EXPECT_EQ(trace.schema, "rpol.trace.v1");
  EXPECT_GT(trace.wall_unix_ns, 0U);
  EXPECT_EQ(trace.counters.at("bytes.state"), 123'456'789'012ULL);
  EXPECT_EQ(trace.counters.at("verify.accept"), 2U);
  EXPECT_DOUBLE_EQ(trace.gauges.at("table3.RPoLv2.capital_usd"), 5.46);
  ASSERT_EQ(trace.histograms.size(), 1U);
  EXPECT_EQ(trace.histograms[0].count, 2U);
  EXPECT_EQ(trace.histograms[0].sum, 3000U);
  ASSERT_EQ(trace.spans.size(), 1U);
  EXPECT_EQ(trace.spans[0].name, "verify");
  EXPECT_EQ(trace.spans[0].worker, 2);
  EXPECT_EQ(trace.spans[0].epoch, 1);

  const obs::TraceSummary summary = obs::summarize_trace(trace);
  EXPECT_EQ(summary.bytes_total, 123'456'789'019ULL);
  ASSERT_EQ(summary.bytes_by_type.size(), 2U);
  EXPECT_EQ(summary.bytes_by_type[0].first, "state");
  ASSERT_EQ(summary.workers.size(), 1U);
  EXPECT_EQ(summary.workers[0].worker, 2);
  EXPECT_EQ(summary.workers[0].accepts, 1);
  EXPECT_EQ(summary.workers[0].double_checks, 1);
  ASSERT_EQ(summary.phases.size(), 1U);
  EXPECT_EQ(summary.phases[0].name, "verify");
  EXPECT_EQ(summary.phases[0].count, 1U);
}

TEST_F(ObsTest, EmptyTraceExportsMetaOnlyAndSummarizes) {
  obs::set_enabled(true);
  const std::vector<std::string> lines = export_lines();
  ASSERT_EQ(lines.size(), 1U);  // just the meta line

  const obs::Trace trace = obs::load_trace_file("obs_trace_test_out.jsonl");
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_TRUE(trace.counters.empty());
  const obs::TraceSummary summary = obs::summarize_trace(trace);
  EXPECT_EQ(summary.wall_extent_s, 0.0);
  EXPECT_TRUE(summary.phases.empty());
  EXPECT_EQ(summary.bytes_total, 0U);
  // Printing an empty trace must not crash.
  obs::print_trace_summary(trace, stdout);
}

TEST_F(ObsTest, ParserRejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW(obs::parse_trace_jsonl(empty), std::runtime_error);
  std::istringstream no_meta(
      "{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\n");
  EXPECT_THROW(obs::parse_trace_jsonl(no_meta), std::runtime_error);
  std::istringstream bad_schema(
      "{\"type\":\"meta\",\"schema\":\"other.v9\",\"wall_unix_ns\":1}\n");
  EXPECT_THROW(obs::parse_trace_jsonl(bad_schema), std::runtime_error);
  std::istringstream garbage("not json at all\n");
  EXPECT_THROW(obs::parse_trace_jsonl(garbage), std::runtime_error);
  EXPECT_THROW(obs::load_trace_file("does_not_exist.jsonl"),
               std::runtime_error);
}

TEST_F(ObsTest, DisabledRegistryRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  obs::count("bytes.state", 100);  // guarded: must not register
  {
    obs::Span s("epoch");
    EXPECT_FALSE(s.active());
    EXPECT_EQ(s.id(), 0U);
    s.attr("ignored", std::int64_t{1});
  }
  EXPECT_EQ(obs::Registry::instance().span_count(), 0U);
  EXPECT_EQ(obs::maybe_export("obs_trace_test_unwritten.jsonl"), "");
  // Direct handle use still works (set_enabled only gates the hot paths) —
  // but the export remains schema-valid either way.
  const std::vector<std::string> lines = export_lines();
  ASSERT_EQ(lines.size(), 1U);
}

TEST_F(ObsTest, ResetZeroesMetricsButKeepsHandles) {
  obs::set_enabled(true);
  obs::Counter& c = obs::counter("bytes.update");
  c.add(5);
  { obs::Span s("epoch"); }
  EXPECT_EQ(obs::Registry::instance().span_count(), 1U);
  obs::Registry::instance().reset();
  EXPECT_EQ(c.value(), 0U);  // the same handle, zeroed
  EXPECT_EQ(obs::Registry::instance().span_count(), 0U);
  c.add(3);
  EXPECT_EQ(obs::counter("bytes.update").value(), 3U);
}

TEST_F(ObsTest, SampleTickFiresOneInEvery) {
  obs::set_enabled(true);
  std::atomic<std::uint64_t> tick{0};
  int fired = 0;
  for (int i = 0; i < 64; ++i) fired += obs::sample_tick(tick, 8) ? 1 : 0;
  EXPECT_EQ(fired, 8);
  obs::set_enabled(false);
  EXPECT_FALSE(obs::sample_tick(tick, 8));
  EXPECT_EQ(tick.load(), 64U);  // disabled guard skips the increment too
}

}  // namespace
}  // namespace rpol
