// Shared test helpers: numeric gradient checking and tiny-task fixtures.

#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/loss.h"
#include "nn/model.h"

namespace rpol::testing {

// Central-difference gradient check for a model under softmax-CE loss.
// Verifies dL/dtheta for a subset of parameter entries (stride-sampled to
// keep runtime bounded). Tolerances are loose because the model runs in
// fp32 while finite differences amplify rounding.
inline void check_model_gradients(nn::Model& model, const Tensor& input,
                                  const std::vector<std::int64_t>& labels,
                                  double rel_tol = 5e-2, double abs_tol = 1e-3,
                                  std::int64_t stride = 7) {
  nn::SoftmaxCrossEntropy loss;

  auto forward_loss = [&]() {
    const Tensor logits = model.forward(input, /*training=*/true);
    return static_cast<double>(loss.forward(logits, labels));
  };

  // Analytic gradients.
  model.zero_grads();
  forward_loss();
  model.backward(loss.backward());

  std::int64_t checked = 0;
  for (nn::Param* p : model.params()) {
    if (!p->trainable) continue;
    for (std::int64_t i = 0; i < p->value.numel(); i += stride) {
      const float original = p->value.at(i);
      const float eps = std::max(1e-3F, std::abs(original) * 1e-3F);
      // Every direct write to p->value must bump the version, or the
      // perturbed forwards would run against stale packed weights
      // (tensor/packcache.h).
      p->value.at(i) = original + eps;
      p->mark_updated();
      const double loss_plus = forward_loss();
      p->value.at(i) = original - eps;
      p->mark_updated();
      const double loss_minus = forward_loss();
      p->value.at(i) = original;
      p->mark_updated();
      const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
      const double analytic = static_cast<double>(p->grad.at(i));
      const double denom = std::max({std::abs(numeric), std::abs(analytic), 1e-8});
      if (std::abs(numeric - analytic) > abs_tol &&
          std::abs(numeric - analytic) / denom > rel_tol) {
        ADD_FAILURE() << "gradient mismatch in " << p->name << "[" << i
                      << "]: analytic=" << analytic << " numeric=" << numeric;
        return;
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0) << "no parameters were gradient-checked";
}

}  // namespace rpol::testing
