// Spill-to-disk checkpoint store + streamed epoch pipeline
// (src/core/ckptstore.*): LRU eviction order, bitwise spill round-trips,
// cold reads after eviction, concurrent readers, the memory-budget
// guarantee at 10x checkpoint count, and the §6 equivalence between the
// streamed pipeline and the materialized EpochTrace path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/ckptstore.h"
#include "core/verifier.h"
#include "sim/device.h"
#include "task_fixture.h"
#include "tensor/rng.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

// A deterministic synthetic state of `floats` model + `floats`/2 optimizer
// entries (byte_size = 6 * floats).
TrainState make_state(std::uint64_t seed, std::size_t floats) {
  Rng rng(seed);
  TrainState s;
  s.model.resize(floats);
  s.optimizer.resize(floats / 2);
  for (auto& v : s.model) v = rng.next_normal();
  for (auto& v : s.optimizer) v = rng.next_normal();
  return s;
}

CkptStoreConfig budget_config(std::uint64_t bytes) {
  CkptStoreConfig cfg;
  cfg.budget_bytes = bytes;
  return cfg;
}

// ---------------------------------------------------------------------------
// CheckpointStore mechanics

TEST(CheckpointStore, SpillReloadRoundTripIsBitwise) {
  // Budget of one byte: every append immediately evicts, so each fetch is a
  // cold disk read — the round trip must still be float-for-float exact.
  CheckpointStore store(budget_config(1));
  std::vector<TrainState> reference;
  for (std::uint64_t i = 0; i < 8; ++i) {
    reference.push_back(make_state(100 + i, 64 + static_cast<std::size_t>(i)));
    store.append(reference.back());
  }
  ASSERT_EQ(store.num_checkpoints(), 8);
  for (std::int64_t i = 0; i < 8; ++i) {
    const TrainState got = store.fetch(i);
    EXPECT_EQ(got.model, reference[static_cast<std::size_t>(i)].model);
    EXPECT_EQ(got.optimizer, reference[static_cast<std::size_t>(i)].optimizer);
  }
  const CkptStoreStats stats = store.stats();
  EXPECT_EQ(stats.checkpoints, 8);
  EXPECT_GT(stats.reloads, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.spill_bytes, 0u);
}

TEST(CheckpointStore, EvictsLeastRecentlyUsedFirst) {
  const TrainState s = make_state(1, 96);  // all states the same size
  const std::uint64_t one = s.byte_size();
  CheckpointStore store(budget_config(2 * one));  // room for exactly two

  store.append(make_state(1, 96));  // index 0
  store.append(make_state(2, 96));  // index 1
  EXPECT_TRUE(store.is_hot(0));
  EXPECT_TRUE(store.is_hot(1));

  store.append(make_state(3, 96));  // index 2 -> evicts 0 (oldest)
  EXPECT_FALSE(store.is_hot(0));
  EXPECT_TRUE(store.is_hot(1));
  EXPECT_TRUE(store.is_hot(2));

  // A fetch refreshes recency: 1 becomes MRU, so the next append evicts 2.
  (void)store.fetch(1);
  store.append(make_state(4, 96));  // index 3 -> evicts 2, not 1
  EXPECT_TRUE(store.is_hot(1));
  EXPECT_FALSE(store.is_hot(2));
  EXPECT_TRUE(store.is_hot(3));
}

TEST(CheckpointStore, ColdReadRecachesEvictedCheckpoint) {
  const std::uint64_t one = make_state(1, 96).byte_size();
  CheckpointStore store(budget_config(2 * one));
  for (std::uint64_t i = 0; i < 4; ++i) store.append(make_state(10 + i, 96));
  ASSERT_FALSE(store.is_hot(0));

  const CkptStoreStats before = store.stats();
  const TrainState got = store.fetch(0);  // cold read
  EXPECT_EQ(got.model, make_state(10, 96).model);
  EXPECT_TRUE(store.is_hot(0));  // re-cached...
  const CkptStoreStats after = store.stats();
  EXPECT_EQ(after.reloads, before.reloads + 1);
  // ...at the expense of the LRU entry, so the budget still holds.
  EXPECT_LE(after.hot_bytes, 2 * one);
}

TEST(CheckpointStore, FetchOutOfRangeThrows) {
  CheckpointStore store(budget_config(1 << 20));
  store.append(make_state(5, 32));
  EXPECT_THROW(store.fetch(-1), std::out_of_range);
  EXPECT_THROW(store.fetch(1), std::out_of_range);
}

TEST(CheckpointStore, SpillFileRemovedOnDestruction) {
  std::string path;
  {
    CheckpointStore store(budget_config(1 << 20));
    store.append(make_state(7, 64));
    path = store.spill_path();
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(CheckpointStore, BudgetResolvesFromEnvironment) {
  ASSERT_EQ(::setenv("RPOL_CKPT_BUDGET", "12345", 1), 0);
  EXPECT_EQ(resolve_ckpt_budget(0), 12345u);
  // An explicit config value wins over the environment.
  EXPECT_EQ(resolve_ckpt_budget(999), 999u);
  ASSERT_EQ(::unsetenv("RPOL_CKPT_BUDGET"), 0);
  EXPECT_EQ(resolve_ckpt_budget(0), 256ULL * 1024 * 1024);

  CheckpointStore store(budget_config(4096));
  EXPECT_EQ(store.stats().budget_bytes, 4096u);
}

TEST(CheckpointStore, ConcurrentReadersSeeExactStates) {
  // Budget of two states over eight: most fetches are cold reads, and four
  // threads hammer them concurrently. Every thread must observe exactly the
  // appended floats — the mutex serializes file seeks and LRU mutation.
  const std::uint64_t one = make_state(1, 128).byte_size();
  CheckpointStore store(budget_config(2 * one));
  std::vector<TrainState> reference;
  for (std::uint64_t i = 0; i < 8; ++i) {
    reference.push_back(make_state(200 + i, 128));
    store.append(reference.back());
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t x = 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(t + 1);
      for (int iter = 0; iter < 200; ++iter) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const auto idx = static_cast<std::int64_t>((x >> 33) % 8);
        const TrainState got = store.fetch(idx);
        if (got.model != reference[static_cast<std::size_t>(idx)].model ||
            got.optimizer !=
                reference[static_cast<std::size_t>(idx)].optimizer) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(store.stats().hot_bytes, 2 * one);
}

// ---------------------------------------------------------------------------
// The memory-budget guarantee, asserted through obs/mem.h: at 10x the
// default checkpoint count, the peak bytes tagged `ckptstore` never exceed
// max(budget, one checkpoint) even while every checkpoint is appended and a
// scattered subset fetched back.

TEST(CheckpointStore, PeakTaggedBytesStayUnderBudgetAt10xCheckpoints) {
  obs::mem_reset();
  constexpr std::size_t kFloats = 4096;      // ~24 KiB logical per state
  constexpr std::int64_t kCheckpoints = 50;  // 10x the usual 5-per-epoch
  const std::uint64_t one = make_state(1, kFloats).byte_size();
  const std::uint64_t budget = 4 * one;  // hot room for 4 of 50
  {
    CheckpointStore store(budget_config(budget));
    for (std::int64_t i = 0; i < kCheckpoints; ++i) {
      store.append(make_state(300 + static_cast<std::uint64_t>(i), kFloats));
    }
    // Sampled verification access pattern: scattered fetches, old and new.
    for (std::int64_t i = 0; i < kCheckpoints; i += 7) (void)store.fetch(i);
    (void)store.fetch(0);
    (void)store.fetch(kCheckpoints - 1);

    const CkptStoreStats stats = store.stats();
    // The logical chain is an order of magnitude over budget...
    EXPECT_EQ(store.total_bytes(), one * kCheckpoints);
    EXPECT_GT(store.total_bytes(), 10 * budget);
    // ...yet tagged residency never exceeded it.
    EXPECT_LE(stats.hot_bytes, budget);
    EXPECT_LE(obs::mem_stats(obs::MemTag::kCkptStore).peak_bytes, budget);
    EXPECT_GT(stats.evictions, 0u);
  }
  // Destruction releases the whole balance.
  EXPECT_EQ(obs::mem_stats(obs::MemTag::kCkptStore).current_bytes, 0u);
  obs::mem_reset();
}

// ---------------------------------------------------------------------------
// Streamed epoch pipeline: §6 equivalence with the materialized path.

struct StreamFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make();
    view = data::DatasetView::whole(task.dataset);
    context = task.context(/*nonce=*/99, view);
  }

  EpochTrace honest_trace(std::uint64_t run_seed = 1) {
    StepExecutor exec(task.factory, task.hp);
    sim::DeviceExecution device(sim::device_ga10(), run_seed);
    HonestPolicy policy;
    return policy.produce_trace(exec, context, device);
  }

  StreamedEpoch honest_streamed(CommitmentVersion version,
                                const lsh::PStableLsh* hasher,
                                const std::vector<bool>* mask,
                                std::uint64_t run_seed = 1,
                                std::uint64_t budget = 1) {
    StepExecutor exec(task.factory, task.hp);
    sim::DeviceExecution device(sim::device_ga10(), run_seed);
    HonestPolicy policy;
    return run_streamed_epoch(policy, exec, context, device, version, hasher,
                              mask, budget_config(budget));
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
};

TEST_F(StreamFixture, StreamedCommitMatchesBatchV1) {
  const EpochTrace trace = honest_trace();
  const Commitment batch = commit_v1(trace);
  // Budget 1 byte: every checkpoint round-trips through the spill file.
  const StreamedEpoch streamed =
      honest_streamed(CommitmentVersion::kV1, nullptr, nullptr);

  EXPECT_EQ(streamed.step_of, trace.step_of);
  EXPECT_EQ(streamed.mean_loss, trace.mean_loss);
  ASSERT_EQ(streamed.commitment.state_hashes.size(),
            batch.state_hashes.size());
  for (std::size_t i = 0; i < batch.state_hashes.size(); ++i) {
    EXPECT_TRUE(digest_equal(streamed.commitment.state_hashes[i],
                             batch.state_hashes[i]));
  }
  EXPECT_TRUE(digest_equal(streamed.commitment.root, batch.root));
  // Compact roots match the tree-built ones (O(log n) frontiers vs full
  // Merkle tree).
  const CompactCommitment tree_compact = compact_commitment(batch);
  EXPECT_TRUE(digest_equal(streamed.compact.state_root,
                           tree_compact.state_root));
  EXPECT_EQ(streamed.compact.num_checkpoints, tree_compact.num_checkpoints);
  // The spilled states come back bitwise equal to the trace's.
  ASSERT_EQ(streamed.store->num_checkpoints(),
            static_cast<std::int64_t>(trace.checkpoints.size()));
  for (std::size_t i = 0; i < trace.checkpoints.size(); ++i) {
    const TrainState got = streamed.store->fetch(static_cast<std::int64_t>(i));
    EXPECT_EQ(got.model, trace.checkpoints[i].model);
    EXPECT_EQ(got.optimizer, trace.checkpoints[i].optimizer);
  }
}

TEST_F(StreamFixture, StreamedCommitMatchesBatchV2) {
  lsh::LshConfig lcfg;
  lcfg.params.r = 4.0;
  lcfg.params.k = 2;
  lcfg.params.l = 3;
  StepExecutor probe(task.factory, task.hp);
  const std::vector<bool> mask = probe.trainable_mask();
  lcfg.dim = static_cast<std::int64_t>(
      std::count(mask.begin(), mask.end(), true));
  lcfg.seed = 77;
  const lsh::PStableLsh hasher(lcfg);

  const EpochTrace trace = honest_trace();
  const Commitment batch = commit_v2(trace, hasher, &mask);
  const StreamedEpoch streamed =
      honest_streamed(CommitmentVersion::kV2, &hasher, &mask);

  EXPECT_TRUE(digest_equal(streamed.commitment.root, batch.root));
  ASSERT_EQ(streamed.commitment.lsh_digests.size(), batch.lsh_digests.size());
  for (std::size_t i = 0; i < batch.lsh_digests.size(); ++i) {
    EXPECT_TRUE(lsh::lsh_match(streamed.commitment.lsh_digests[i],
                               batch.lsh_digests[i]));
  }
  const CompactCommitment tree_compact = compact_commitment(batch);
  EXPECT_TRUE(digest_equal(streamed.compact.state_root,
                           tree_compact.state_root));
  EXPECT_TRUE(digest_equal(streamed.compact.lsh_root, tree_compact.lsh_root));
}

TEST_F(StreamFixture, SourceVerifyMatchesTraceVerify) {
  const EpochTrace trace = honest_trace();
  const Commitment commitment = commit_v1(trace);
  const StreamedEpoch streamed =
      honest_streamed(CommitmentVersion::kV1, nullptr, nullptr);
  const Digest initial_hash = hash_state(context.initial);

  VerifierConfig vcfg;
  vcfg.samples_q = 3;
  vcfg.beta = 0.5;
  vcfg.use_lsh = false;
  Verifier verifier(task.factory, task.hp, vcfg);

  sim::DeviceExecution dev_a(sim::device_g3090(), 1234);
  const VerifyResult via_trace = verifier.verify(
      commitment, trace, context, initial_hash, dev_a);
  sim::DeviceExecution dev_b(sim::device_g3090(), 1234);
  const VerifyResult via_source = verifier.verify(
      commitment, *streamed.store, streamed.step_of, context, initial_hash,
      dev_b);

  EXPECT_EQ(via_trace.accepted, via_source.accepted);
  EXPECT_EQ(via_trace.failure, via_source.failure);
  EXPECT_EQ(via_trace.reexecuted_steps, via_source.reexecuted_steps);
  EXPECT_EQ(via_trace.proof_bytes, via_source.proof_bytes);
  ASSERT_EQ(via_trace.checks.size(), via_source.checks.size());
  for (std::size_t i = 0; i < via_trace.checks.size(); ++i) {
    EXPECT_EQ(via_trace.checks[i].transition, via_source.checks[i].transition);
    EXPECT_EQ(via_trace.checks[i].passed, via_source.checks[i].passed);
    EXPECT_EQ(via_trace.checks[i].distance, via_source.checks[i].distance);
  }
  EXPECT_TRUE(via_trace.accepted);
}

TEST_F(StreamFixture, DefaultStreamTraceFallbackMatchesProduceTrace) {
  // ReplayPolicy has no streaming override: the base-class fallback must
  // still deliver the same checkpoints in the same order.
  ReplayPolicy replay;
  StepExecutor exec_a(task.factory, task.hp);
  sim::DeviceExecution dev_a(sim::device_ga10(), 9);
  const EpochTrace trace = replay.produce_trace(exec_a, context, dev_a);

  StepExecutor exec_b(task.factory, task.hp);
  sim::DeviceExecution dev_b(sim::device_ga10(), 9);
  const StreamedEpoch streamed =
      run_streamed_epoch(replay, exec_b, context, dev_b,
                         CommitmentVersion::kV1, nullptr, nullptr,
                         budget_config(1));
  EXPECT_EQ(streamed.step_of, trace.step_of);
  ASSERT_EQ(streamed.store->num_checkpoints(),
            static_cast<std::int64_t>(trace.checkpoints.size()));
  for (std::size_t i = 0; i < trace.checkpoints.size(); ++i) {
    EXPECT_EQ(streamed.store->fetch(static_cast<std::int64_t>(i)).model,
              trace.checkpoints[i].model);
  }
  EXPECT_TRUE(
      digest_equal(streamed.commitment.root, commit_v1(trace).root));
}

}  // namespace
}  // namespace rpol::core
