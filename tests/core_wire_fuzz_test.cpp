// Decode-robustness fuzzing: every wire decoder must handle arbitrary and
// mutated inputs by either decoding successfully or throwing a standard
// exception — never crashing, hanging, or over-reading. Seeded and
// deterministic so failures reproduce.

#include <gtest/gtest.h>

#include "core/wire.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

template <typename Decoder>
void fuzz_decoder(const Bytes& valid, Decoder&& decode, std::uint64_t seed,
                  int mutations) {
  // 1. Single-byte mutations of a valid message.
  Rng rng(seed);
  for (int i = 0; i < mutations; ++i) {
    Bytes mutated = valid;
    const std::size_t pos =
        static_cast<std::size_t>(rng.next_below(mutated.size()));
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      decode(mutated);
    } catch (const std::exception&) {
      // rejecting is fine; crashing is not.
    }
  }
  // 2. Random truncations.
  for (int i = 0; i < mutations; ++i) {
    Bytes truncated = valid;
    truncated.resize(static_cast<std::size_t>(rng.next_below(valid.size())));
    try {
      decode(truncated);
    } catch (const std::exception&) {
    }
  }
  // 3. Pure garbage of assorted lengths.
  for (int i = 0; i < mutations; ++i) {
    Bytes garbage(static_cast<std::size_t>(rng.next_below(256)));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_below(256));
    try {
      decode(garbage);
    } catch (const std::exception&) {
    }
  }
}

struct FuzzFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/151);
    view = data::DatasetView::whole(task.dataset);
    context = task.context(909, view);
    StepExecutor executor(task.factory, task.hp);
    sim::DeviceExecution device(sim::device_gt4(), 2);
    HonestPolicy honest;
    trace = honest.produce_trace(executor, context, device);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
  EpochTrace trace;
};

TEST_F(FuzzFixture, TaskAnnouncementDecoderSurvivesFuzz) {
  TaskAnnouncement msg;
  msg.epoch = 3;
  msg.nonce = 42;
  msg.hp = task.hp;
  msg.initial_state_hash = hash_state(context.initial);
  msg.lsh = lsh::LshConfig{{1.5, 3, 4}, 100, 9};
  fuzz_decoder(encode_task_announcement(msg),
               [](const Bytes& b) { decode_task_announcement(b); }, 1, 300);
}

TEST_F(FuzzFixture, CommitmentDecoderSurvivesFuzz) {
  fuzz_decoder(encode_commitment(commit_v1(trace)),
               [](const Bytes& b) { decode_commitment(b); }, 2, 300);
}

TEST_F(FuzzFixture, ProofRequestDecoderSurvivesFuzz) {
  fuzz_decoder(encode_proof_request(ProofRequest{{0, 1, 3}}),
               [](const Bytes& b) { decode_proof_request(b); }, 3, 300);
}

TEST_F(FuzzFixture, ProofResponseDecoderSurvivesFuzz) {
  ProofResponse resp;
  resp.input_states.push_back(trace.checkpoints[0]);
  resp.output_states.push_back(trace.checkpoints[1]);
  fuzz_decoder(encode_proof_response(resp),
               [](const Bytes& b) { decode_proof_response(b); }, 4, 200);
}

TEST_F(FuzzFixture, MutatedCommitmentNeverDecodesToDifferentValidRoot) {
  // Stronger property: any mutation that still decodes must decode to a
  // commitment whose recomputed root matches its own lists (the decoder
  // runs commitment_consistent), so a wire attacker cannot smuggle in a
  // root/list mismatch.
  const Bytes valid = encode_commitment(commit_v1(trace));
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = valid;
    const std::size_t pos =
        static_cast<std::size_t>(rng.next_below(mutated.size()));
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const Commitment decoded = decode_commitment(mutated);
      EXPECT_TRUE(commitment_consistent(decoded));
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
}  // namespace rpol::core
