// Decode-robustness fuzzing: every wire decoder must handle arbitrary and
// mutated inputs by either decoding successfully or throwing a standard
// exception — never crashing, hanging, or over-reading. Seeded and
// deterministic so failures reproduce.

#include <gtest/gtest.h>

#include <functional>

#include "core/wire.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

template <typename Decoder>
void fuzz_decoder(const Bytes& valid, Decoder&& decode, std::uint64_t seed,
                  int mutations) {
  // 1. Single-byte mutations of a valid message.
  Rng rng(seed);
  for (int i = 0; i < mutations; ++i) {
    Bytes mutated = valid;
    const std::size_t pos =
        static_cast<std::size_t>(rng.next_below(mutated.size()));
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      decode(mutated);
    } catch (const std::exception&) {
      // rejecting is fine; crashing is not.
    }
  }
  // 2. Random truncations.
  for (int i = 0; i < mutations; ++i) {
    Bytes truncated = valid;
    truncated.resize(static_cast<std::size_t>(rng.next_below(valid.size())));
    try {
      decode(truncated);
    } catch (const std::exception&) {
    }
  }
  // 3. Pure garbage of assorted lengths.
  for (int i = 0; i < mutations; ++i) {
    Bytes garbage(static_cast<std::size_t>(rng.next_below(256)));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_below(256));
    try {
      decode(garbage);
    } catch (const std::exception&) {
    }
  }
}

struct FuzzFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/151);
    view = data::DatasetView::whole(task.dataset);
    context = task.context(909, view);
    StepExecutor executor(task.factory, task.hp);
    sim::DeviceExecution device(sim::device_gt4(), 2);
    HonestPolicy honest;
    trace = honest.produce_trace(executor, context, device);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
  EpochTrace trace;
};

TEST_F(FuzzFixture, TaskAnnouncementDecoderSurvivesFuzz) {
  TaskAnnouncement msg;
  msg.epoch = 3;
  msg.nonce = 42;
  msg.hp = task.hp;
  msg.initial_state_hash = hash_state(context.initial);
  msg.lsh = lsh::LshConfig{{1.5, 3, 4}, 100, 9};
  fuzz_decoder(encode_task_announcement(msg),
               [](const Bytes& b) { decode_task_announcement(b); }, 1, 300);
}

TEST_F(FuzzFixture, CommitmentDecoderSurvivesFuzz) {
  fuzz_decoder(encode_commitment(commit_v1(trace)),
               [](const Bytes& b) { decode_commitment(b); }, 2, 300);
}

TEST_F(FuzzFixture, ProofRequestDecoderSurvivesFuzz) {
  fuzz_decoder(encode_proof_request(ProofRequest{{0, 1, 3}}),
               [](const Bytes& b) { decode_proof_request(b); }, 3, 300);
}

TEST_F(FuzzFixture, ProofResponseDecoderSurvivesFuzz) {
  ProofResponse resp;
  resp.input_states.push_back(trace.checkpoints[0]);
  resp.output_states.push_back(trace.checkpoints[1]);
  fuzz_decoder(encode_proof_response(resp),
               [](const Bytes& b) { decode_proof_response(b); }, 4, 200);
}

// ---------------------------------------------------------------------------
// Structure-aware mutation suite: seeds are valid encodings of all six
// MessageTypes; mutations are systematic bit flips, truncations at every
// byte boundary, and lies written into known length fields. Two properties:
//   * decode never crashes (throwing std::exception is the only exit), and
//   * any mutation that still decodes must round-trip to EXACTLY the bytes
//     it was decoded from — the encodings are canonical, so a wire attacker
//     cannot produce two distinct byte strings for one message value.

// A decode/encode pair closed over one message kind.
struct Codec {
  const char* name;
  std::function<Bytes(const Bytes&)> reencode;  // decode + encode, may throw
};

// Valid seed encodings of all six protocol message types. The global state
// and the model update share TrainState framing but are seeded separately
// so both taxonomy entries are fuzzed.
struct StructuredSeeds {
  Bytes announcement;
  Bytes state;
  Bytes commitment;
  Bytes update;
  Bytes proof_request;
  Bytes proof_response;

  std::vector<std::pair<Bytes, Codec>> all() const {
    const Codec announcement_codec{
        "announcement", [](const Bytes& b) {
          return encode_task_announcement(decode_task_announcement(b));
        }};
    const Codec state_codec{"train_state", [](const Bytes& b) {
                              std::size_t offset = 0;
                              const TrainState s = decode_train_state(b, offset);
                              if (offset != b.size()) {
                                throw std::invalid_argument("trailing bytes");
                              }
                              return encode_train_state(s);
                            }};
    const Codec commitment_codec{"commitment", [](const Bytes& b) {
                                   return encode_commitment(decode_commitment(b));
                                 }};
    const Codec request_codec{"proof_request", [](const Bytes& b) {
                                return encode_proof_request(decode_proof_request(b));
                              }};
    const Codec response_codec{"proof_response", [](const Bytes& b) {
                                 return encode_proof_response(
                                     decode_proof_response(b));
                               }};
    return {{announcement, announcement_codec}, {state, state_codec},
            {commitment, commitment_codec},     {update, state_codec},
            {proof_request, request_codec},     {proof_response, response_codec}};
  }
};

// Decodes `candidate`; if it decodes at all, the re-encoding must be
// byte-identical to the candidate.
void expect_rejects_or_roundtrips(const Codec& codec, const Bytes& candidate) {
  Bytes reencoded;
  try {
    reencoded = codec.reencode(candidate);
  } catch (const std::exception&) {
    return;  // rejecting is always conformant
  }
  EXPECT_EQ(reencoded, candidate)
      << codec.name << ": accepted bytes are not canonical";
}

struct StructuredFuzz : public FuzzFixture {
  void SetUp() override {
    FuzzFixture::SetUp();
    TaskAnnouncement announcement;
    announcement.epoch = 3;
    announcement.nonce = 42;
    announcement.hp = task.hp;
    announcement.initial_state_hash = hash_state(context.initial);
    announcement.lsh = lsh::LshConfig{{1.5, 3, 4}, 100, 9};
    seeds.announcement = encode_task_announcement(announcement);
    seeds.state = encode_train_state(context.initial);
    seeds.commitment = encode_commitment(commit_v1(trace));
    TrainState update;
    update.model = trace.checkpoints.back().model;
    seeds.update = encode_train_state(update);
    seeds.proof_request = encode_proof_request(ProofRequest{{0, 1, 3}});
    ProofResponse response;
    response.input_states.push_back(trace.checkpoints[0]);
    response.output_states.push_back(trace.checkpoints[1]);
    seeds.proof_response = encode_proof_response(response);
  }

  StructuredSeeds seeds;
};

TEST_F(StructuredFuzz, ValidEncodingsOfAllSixTypesRoundTripExactly) {
  for (const auto& [valid, codec] : seeds.all()) {
    SCOPED_TRACE(codec.name);
    EXPECT_EQ(codec.reencode(valid), valid);
  }
}

TEST_F(StructuredFuzz, BitFlipsNeverRoundTripToADifferentValue) {
  // Every single-bit flip of every seed byte: the decoder either rejects or
  // accepts a message that re-encodes to the flipped bytes themselves (so
  // the flip changed the VALUE, never created an alias of another value).
  for (const auto& [valid, codec] : seeds.all()) {
    SCOPED_TRACE(codec.name);
    for (std::size_t pos = 0; pos < valid.size(); ++pos) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes mutated = valid;
        mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
        expect_rejects_or_roundtrips(codec, mutated);
      }
    }
  }
}

TEST_F(StructuredFuzz, TruncationAtEveryBoundaryIsRejected) {
  // Every strict prefix must throw: all six encodings are self-delimiting
  // with trailing-byte checks, so losing any suffix is always detectable.
  for (const auto& [valid, codec] : seeds.all()) {
    SCOPED_TRACE(codec.name);
    for (std::size_t len = 0; len < valid.size(); ++len) {
      Bytes truncated(valid.begin(),
                      valid.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW(codec.reencode(truncated), std::exception)
          << "prefix of length " << len << " decoded";
    }
  }
}

TEST_F(StructuredFuzz, LengthFieldLiesAreRejected) {
  // Overwrite each known length field with lie values. A lied length either
  // over-reads (throws) or leaves trailing bytes (throws): no lie may
  // decode.
  const std::uint64_t lies[] = {0,          1,          1000,
                                1ull << 32, 1ull << 63, ~0ull};
  const auto lie_at = [&](const Codec& codec, const Bytes& valid,
                          std::size_t offset, std::uint64_t original) {
    for (const std::uint64_t lie : lies) {
      if (lie == original) continue;
      Bytes mutated = valid;
      for (int i = 0; i < 8; ++i) {
        mutated[offset + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(lie >> (8 * i));
      }
      EXPECT_THROW(codec.reencode(mutated), std::exception)
          << codec.name << ": length lie " << lie << " at offset " << offset
          << " decoded";
    }
  };

  const auto table = seeds.all();
  const std::size_t num_checkpoints = trace.checkpoints.size();

  // Commitment: hash count at offset 2, LSH-digest count after the hashes.
  lie_at(table[2].second, seeds.commitment, 2, num_checkpoints);
  lie_at(table[2].second, seeds.commitment, 2 + 8 + 32 * num_checkpoints, 0);

  // Proof request: index count at offset 1.
  lie_at(table[4].second, seeds.proof_request, 1, 3);

  // Proof response: input-state count at offset 1, then the first state's
  // byte length, then the output-state count after that state.
  const std::uint64_t state_len =
      encode_train_state(trace.checkpoints[0]).size();
  lie_at(table[5].second, seeds.proof_response, 1, 1);
  lie_at(table[5].second, seeds.proof_response, 9, state_len);
  lie_at(table[5].second, seeds.proof_response,
         17 + static_cast<std::size_t>(state_len), 1);

  // TrainState: model float count at offset 0, optimizer count after it.
  const std::uint64_t model_floats = context.initial.model.size();
  lie_at(table[1].second, seeds.state, 0, model_floats);
  lie_at(table[1].second, seeds.state, 8 + 4 * model_floats,
         context.initial.optimizer.size());
}

TEST_F(StructuredFuzz, LshPresenceFlagAcceptsOnlyCanonicalBytes) {
  // The announcement's has-LSH flag is the one bool on the wire; only 0x00
  // and 0x01 are canonical. Any other byte must be rejected, otherwise 254
  // distinct encodings would decode to the same message value.
  const std::size_t flag_offset = seeds.announcement.size() - 37;  // 36B cfg
  ASSERT_EQ(seeds.announcement[flag_offset], 1);
  for (int v = 2; v < 256; ++v) {
    Bytes mutated = seeds.announcement;
    mutated[flag_offset] = static_cast<std::uint8_t>(v);
    EXPECT_THROW(decode_task_announcement(mutated), std::exception)
        << "flag byte " << v << " decoded";
  }
}

// ---------------------------------------------------------------------------
// State-chunk codec (bounded-memory transfers): the chunk frame carries its
// own payload digest, so the conformance bar is higher than round-trip —
// every content mutation must be REJECTED, not merely re-encoded.

struct ChunkFuzz : public FuzzFixture {
  // The fixture state's canonical encoding, the ground truth every chunk
  // stream must reassemble to.
  Bytes canonical() const { return encode_train_state(context.initial); }
};

TEST_F(ChunkFuzz, RoundTripAtManyChunkSizesReassemblesCanonicalBytes) {
  const Bytes whole = canonical();
  for (const std::size_t chunk_bytes : {1ul, 3ul, 7ul, 16ul, 64ul, 1024ul,
                                        whole.size(), whole.size() + 100}) {
    SCOPED_TRACE(chunk_bytes);
    ChunkedStateEncoder encoder(context.initial, chunk_bytes);
    ASSERT_EQ(encoder.total_bytes(), whole.size());

    Bytes concatenated;
    ChunkedStateAssembler assembler(whole.size());
    for (std::int64_t i = 0; i < encoder.num_chunks(); ++i) {
      const StateChunk chunk = encoder.chunk(i);
      // decode(encode(x)) == x, and the encoding is canonical.
      const Bytes frame = encode_state_chunk(chunk);
      EXPECT_TRUE(decode_state_chunk(frame) == chunk);
      EXPECT_EQ(encode_state_chunk(decode_state_chunk(frame)), frame);
      concatenated.insert(concatenated.end(), chunk.payload.begin(),
                          chunk.payload.end());
      assembler.accept(chunk);
    }
    // Payload concatenation IS the canonical encoding — chunking never
    // re-frames, so hashes computed over the assembled state are untouched.
    EXPECT_EQ(concatenated, whole);
    ASSERT_TRUE(assembler.complete());
    const TrainState out = assembler.take();
    EXPECT_EQ(out.model, context.initial.model);
    EXPECT_EQ(out.optimizer, context.initial.optimizer);
  }
}

TEST_F(ChunkFuzz, ChunkDecoderSurvivesFuzz) {
  ChunkedStateEncoder encoder(context.initial, 64);
  fuzz_decoder(encode_state_chunk(encoder.chunk(1)),
               [](const Bytes& b) { decode_state_chunk(b); }, 6, 300);
}

TEST_F(ChunkFuzz, TruncationAtEveryBoundaryIsRejected) {
  ChunkedStateEncoder encoder(context.initial, 48);
  const Bytes frame = encode_state_chunk(encoder.chunk(0));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    Bytes truncated(frame.begin(),
                    frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode_state_chunk(truncated), std::exception)
        << "prefix of length " << len << " decoded";
  }
}

TEST_F(ChunkFuzz, HeaderLiesAreRejected) {
  ChunkedStateEncoder encoder(context.initial, 48);
  const StateChunk middle = encoder.chunk(1);
  const Bytes frame = encode_state_chunk(middle);
  const auto lie_at = [&](std::size_t offset, std::uint64_t original) {
    const std::uint64_t lies[] = {0, 1, 1000, 1ull << 32, 1ull << 63, ~0ull};
    for (const std::uint64_t lie : lies) {
      if (lie == original) continue;
      Bytes mutated = frame;
      for (int i = 0; i < 8; ++i) {
        mutated[offset + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(lie >> (8 * i));
      }
      EXPECT_THROW(decode_state_chunk(mutated), std::exception)
          << "header lie " << lie << " at offset " << offset << " decoded";
    }
  };
  // payload_len lies always break the frame parse (short read leaves
  // trailing bytes, long read over-reads) — every lie is rejected.
  lie_at(17, middle.payload.size());
  // total/offset lies that push the window outside [0, total) break the
  // framing invariant offset+len <= total and are rejected at decode.
  // In-window relabelings still decode (the digest binds only the payload);
  // those are the ASSEMBLER's job — strict offset ordering and total
  // agreement (AssemblerRejectsMisuseAndStaysRetrySafe below).
  const std::uint64_t len = middle.payload.size();
  for (const std::uint64_t total_lie :
       {std::uint64_t{0}, std::uint64_t{1}, middle.offset, middle.offset + len - 1}) {
    Bytes mutated = frame;
    for (int i = 0; i < 8; ++i) {
      mutated[1 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(total_lie >> (8 * i));
    }
    EXPECT_THROW(decode_state_chunk(mutated), std::exception)
        << "shrunken total " << total_lie << " decoded";
  }
  for (const std::uint64_t offset_lie :
       {middle.total_bytes - len + 1, middle.total_bytes,
        std::uint64_t{1} << 63, ~std::uint64_t{0}}) {
    Bytes mutated = frame;
    for (int i = 0; i < 8; ++i) {
      mutated[9 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(offset_lie >> (8 * i));
    }
    EXPECT_THROW(decode_state_chunk(mutated), std::exception)
        << "out-of-window offset " << offset_lie << " decoded";
  }
  // Wrong tag byte: every non-0x05 value is rejected.
  for (int v = 0; v < 256; ++v) {
    if (v == kTagStateChunk) continue;
    Bytes mutated = frame;
    mutated[0] = static_cast<std::uint8_t>(v);
    EXPECT_THROW(decode_state_chunk(mutated), std::exception);
  }
}

TEST_F(ChunkFuzz, EveryPayloadOrDigestBitFlipIsRejected) {
  // The per-chunk digest must catch EVERY single-bit payload corruption,
  // and a corrupted digest must never validate: content mutations are
  // always typed rejections, never silently-altered floats.
  ChunkedStateEncoder encoder(context.initial, 32);
  const Bytes frame = encode_state_chunk(encoder.chunk(2));
  for (std::size_t pos = 25; pos < frame.size(); ++pos) {  // payload + digest
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = frame;
      mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW(decode_state_chunk(mutated), std::exception)
          << "payload flip at byte " << pos << " bit " << bit << " decoded";
    }
  }
}

TEST_F(ChunkFuzz, AssemblerRejectsMisuseAndStaysRetrySafe) {
  const Bytes whole = canonical();
  ChunkedStateEncoder encoder(context.initial, 40);
  ASSERT_GE(encoder.num_chunks(), 3);

  // Resource cap: a first chunk announcing more than max_total_bytes.
  {
    ChunkedStateAssembler capped(whole.size() - 1);
    EXPECT_THROW(capped.accept(encoder.chunk(0)), std::exception);
  }

  ChunkedStateAssembler assembler(whole.size());
  EXPECT_FALSE(assembler.complete());
  EXPECT_THROW((void)assembler.peek(), std::logic_error);
  EXPECT_THROW((void)assembler.take(), std::logic_error);

  // Out-of-order start, then recovery with the true first chunk.
  EXPECT_THROW(assembler.accept(encoder.chunk(1)), std::exception);
  assembler.accept(encoder.chunk(0));

  // Duplicate, skipped, and total-lying chunks are all rejected without
  // corrupting the stream: the correct next chunk still lands (retry-safe).
  EXPECT_THROW(assembler.accept(encoder.chunk(0)), std::exception);
  EXPECT_THROW(assembler.accept(encoder.chunk(2)), std::exception);
  StateChunk lying = encoder.chunk(1);
  lying.total_bytes += 8;
  EXPECT_THROW(assembler.accept(lying), std::exception);
  assembler.accept(encoder.chunk(1));

  for (std::int64_t i = 2; i < encoder.num_chunks(); ++i) {
    assembler.accept(encoder.chunk(i));
  }
  ASSERT_TRUE(assembler.complete());
  // Trailing chunk beyond the announced total is rejected.
  StateChunk extra = encoder.chunk(0);
  extra.offset = encoder.total_bytes();
  EXPECT_THROW(assembler.accept(extra), std::exception);

  EXPECT_EQ(assembler.peek().model, context.initial.model);
  const TrainState out = assembler.take();
  EXPECT_EQ(out.model, context.initial.model);
  EXPECT_EQ(out.optimizer, context.initial.optimizer);
  // Moved-from assembler refuses further use.
  EXPECT_THROW((void)assembler.take(), std::logic_error);
  EXPECT_THROW(assembler.accept(encoder.chunk(0)), std::logic_error);
}

TEST_F(ChunkFuzz, StreamLevelFloatCountLiesAreRejected) {
  // Forge a structurally valid chunk STREAM whose leading float count
  // contradicts the announced total: the assembler's phase machine must
  // reject it rather than over-allocate or mis-slice.
  const Bytes whole = canonical();
  Bytes forged = whole;
  const std::uint64_t lie = ~0ull;
  for (int i = 0; i < 8; ++i) {
    forged[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(lie >> (8 * i));
  }
  StateChunk chunk;
  chunk.total_bytes = forged.size();
  chunk.offset = 0;
  chunk.payload = forged;
  chunk.payload_hash = sha256(chunk.payload);
  ChunkedStateAssembler assembler(forged.size());
  EXPECT_THROW(assembler.accept(chunk), std::exception);
  // The throw must not have torn state: the honest stream still assembles.
  ChunkedStateAssembler retry(whole.size());
  StateChunk honest;
  honest.total_bytes = whole.size();
  honest.offset = 0;
  honest.payload = whole;
  honest.payload_hash = sha256(honest.payload);
  retry.accept(honest);
  ASSERT_TRUE(retry.complete());
  EXPECT_EQ(retry.take().model, context.initial.model);
}

TEST_F(FuzzFixture, MutatedCommitmentNeverDecodesToDifferentValidRoot) {
  // Stronger property: any mutation that still decodes must decode to a
  // commitment whose recomputed root matches its own lists (the decoder
  // runs commitment_consistent), so a wire attacker cannot smuggle in a
  // root/list mismatch.
  const Bytes valid = encode_commitment(commit_v1(trace));
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = valid;
    const std::size_t pos =
        static_cast<std::size_t>(rng.next_below(mutated.size()));
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const Commitment decoded = decode_commitment(mutated);
      EXPECT_TRUE(commitment_consistent(decoded));
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
}  // namespace rpol::core
