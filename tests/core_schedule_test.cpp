// Learning-rate schedule and weight-decay tests: both are part of the
// task's hyper-parameters zeta, so verification must reproduce them
// exactly when re-executing sampled transitions.

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

TEST(LrSchedule, ConstantByDefault) {
  Hyperparams hp;
  hp.learning_rate = 0.1F;
  EXPECT_FLOAT_EQ(hp.lr_at_step(0), 0.1F);
  EXPECT_FLOAT_EQ(hp.lr_at_step(1'000'000), 0.1F);
}

TEST(LrSchedule, StepDecayBoundaries) {
  Hyperparams hp;
  hp.learning_rate = 1.0F;
  hp.lr_decay_factor = 0.5F;
  hp.lr_decay_every_steps = 10;
  EXPECT_FLOAT_EQ(hp.lr_at_step(0), 1.0F);
  EXPECT_FLOAT_EQ(hp.lr_at_step(9), 1.0F);
  EXPECT_FLOAT_EQ(hp.lr_at_step(10), 0.5F);
  EXPECT_FLOAT_EQ(hp.lr_at_step(19), 0.5F);
  EXPECT_FLOAT_EQ(hp.lr_at_step(20), 0.25F);
  EXPECT_FLOAT_EQ(hp.lr_at_step(35), 0.125F);
}

TEST(LrSchedule, DecayActuallySlowsUpdates) {
  // With an aggressive decay the later transitions move much less than the
  // early ones.
  TinyTask task = TinyTask::make(/*seed=*/161, /*steps=*/12, /*interval=*/3);
  task.hp.lr_decay_factor = 0.1F;
  task.hp.lr_decay_every_steps = 6;
  const auto view = data::DatasetView::whole(task.dataset);
  StepExecutor executor(task.factory, task.hp);
  EpochContext ctx = task.context(707, view);
  sim::DeviceExecution device(sim::device_ga10(), 1);
  HonestPolicy honest;
  const EpochTrace trace = honest.produce_trace(executor, ctx, device);
  const double early = l2_distance(trace.checkpoints[0].model,
                                   trace.checkpoints[1].model);
  const double late = l2_distance(trace.checkpoints[3].model,
                                  trace.checkpoints[4].model);
  EXPECT_LT(late, 0.3 * early);
}

TEST(LrSchedule, VerificationReproducesScheduledTraining) {
  // The core protocol property: a schedule-trained honest trace passes
  // verification (re-execution applies the same schedule at the same global
  // step indices), while a worker that ignores the schedule is caught.
  TinyTask task = TinyTask::make(/*seed=*/162, /*steps=*/12, /*interval=*/3);
  task.hp.lr_decay_factor = 0.5F;
  task.hp.lr_decay_every_steps = 4;
  task.hp.weight_decay = 1e-3F;
  const auto view = data::DatasetView::whole(task.dataset);
  EpochContext ctx = task.context(808, view);

  StepExecutor worker(task.factory, task.hp);
  sim::DeviceExecution wd(sim::device_ga10(), 2);
  HonestPolicy honest;
  const EpochTrace good = honest.produce_trace(worker, ctx, wd);

  // A cheater trains with the UNDECAYED lr (more progress per step than
  // agreed — e.g. hoping to converge faster and claim a better model).
  Hyperparams flat = task.hp;
  flat.lr_decay_every_steps = 0;
  flat.weight_decay = 0.0F;
  StepExecutor cheater_exec(task.factory, flat);
  sim::DeviceExecution cd(sim::device_ga10(), 3);
  const EpochTrace cheat = honest.produce_trace(cheater_exec, ctx, cd);

  VerifierConfig cfg;
  cfg.samples_q = 4;
  cfg.beta = 2e-3;
  Verifier verifier(task.factory, task.hp, cfg);
  sim::DeviceExecution m1(sim::device_g3090(), 4);
  EXPECT_TRUE(verifier
                  .verify(commit_v1(good), good, ctx, hash_state(ctx.initial), m1)
                  .accepted);
  sim::DeviceExecution m2(sim::device_g3090(), 5);
  EXPECT_FALSE(
      verifier.verify(commit_v1(cheat), cheat, ctx, hash_state(ctx.initial), m2)
          .accepted);
}

TEST(WeightDecay, ShrinksWeightsOnZeroGradient) {
  nn::Param p("w", Tensor({4}, {1.0F, -2.0F, 3.0F, -4.0F}));
  nn::Sgd opt({&p}, /*lr=*/0.1F);
  // No task gradient: decay alone pulls weights toward zero.
  opt.zero_grad();
  opt.apply_weight_decay(0.5F);
  opt.step();
  // w -= lr * wd * w => w *= (1 - 0.05)
  EXPECT_FLOAT_EQ(p.value.at(0), 0.95F);
  EXPECT_FLOAT_EQ(p.value.at(3), -3.8F);
}

TEST(WeightDecay, ZeroDecayIsNoOp) {
  nn::Param p("w", Tensor({2}, {1.0F, 2.0F}));
  p.grad = Tensor({2}, {0.5F, 0.5F});
  nn::Sgd opt({&p}, 0.1F);
  opt.apply_weight_decay(0.0F);
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.5F);  // untouched
}

TEST(WeightDecay, SkipsBuffers) {
  nn::Param buf("b", Tensor({2}, {5.0F, 5.0F}), /*train=*/false);
  nn::Sgd opt({&buf}, 0.1F);
  opt.apply_weight_decay(1.0F);
  EXPECT_FLOAT_EQ(buf.grad.at(0), 0.0F);
}

TEST(LrSchedule, SetLearningRateAffectsNextStep) {
  nn::Param p("w", Tensor({1}, {1.0F}));
  nn::Sgd opt({&p}, 1.0F);
  p.grad = Tensor({1}, {1.0F});
  opt.set_learning_rate(0.25F);
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), 0.75F);
}

}  // namespace
}  // namespace rpol::core
