// Wire-protocol tests: canonical round trips, malformed-input rejection,
// and cross-party hash agreement.

#include <gtest/gtest.h>

#include "core/wire.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

TaskAnnouncement sample_announcement(bool with_lsh) {
  TaskAnnouncement msg;
  msg.epoch = 7;
  msg.nonce = 0xFEEDBEEF;
  msg.hp.optimizer = nn::OptimizerKind::kAdam;
  msg.hp.learning_rate = 0.01F;
  msg.hp.momentum = 0.8F;
  msg.hp.batch_size = 64;
  msg.hp.steps_per_epoch = 25;
  msg.hp.checkpoint_interval = 5;
  msg.initial_state_hash = sha256(std::string("genesis"));
  if (with_lsh) {
    msg.lsh = lsh::LshConfig{{2.5, 4, 4}, 1234, 99};
  }
  return msg;
}

TEST(Wire, TaskAnnouncementRoundTrip) {
  for (const bool with_lsh : {false, true}) {
    const TaskAnnouncement msg = sample_announcement(with_lsh);
    const TaskAnnouncement decoded =
        decode_task_announcement(encode_task_announcement(msg));
    EXPECT_TRUE(decoded == msg) << "with_lsh=" << with_lsh;
  }
}

TEST(Wire, TaskAnnouncementRejectsGarbage) {
  Bytes garbage{0x42, 0x00};
  EXPECT_THROW(decode_task_announcement(garbage), std::invalid_argument);
  Bytes truncated = encode_task_announcement(sample_announcement(true));
  truncated.resize(truncated.size() / 2);
  EXPECT_ANY_THROW(decode_task_announcement(truncated));
}

TEST(Wire, TaskAnnouncementRejectsBadFields) {
  Bytes encoded = encode_task_announcement(sample_announcement(false));
  // Corrupt the optimizer kind field (first u64 after tag+epoch+nonce).
  encoded[1 + 8 + 8] = 0xFF;
  EXPECT_THROW(decode_task_announcement(encoded), std::invalid_argument);
}

TEST(Wire, TaskAnnouncementRejectsTrailingBytes) {
  Bytes encoded = encode_task_announcement(sample_announcement(false));
  encoded.push_back(0x00);
  EXPECT_THROW(decode_task_announcement(encoded), std::invalid_argument);
}

struct WireFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/81);
    view = data::DatasetView::whole(task.dataset);
    context = task.context(12345, view);
    StepExecutor executor(task.factory, task.hp);
    sim::DeviceExecution device(sim::device_ga10(), 6);
    HonestPolicy honest;
    trace = honest.produce_trace(executor, context, device);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
  EpochTrace trace;
};

TEST_F(WireFixture, CommitmentV1RoundTrip) {
  const Commitment original = commit_v1(trace);
  const Commitment decoded = decode_commitment(encode_commitment(original));
  EXPECT_EQ(decoded.version, original.version);
  EXPECT_EQ(decoded.state_hashes, original.state_hashes);
  EXPECT_TRUE(digest_equal(decoded.root, original.root));
}

TEST_F(WireFixture, CommitmentV2RoundTrip) {
  const lsh::LshConfig cfg{{1.0, 2, 3},
                           static_cast<std::int64_t>(trace.checkpoints[0].model.size()),
                           5};
  const lsh::PStableLsh hasher(cfg);
  const Commitment original = commit_v2(trace, hasher);
  const Commitment decoded = decode_commitment(encode_commitment(original));
  EXPECT_EQ(decoded.lsh_digests.size(), original.lsh_digests.size());
  for (std::size_t i = 0; i < decoded.lsh_digests.size(); ++i) {
    EXPECT_TRUE(decoded.lsh_digests[i] == original.lsh_digests[i]);
  }
  EXPECT_TRUE(digest_equal(decoded.root, original.root));
}

TEST_F(WireFixture, TamperedCommitmentRejectedAtDecode) {
  Bytes encoded = encode_commitment(commit_v1(trace));
  // Flip one byte inside the first state hash: the root check must fail.
  encoded[10] ^= 0x01;
  EXPECT_THROW(decode_commitment(encoded), std::invalid_argument);
}

TEST_F(WireFixture, ProofRequestRoundTripAndValidation) {
  const ProofRequest req{{0, 2, 3}};
  EXPECT_TRUE(decode_proof_request(encode_proof_request(req)) == req);

  // Non-ascending indices are rejected.
  Bytes bad;
  bad.push_back(0x03);
  append_u64(bad, 2);
  append_i64(bad, 3);
  append_i64(bad, 1);
  EXPECT_THROW(decode_proof_request(bad), std::invalid_argument);
}

TEST_F(WireFixture, ProofResponseRoundTrip) {
  ProofResponse resp;
  resp.input_states.push_back(trace.checkpoints[0]);
  resp.input_states.push_back(trace.checkpoints[1]);
  resp.output_states.push_back(trace.checkpoints[2]);
  const ProofResponse decoded = decode_proof_response(encode_proof_response(resp));
  ASSERT_EQ(decoded.input_states.size(), 2u);
  ASSERT_EQ(decoded.output_states.size(), 1u);
  EXPECT_EQ(decoded.input_states[0].model, trace.checkpoints[0].model);
  EXPECT_EQ(decoded.input_states[1].optimizer, trace.checkpoints[1].optimizer);
  EXPECT_EQ(decoded.output_states[0].model, trace.checkpoints[2].model);
}

TEST_F(WireFixture, StateEncodingMatchesCommitmentHashing) {
  // The wire encoding of a state is the exact byte string the commitment
  // hashes — both parties hash identical bytes.
  const Bytes encoded = encode_train_state(trace.checkpoints[1]);
  EXPECT_TRUE(digest_equal(sha256(encoded), hash_state(trace.checkpoints[1])));
}

TEST_F(WireFixture, DecodedStateReloadsIntoExecutor) {
  const Bytes encoded = encode_train_state(trace.checkpoints.back());
  std::size_t offset = 0;
  const TrainState decoded = decode_train_state(encoded, offset);
  StepExecutor executor(task.factory, task.hp);
  executor.load_state(decoded);  // must not throw: sizes align with the model
  EXPECT_EQ(executor.save_state().model, trace.checkpoints.back().model);
}

// ---------------------------------------------------------------------------
// Trace-context envelope (observability propagation)

TEST(Wire, TraceEnvelopeRoundTripsAnyPayload) {
  const Bytes payload = {0x02, 0xFF, 0x00, 0x7C, 0x01};  // arbitrary bytes
  const Bytes framed = wrap_trace_envelope(42, 7, payload);
  ASSERT_EQ(framed.size(), payload.size() + kTraceEnvelopeBytes);
  EXPECT_EQ(framed[0], kTagTraceEnvelope);

  std::uint64_t trace_id = 0, span_id = 0;
  const Bytes inner = strip_trace_envelope(framed, &trace_id, &span_id);
  EXPECT_EQ(inner, payload);  // wrap(strip(x)) == x, byte for byte
  EXPECT_EQ(trace_id, 42U);
  EXPECT_EQ(span_id, 7U);
}

TEST(Wire, StripPassesNonEnvelopedFramesThrough) {
  // Legacy traffic never starts with the envelope tag; strip is a no-op
  // reporting zero ids, so receivers can strip unconditionally.
  const Bytes bare = {kTagCommitment, 0x01, 0x02};
  std::uint64_t trace_id = 99, span_id = 99;
  const Bytes out = strip_trace_envelope(bare, &trace_id, &span_id);
  EXPECT_EQ(out, bare);
  EXPECT_EQ(trace_id, 0U);
  EXPECT_EQ(span_id, 0U);
  // The id out-params are optional.
  EXPECT_EQ(strip_trace_envelope(bare), bare);
  EXPECT_TRUE(strip_trace_envelope(Bytes{}).empty());
}

TEST(Wire, TruncatedEnvelopeRejected) {
  const Bytes framed = wrap_trace_envelope(1, 2, {0xAA});
  for (std::size_t len = 1; len < kTraceEnvelopeBytes; ++len) {
    const Bytes cut(framed.begin(),
                    framed.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(strip_trace_envelope(cut), std::invalid_argument) << len;
  }
}

TEST_F(WireFixture, EnvelopeNeverEntersMessageBytesOrHashes) {
  // The canonical encoding of a commitment is identical whether or not the
  // frame travels inside an envelope, so every digest computed over message
  // bytes (state hashing, commitment roots) is envelope-blind.
  const Commitment commitment = commit_v1(trace);
  const Bytes canonical = encode_commitment(commitment);
  const Bytes framed = wrap_trace_envelope(1234, 5678, canonical);
  const Bytes stripped = strip_trace_envelope(framed);
  EXPECT_EQ(stripped, canonical);
  EXPECT_TRUE(digest_equal(sha256(stripped), sha256(canonical)));
  // An enveloped frame can never be mistaken for a decodable message.
  EXPECT_THROW(decode_commitment(framed), std::invalid_argument);
  // And the carried ids do not perturb the payload bytes.
  EXPECT_EQ(strip_trace_envelope(wrap_trace_envelope(1, 1, canonical)),
            strip_trace_envelope(wrap_trace_envelope(9999, 42, canonical)));
}

}  // namespace
}  // namespace rpol::core
