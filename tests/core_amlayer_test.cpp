// AMLayer tests (Sec. V-A): deterministic derivation from the address,
// Lipschitz/spectral-norm bound, invertibility (bi-Lipschitz sandwich),
// ownership verification, and information preservation under training.

#include <gtest/gtest.h>

#include <cmath>

#include "core/amlayer.h"
#include "nn/models.h"
#include "tensor/ops.h"

namespace rpol::core {
namespace {

Address addr(std::uint64_t seed) { return Address::from_seed(seed); }

TEST(AmLayer, WeightsDeterministicPerAddress) {
  const AmLayerConfig cfg;
  const Tensor w1 = derive_amlayer_weight(addr(1), cfg);
  const Tensor w2 = derive_amlayer_weight(addr(1), cfg);
  const Tensor w3 = derive_amlayer_weight(addr(2), cfg);
  EXPECT_EQ(w1.vec(), w2.vec());
  EXPECT_NE(w1.vec(), w3.vec());
}

TEST(AmLayer, SpectralNormBounded) {
  AmLayerConfig cfg;
  cfg.scaling_c = 0.5F;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    AmLayer layer(addr(s), cfg);
    EXPECT_LE(layer.spectral_norm(), cfg.scaling_c + 1e-4F) << "seed " << s;
  }
}

TEST(AmLayer, InvalidAddressThrows) {
  EXPECT_THROW(derive_amlayer_weight(Address{}, AmLayerConfig{}),
               std::invalid_argument);
}

TEST(AmLayer, WeightIsFrozen) {
  AmLayer layer(addr(3), AmLayerConfig{});
  std::vector<nn::Param*> params;
  layer.collect_params(params);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_FALSE(params[0]->trainable);
}

// Property sweep: the residual branch g satisfies ||g(x1)-g(x2)|| <= c
// ||x1-x2|| (Eq. 3) for random input pairs — equivalently the full layer is
// bi-Lipschitz with constants (1-c, 1+c), which is what makes it invertible
// and information-preserving.
class AmLayerLipschitz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AmLayerLipschitz, ResidualBranchIsContractive) {
  AmLayerConfig cfg;
  cfg.scaling_c = 0.5F;
  AmLayer layer(addr(GetParam()), cfg);
  Rng rng(derive_seed(GetParam(), 5));
  for (int trial = 0; trial < 5; ++trial) {
    const Tensor x1 = Tensor::randn({2, 3, 6, 6}, rng);
    Tensor delta = Tensor::randn({2, 3, 6, 6}, rng, 0.1F);
    Tensor x2 = x1;
    x2 += delta;
    const Tensor y1 = layer.forward(x1, false);
    const Tensor y2 = layer.forward(x2, false);
    // g(x) = AMLayer(x) - x.
    Tensor g1 = y1, g2 = y2;
    g1 -= x1;
    g2 -= x2;
    g1 -= g2;  // g(x1) - g(x2)
    const double branch_dist = g1.l2_norm();
    const double input_dist = l2_distance(x1, x2);
    EXPECT_LE(branch_dist, cfg.scaling_c * input_dist * 1.05)
        << "trial " << trial;
    // Bi-Lipschitz sandwich on the whole layer.
    const double out_dist = l2_distance(y1, y2);
    EXPECT_GE(out_dist, (1.0 - cfg.scaling_c) * input_dist * 0.95);
    EXPECT_LE(out_dist, (1.0 + cfg.scaling_c) * input_dist * 1.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Addresses, AmLayerLipschitz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(AmLayer, BackwardMatchesFiniteDifference) {
  // Directional derivative check on sum(AMLayer(x)).
  AmLayer layer(addr(9), AmLayerConfig{});
  Rng rng(77);
  const Tensor x = Tensor::randn({1, 3, 4, 4}, rng);

  const Tensor ones = Tensor::full({1, 3, 4, 4}, 1.0F);
  layer.forward(x, true);
  const Tensor grad = layer.backward(ones);

  Rng dir_rng(78);
  const Tensor direction = Tensor::randn({1, 3, 4, 4}, dir_rng);
  const float eps = 1e-3F;
  Tensor xp = x, xm = x;
  xp.add_scaled(direction, eps);
  xm.add_scaled(direction, -eps);
  auto total = [&](const Tensor& input) {
    AmLayer fresh(addr(9), AmLayerConfig{});
    const Tensor y = fresh.forward(input, true);
    double s = 0.0;
    for (const float v : y.vec()) s += v;
    return s;
  };
  const double numeric = (total(xp) - total(xm)) / (2.0 * eps);
  double analytic = 0.0;
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    analytic += static_cast<double>(grad.at(i)) * direction.at(i);
  }
  EXPECT_NEAR(numeric, analytic, std::abs(analytic) * 1e-2 + 1e-2);
}

TEST(AmLayer, OwnerVerification) {
  AmLayer layer(addr(4), AmLayerConfig{});
  EXPECT_TRUE(verify_amlayer_owner(layer, addr(4)));
  EXPECT_FALSE(verify_amlayer_owner(layer, addr(5)));
}

TEST(AmLayer, PrependIntoModelKeepsAmWeightsFirst) {
  nn::ModelConfig cfg;
  cfg.image_size = 8;
  cfg.width = 2;
  cfg.num_classes = 3;
  nn::Model m = nn::make_mini_resnet18(cfg, 1);
  const std::int64_t base_params = m.num_parameters();
  m.prepend(std::make_unique<AmLayer>(addr(6), AmLayerConfig{}));
  const Tensor expected = derive_amlayer_weight(addr(6), AmLayerConfig{});
  EXPECT_EQ(m.num_parameters(), base_params + expected.numel());
  const auto state = m.state_vector();
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    EXPECT_EQ(state[static_cast<std::size_t>(i)], expected.at(i));
  }
  // Forward still produces logits of the right shape.
  Rng rng(80);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(m.forward(x, true).shape(), (Shape{2, 3}));
}

TEST(AmLayer, DifferentAddressesChangeRepresentation) {
  // Feeding the same input through AMLayers of two addresses produces
  // different activations — the mechanism behind the address-replacing
  // accuracy collapse (Table I).
  AmLayer a(addr(7), AmLayerConfig{});
  AmLayer b(addr(8), AmLayerConfig{});
  Rng rng(81);
  const Tensor x = Tensor::randn({1, 3, 6, 6}, rng);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  EXPECT_GT(l2_distance(ya, yb), 0.1);
}

TEST(AmLayer, ScalingBelowSigmaKeepsWeightsUnscaled) {
  // If c / sigma >= 1 the weights are left alone per Eq. (4). Use a large c
  // so the branch is (almost surely) not rescaled.
  AmLayerConfig big;
  big.scaling_c = 100.0F;
  AmLayer layer(addr(10), big);
  EXPECT_LT(layer.spectral_norm(), big.scaling_c);
}

}  // namespace
}  // namespace rpol::core
