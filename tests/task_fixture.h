// Shared tiny training task for protocol-level tests: an MLP on Gaussian
// blobs, small enough that full epochs take milliseconds but structured
// exactly like the paper's tasks (deterministic factory, i.i.d. partitions,
// checkpointed SGDM training on noisy simulated devices).

#pragma once

#include "core/pool.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"

namespace rpol::testing {

struct TinyTask {
  data::Dataset dataset;
  nn::ModelFactory factory;
  core::Hyperparams hp;

  static TinyTask make(std::uint64_t seed = 21, std::int64_t steps = 10,
                       std::int64_t interval = 3) {
    data::SyntheticBlobConfig data_cfg;
    data_cfg.num_classes = 4;
    data_cfg.num_examples = 512;
    data_cfg.features = 16;
    // Moderate separation + lr: the task must NOT converge within one
    // epoch, so gradient magnitudes (and hence simulated reproduction
    // errors) stay comparable across i.i.d. sub-tasks — the regime the
    // paper's CIFAR/ImageNet tasks live in.
    data_cfg.class_separation = 1.5F;
    data_cfg.seed = derive_seed(seed, 1);

    TinyTask task{data::make_synthetic_blobs(data_cfg),
                  nn::mlp_factory(16, {16}, 4, derive_seed(seed, 2)),
                  core::Hyperparams{}};
    task.hp.learning_rate = 0.02F;
    task.hp.batch_size = 16;
    task.hp.steps_per_epoch = steps;
    task.hp.checkpoint_interval = interval;
    return task;
  }

  core::EpochContext context(std::uint64_t nonce,
                             const data::DatasetView& view) const {
    core::StepExecutor executor(factory, hp);
    core::EpochContext ctx;
    ctx.nonce = nonce;
    ctx.initial = executor.save_state();
    ctx.dataset = &view;
    return ctx;
  }
};

}  // namespace rpol::testing
