// Reward-distribution tests: conservation, proportionality, fee handling,
// and integration with pool run reports.

#include <gtest/gtest.h>

#include "core/rewards.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

TEST(Rewards, ConservesEveryUnit) {
  const RewardDistribution d =
      distribute_rewards(1'000'003, {3, 1, 0, 7, 2}, RewardPolicy{250});
  EXPECT_EQ(d.total(), 1'000'003u);
}

TEST(Rewards, ProportionalToContributions) {
  RewardPolicy no_fee{0};
  const RewardDistribution d = distribute_rewards(1000, {1, 3}, no_fee);
  EXPECT_EQ(d.worker_payouts[0], 250u);
  EXPECT_EQ(d.worker_payouts[1], 750u);
  EXPECT_EQ(d.manager_fee, 0u);
  EXPECT_EQ(d.undistributed, 0u);
}

TEST(Rewards, ManagerFeeBasisPoints) {
  const RewardDistribution d = distribute_rewards(10'000, {1}, RewardPolicy{250});
  EXPECT_EQ(d.manager_fee, 250u);  // 2.5%
  EXPECT_EQ(d.worker_payouts[0], 9'750u);
}

TEST(Rewards, ZeroContributionWorkerGetsNothing) {
  const RewardDistribution d = distribute_rewards(900, {3, 0, 6}, RewardPolicy{0});
  EXPECT_EQ(d.worker_payouts[1], 0u);
  EXPECT_EQ(d.worker_payouts[0], 300u);
  EXPECT_EQ(d.worker_payouts[2], 600u);
}

TEST(Rewards, NoContributionsLeavesRewardUndistributed) {
  const RewardDistribution d = distribute_rewards(500, {0, 0}, RewardPolicy{100});
  EXPECT_EQ(d.manager_fee, 5u);
  EXPECT_EQ(d.undistributed, 495u);
  EXPECT_EQ(d.worker_payouts[0], 0u);
}

TEST(Rewards, LargestRemainderRounding) {
  // 100 split 3 ways (1,1,1): floor shares 33 each, remainder 1 goes to
  // the lowest index on a tie.
  const RewardDistribution d = distribute_rewards(100, {1, 1, 1}, RewardPolicy{0});
  EXPECT_EQ(d.worker_payouts[0], 34u);
  EXPECT_EQ(d.worker_payouts[1], 33u);
  EXPECT_EQ(d.worker_payouts[2], 33u);
  EXPECT_EQ(d.undistributed, 0u);
}

TEST(Rewards, InvalidInputsThrow) {
  EXPECT_THROW(distribute_rewards(100, {-1}, RewardPolicy{0}),
               std::invalid_argument);
  EXPECT_THROW(distribute_rewards(100, {1}, RewardPolicy{10'001}),
               std::invalid_argument);
}

// Property sweep: conservation and monotonicity for assorted splits.
class RewardSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint32_t>> {};

TEST_P(RewardSweep, ConservationAndMonotonicity) {
  const auto [reward, fee] = GetParam();
  const std::vector<std::int64_t> contributions{5, 2, 9, 0, 1, 7};
  const RewardDistribution d =
      distribute_rewards(reward, contributions, RewardPolicy{fee});
  EXPECT_EQ(d.total(), reward);
  // Bigger contribution never earns less.
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    for (std::size_t j = 0; j < contributions.size(); ++j) {
      if (contributions[i] > contributions[j]) {
        EXPECT_GE(d.worker_payouts[i], d.worker_payouts[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RewardSweep,
    ::testing::Values(std::pair{100ULL, 0u}, std::pair{101ULL, 250u},
                      std::pair{999'999ULL, 1'000u}, std::pair{7ULL, 0u},
                      std::pair{0ULL, 500u}));

TEST(Rewards, VerifiedEpochCountsFromPoolReport) {
  PoolRunReport report;
  EpochReport e1;
  e1.accepted = {true, false, true};
  EpochReport e2;
  e2.accepted = {true, true, false};
  report.epochs = {e1, e2};
  const auto counts = verified_epoch_counts(report);
  EXPECT_EQ(counts, (std::vector<std::int64_t>{2, 1, 1}));
  EXPECT_TRUE(verified_epoch_counts(PoolRunReport{}).empty());
}

TEST(Rewards, EndToEndWithMiningPool) {
  // A pool with one freeloader: rewards flow only to verified workers.
  using rpol::testing::TinyTask;
  const TinyTask task = TinyTask::make(101);
  const auto split = data::train_test_split(task.dataset, 0.25, 3);
  PoolConfig cfg;
  cfg.scheme = Scheme::kRPoLv1;
  cfg.hp = task.hp;
  cfg.epochs = 2;
  cfg.seed = 55;
  std::vector<WorkerSpec> workers;
  const auto devices = sim::all_devices();
  for (std::size_t w = 0; w < 3; ++w) {
    WorkerSpec spec;
    spec.policy = w == 0 ? std::unique_ptr<WorkerPolicy>(
                               std::make_unique<ReplayPolicy>())
                         : std::make_unique<HonestPolicy>();
    spec.device = devices[w];
    workers.push_back(std::move(spec));
  }
  MiningPool pool(cfg, task.factory, task.dataset, split.test,
                  std::move(workers));
  const PoolRunReport report = pool.run();
  const auto counts = verified_epoch_counts(report);
  EXPECT_EQ(counts[0], 0);  // freeloader never verified
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  const RewardDistribution d = distribute_rewards(1'000, counts, RewardPolicy{0});
  EXPECT_EQ(d.worker_payouts[0], 0u);
  EXPECT_EQ(d.worker_payouts[1], 500u);
  EXPECT_EQ(d.worker_payouts[2], 500u);
}

}  // namespace
}  // namespace rpol::core
