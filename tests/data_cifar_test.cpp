// CIFAR binary-format loader tests: round trips through the writer, format
// validation, and multi-file concatenation — all against generated files,
// no real dataset needed.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/cifar.h"
#include "data/synthetic.h"

namespace rpol::data {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Dataset cifar_shaped_synthetic(std::int64_t examples, std::uint64_t seed) {
  SyntheticImageConfig cfg;
  cfg.num_classes = 10;
  cfg.num_examples = examples;
  cfg.channels = 3;
  cfg.image_size = 32;
  cfg.noise_stddev = 0.3F;
  cfg.pattern_scale = 0.5F;  // keep pixels within [-1, 1] mostly
  cfg.seed = seed;
  return make_synthetic_images(cfg);
}

struct CifarFixture : public ::testing::Test {
  void TearDown() override {
    for (const auto& p : created) std::remove(p.c_str());
  }
  std::string make_file(const Dataset& d, const std::string& name) {
    const std::string path = temp_path(name);
    write_cifar10_binary(d, path);
    created.push_back(path);
    return path;
  }
  std::vector<std::string> created;
};

TEST_F(CifarFixture, RoundTripPreservesLabelsAndApproxPixels) {
  const Dataset original = cifar_shaped_synthetic(40, 1);
  const std::string path = make_file(original, "rpol_cifar_rt.bin");
  const Dataset loaded = load_cifar10_binary({path});
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.example_shape(), (Shape{3, 32, 32}));
  EXPECT_EQ(loaded.num_classes(), 10);
  std::vector<float> a(3 * 32 * 32), b(3 * 32 * 32);
  for (std::int64_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.label(i), original.label(i));
    original.copy_example(i, a.data());
    loaded.copy_example(i, b.data());
    for (std::size_t p = 0; p < a.size(); ++p) {
      // 8-bit quantization: within half a pixel step after clamping.
      const float clamped = std::clamp(a[p], -1.0F, 1.0F);
      EXPECT_NEAR(b[p], clamped, 1.0F / 127.5F) << "example " << i;
    }
  }
}

TEST_F(CifarFixture, MultiFileConcatenation) {
  const Dataset d1 = cifar_shaped_synthetic(15, 2);
  const Dataset d2 = cifar_shaped_synthetic(25, 3);
  const std::string p1 = make_file(d1, "rpol_cifar_a.bin");
  const std::string p2 = make_file(d2, "rpol_cifar_b.bin");
  const Dataset loaded = load_cifar10_binary({p1, p2});
  EXPECT_EQ(loaded.size(), 40);
  EXPECT_EQ(loaded.label(0), d1.label(0));
  EXPECT_EQ(loaded.label(15), d2.label(0));
}

TEST_F(CifarFixture, MalformedFileRejected) {
  const std::string path = temp_path("rpol_cifar_bad.bin");
  created.push_back(path);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[100] = {};
  std::fwrite(junk, 1, sizeof junk, f);  // not a multiple of 3073
  std::fclose(f);
  EXPECT_THROW(load_cifar10_binary({path}), std::runtime_error);
}

TEST_F(CifarFixture, MissingFileRejected) {
  EXPECT_THROW(load_cifar10_binary({temp_path("rpol_nonexistent.bin")}),
               std::runtime_error);
  EXPECT_THROW(load_cifar10_binary({}), std::invalid_argument);
}

TEST_F(CifarFixture, Cifar100FineLabels) {
  // Hand-build a 2-record CIFAR-100 file: coarse label, fine label, pixels.
  const std::string path = temp_path("rpol_cifar100.bin");
  created.push_back(path);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::vector<std::uint8_t> record(2 + 3072, 128);
  record[0] = 5;   // coarse
  record[1] = 42;  // fine
  std::fwrite(record.data(), 1, record.size(), f);
  record[1] = 99;
  std::fwrite(record.data(), 1, record.size(), f);
  std::fclose(f);
  const Dataset loaded = load_cifar100_binary(path);
  EXPECT_EQ(loaded.size(), 2);
  EXPECT_EQ(loaded.num_classes(), 100);
  EXPECT_EQ(loaded.label(0), 42);
  EXPECT_EQ(loaded.label(1), 99);
}

TEST_F(CifarFixture, WriterValidatesShape) {
  SyntheticImageConfig cfg;
  cfg.image_size = 8;  // wrong shape for CIFAR
  const Dataset small = make_synthetic_images(cfg);
  EXPECT_THROW(write_cifar10_binary(small, temp_path("x.bin")),
               std::invalid_argument);
}

TEST_F(CifarFixture, LoadedDataTrainsLikeSynthetic) {
  // End-to-end sanity: a model trains on the loaded (quantized) data just
  // as it would on the in-memory original.
  const Dataset original = cifar_shaped_synthetic(120, 4);
  const std::string path = make_file(original, "rpol_cifar_train.bin");
  const Dataset loaded = load_cifar10_binary({path});
  const DatasetView view = DatasetView::whole(loaded);
  std::vector<std::int64_t> labels;
  const Tensor batch = view.make_batch({0, 1, 2, 3}, labels);
  EXPECT_EQ(batch.shape(), (Shape{4, 3, 32, 32}));
}

}  // namespace
}  // namespace rpol::data
