// Whole-system integration test: the complete story of one mining round,
// from pool training with adversaries through verification, block proposal,
// consensus, reward distribution and escrowed payout — every library in the
// repository exercised in a single flow.

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "chain/escrow.h"
#include "core/amlayer.h"
#include "core/rewards.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"

namespace rpol {
namespace {

TEST(SystemEndToEnd, FullMiningRound) {
  // ---- 1. A task appears on chain. ---------------------------------------
  chain::Blockchain blockchain;
  const auto task_id =
      blockchain.publish_task("8-class phase-coded images", 0.7, 1'000);

  // ---- 2. The pool manager sets up the address-encoded task. -------------
  const Address manager_address = Address::from_seed(2024);
  data::SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 8;
  data_cfg.num_examples = 480;
  data_cfg.image_size = 8;
  data_cfg.noise_stddev = 0.25F;
  data_cfg.phase_coded = true;
  data_cfg.min_frequency = 2.0F;
  data_cfg.max_frequency = 2.0F;
  data_cfg.seed = 99;
  const data::Dataset dataset = data::make_synthetic_images(data_cfg);
  const data::TrainTestSplit split = data::train_test_split(dataset, 0.25, 4);

  nn::ModelConfig model_cfg;
  model_cfg.image_size = 8;
  model_cfg.width = 4;
  model_cfg.num_classes = 8;
  model_cfg.seed = 41;
  const nn::ModelFactory base_factory = nn::mini_resnet18_factory(model_cfg, 1);
  const core::AmLayerConfig am_cfg;
  const nn::ModelFactory pool_factory = [base_factory, am_cfg,
                                         manager_address]() {
    nn::Model m = base_factory();
    m.prepend(std::make_unique<core::AmLayer>(manager_address, am_cfg));
    return m;
  };

  // ---- 3. The pool trains with RPoLv2; one worker freeloads. -------------
  core::PoolConfig pool_cfg;
  pool_cfg.scheme = core::Scheme::kRPoLv2;
  pool_cfg.hp.learning_rate = 0.05F;
  pool_cfg.hp.batch_size = 16;
  pool_cfg.hp.steps_per_epoch = 8;
  pool_cfg.hp.checkpoint_interval = 2;
  pool_cfg.epochs = 4;
  pool_cfg.seed = 11;
  // Conv models at aggressive lr show heavy-tailed reproduction errors
  // (see EXPERIMENTS.md Fig. 5 note); the manager tunes the paper's knobs:
  // alpha from the MAX calibration error and a larger beta multiplier.
  pool_cfg.calibration.alpha_mode = core::AlphaMode::kMaxPlusSd;
  pool_cfg.calibration.beta_x = 25.0;
  std::vector<core::WorkerSpec> workers;
  const auto devices = sim::all_devices();
  for (std::size_t w = 0; w < 4; ++w) {
    core::WorkerSpec spec;
    spec.policy = w == 0 ? std::unique_ptr<core::WorkerPolicy>(
                               std::make_unique<core::ReplayPolicy>())
                         : std::make_unique<core::HonestPolicy>();
    spec.device = devices[w % devices.size()];
    workers.push_back(std::move(spec));
  }
  core::MiningPool pool(pool_cfg, pool_factory, dataset, split.test,
                        std::move(workers));
  const core::PoolRunReport pool_report = pool.run();
  // The freeloader is rejected every epoch; honest workers always pass.
  const auto contributions = core::verified_epoch_counts(pool_report);
  EXPECT_EQ(contributions[0], 0);
  for (std::size_t w = 1; w < contributions.size(); ++w) {
    EXPECT_EQ(contributions[w], pool_cfg.epochs);
  }
  EXPECT_GT(pool_report.final_accuracy, 0.5);

  // ---- 4. The pool proposes its model; a thief competes with a copy. -----
  chain::BlockProposal pool_proposal;
  pool_proposal.proposer = manager_address;
  pool_proposal.base_factory = base_factory;
  pool_proposal.amlayer_config = am_cfg;
  pool_proposal.model_state = pool.global_model();

  chain::BlockProposal stolen = pool_proposal;
  stolen.proposer = Address::from_seed(666);  // claims it without the key

  std::vector<chain::BlockProposal> proposals;
  proposals.push_back(pool_proposal);
  proposals.push_back(std::move(stolen));
  const auto winner = blockchain.run_round(task_id, std::move(proposals),
                                           split.test, pool_cfg.hp);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, 0u);  // the thief's ownership check fails
  EXPECT_EQ(blockchain.balance(manager_address), 1'000u);
  EXPECT_EQ(blockchain.balance(Address::from_seed(666)), 0u);
  EXPECT_TRUE(blockchain.validate_chain());

  // ---- 5. The reward flows through the escrow to verified workers. -------
  chain::FairExchangeEscrow escrow(4, core::RewardPolicy{500});  // 5% fee
  escrow.fund(blockchain.balance(manager_address));
  for (std::size_t w = 0; w < 4; ++w) {
    Bytes b;
    append_u64(b, w);
    escrow.register_commitment(w, sha256(b));  // stand-in commitment roots
  }
  escrow.submit_outcome(contributions);
  const core::RewardDistribution payout = escrow.settle();
  EXPECT_EQ(payout.total(), 1'000u);
  EXPECT_EQ(payout.manager_fee, 50u);
  EXPECT_EQ(payout.worker_payouts[0], 0u);  // freeloader earns nothing
  for (std::size_t w = 1; w < 4; ++w) {
    EXPECT_GT(payout.worker_payouts[w], 300u);
  }

  // ---- 6. The chain survives a persistence round trip. -------------------
  const chain::Blockchain restored =
      chain::Blockchain::from_bytes(blockchain.to_bytes());
  EXPECT_EQ(restored.height(), blockchain.height());
  EXPECT_EQ(restored.balance(manager_address), 1'000u);
}

}  // namespace
}  // namespace rpol
