// Live-telemetry tests (obs/live.h, obs/alerts.h, obs/live_read.h): the
// flight-recorder ring, the alert engine's rules as pure functions of tick
// sequences, the flusher's rpol.live.v1 stream round-tripped through the
// reader, truncated-tail tolerance, the reset-vs-reader seqlock under a
// hammer, and the byzantine end-to-end path (reject-rate alert fires and
// the eviction leaves a flight dump).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pool.h"
#include "obs/alerts.h"
#include "obs/health.h"
#include "obs/live.h"
#include "obs/live_read.h"
#include "obs/mem.h"
#include "obs/obs.h"
#include "task_fixture.h"

namespace rpol {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// Every test runs with the live surface on and a clean slate; tear-down
// restores the disabled default so the rest of the binary stays unaffected.
class LiveTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_live_enabled(true);
    obs::flight_reset();
    obs::live_reset_health();
    obs::reset_all();
  }
  void TearDown() override {
    obs::set_live_enabled(false);
    obs::set_enabled(false);
    obs::flight_reset();
    obs::live_reset_health();
    obs::reset_all();
    ::unsetenv("RPOL_FLIGHT_FILE");
    ::unsetenv("RPOL_LIVE_FILE");
    ::unsetenv("RPOL_LIVE_INTERVAL_MS");
  }
};

// ---------------------------------------------------------------------------
// Flight recorder

TEST_F(LiveTelemetryTest, FlightRingRecordsInOrder) {
  obs::flight_record(obs::FlightKind::kMark, "epoch.begin", -1, 0);
  obs::flight_record(obs::FlightKind::kFault, "pool.session_failure", 2, 0, 7);
  obs::flight_record(obs::FlightKind::kEviction, "pool.eviction", 2, 1);
  EXPECT_EQ(obs::flight_count(), 3u);

  const std::vector<obs::FlightEvent> events = obs::flight_snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(std::string(events[0].what), "epoch.begin");
  EXPECT_EQ(events[0].kind, obs::FlightKind::kMark);
  EXPECT_EQ(events[1].worker, 2);
  EXPECT_EQ(events[1].value, 7u);
  EXPECT_EQ(events[2].kind, obs::FlightKind::kEviction);
  EXPECT_EQ(events[2].epoch, 1);

  obs::flight_reset();
  EXPECT_EQ(obs::flight_count(), 0u);
  EXPECT_TRUE(obs::flight_snapshot().empty());
}

TEST_F(LiveTelemetryTest, FlightRingTruncatesLongLabels) {
  const std::string longlabel(80, 'x');
  obs::flight_record(obs::FlightKind::kMark, longlabel);
  const std::vector<obs::FlightEvent> events = obs::flight_snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::string what(events[0].what);
  EXPECT_LT(what.size(), sizeof(obs::FlightEvent::what));
  EXPECT_EQ(what, longlabel.substr(0, what.size()));
}

TEST_F(LiveTelemetryTest, FlightRingIsGatedOnLiveEnabled) {
  obs::set_live_enabled(false);
  obs::flight_record(obs::FlightKind::kMark, "invisible");
  EXPECT_EQ(obs::flight_count(), 0u);
  obs::set_live_enabled(true);
  obs::flight_record(obs::FlightKind::kMark, "visible");
  EXPECT_EQ(obs::flight_count(), 1u);
}

TEST_F(LiveTelemetryTest, FlightRingKeepsNewestAcrossWraparound) {
  const std::size_t extra = 10;
  for (std::size_t i = 0; i < obs::kFlightCapacity + extra; ++i) {
    obs::flight_record(obs::FlightKind::kMark, "tick", -1, -1, i);
  }
  EXPECT_EQ(obs::flight_count(), obs::kFlightCapacity + extra);
  const std::vector<obs::FlightEvent> events = obs::flight_snapshot();
  ASSERT_EQ(events.size(), obs::kFlightCapacity);
  // Oldest surviving event is the one right after the overwritten prefix.
  EXPECT_EQ(events.front().value, extra);
  EXPECT_EQ(events.back().value, obs::kFlightCapacity + extra - 1);
}

TEST_F(LiveTelemetryTest, FlightDumpWritesSchemaAndEvents) {
  obs::flight_record(obs::FlightKind::kFault, "session_hard_failure", 1, 4);
  obs::flight_record(obs::FlightKind::kEviction, "pool.eviction", 1, 4);
  const std::string path = temp_path("flight_dump_test.jsonl");
  ASSERT_TRUE(obs::dump_flight_record_file(path));
  const std::string text = slurp(path);
  EXPECT_NE(text.find("rpol.flight.v1"), std::string::npos);
  EXPECT_NE(text.find("session_hard_failure"), std::string::npos);
  EXPECT_NE(text.find("\"eviction\""), std::string::npos);
  // One meta line plus one line per event.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            3u);
  std::remove(path.c_str());
}

TEST_F(LiveTelemetryTest, DumpFlightRecordHonorsEnvAndGate) {
  const std::string path = temp_path("flight_env_test.jsonl");
  ::setenv("RPOL_FLIGHT_FILE", path.c_str(), 1);
  obs::flight_record(obs::FlightKind::kMark, "breadcrumb");
  EXPECT_EQ(obs::dump_flight_record(), path);
  EXPECT_NE(slurp(path).find("breadcrumb"), std::string::npos);

  obs::set_live_enabled(false);
  EXPECT_EQ(obs::dump_flight_record(), "");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Alert engine: deterministic rules over tick sequences (no threads, no
// clocks — the engine sees only what the tick carries).

obs::LiveTick verdict_tick(std::uint64_t accepts, std::uint64_t rejects) {
  obs::LiveTick tick;
  tick.accepts_delta = accepts;
  tick.rejects_delta = rejects;
  return tick;
}

TEST(AlertEngineTest, RejectRateDriftFiresAgainstQuietBaseline) {
  obs::AlertEngine engine;
  const std::vector<obs::Alert> alerts = engine.evaluate(verdict_tick(1, 9));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "reject_rate_drift");
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kCrit);
  EXPECT_DOUBLE_EQ(alerts[0].value, 0.9);
  EXPECT_DOUBLE_EQ(alerts[0].baseline, 0.0);
  EXPECT_EQ(engine.alerts_emitted(), 1u);
}

TEST(AlertEngineTest, RejectRateDriftRequiresMinVerdicts) {
  obs::AlertEngine engine;
  // Two verdicts < drift_min_verdicts (3): even a 100% reject window is too
  // small to judge.
  EXPECT_TRUE(engine.evaluate(verdict_tick(0, 2)).empty());
}

TEST(AlertEngineTest, RejectRateBaselineAdaptsAfterComparison) {
  obs::AlertEngine engine;
  // A steady 90% reject rate: the first windows drift hard against the
  // quiet baseline, then the EWMA absorbs the new normal and the rule goes
  // silent — drift alerts flag CHANGE, not steady state.
  bool saw_crit = false;
  bool went_silent = false;
  for (int i = 0; i < 8; ++i) {
    const std::vector<obs::Alert> alerts = engine.evaluate(verdict_tick(1, 9));
    if (!alerts.empty() && alerts[0].severity == obs::AlertSeverity::kCrit) {
      saw_crit = true;
    }
    if (alerts.empty()) {
      went_silent = true;
      break;
    }
  }
  EXPECT_TRUE(saw_crit);
  EXPECT_TRUE(went_silent);
}

TEST(AlertEngineTest, LatencyBurnSeedsBaselineThenFires) {
  obs::AlertEngine engine;
  obs::LiveTick tick;
  tick.latency_p95_ns = 1000;
  tick.latency_count_delta = 10;
  // First latency window seeds the baseline silently.
  EXPECT_TRUE(engine.evaluate(tick).empty());

  tick.latency_p95_ns = 2500;  // 2.5x the trailing p95
  std::vector<obs::Alert> alerts = engine.evaluate(tick);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "latency_burn");
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kWarn);

  tick.latency_p95_ns = 6000;  // >4x the (now 1450) baseline
  alerts = engine.evaluate(tick);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kCrit);
}

TEST(AlertEngineTest, LatencyBurnRequiresMinSamples) {
  obs::AlertEngine engine;
  obs::LiveTick seed;
  seed.latency_p95_ns = 1000;
  seed.latency_count_delta = 10;
  EXPECT_TRUE(engine.evaluate(seed).empty());

  obs::LiveTick thin;
  thin.latency_p95_ns = 100000;
  thin.latency_count_delta = 2;  // below burn_min_samples
  EXPECT_TRUE(engine.evaluate(thin).empty());
}

TEST(AlertEngineTest, RetransSpikeThresholds) {
  obs::AlertEngine engine;
  obs::LiveTick tick;
  tick.retrans_delta = 7;
  EXPECT_TRUE(engine.evaluate(tick).empty());
  tick.retrans_delta = 8;
  std::vector<obs::Alert> alerts = engine.evaluate(tick);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "retrans_spike");
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kWarn);
  tick.retrans_delta = 32;
  alerts = engine.evaluate(tick);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kCrit);
}

TEST(AlertEngineTest, RssSlopeFiresOnGrowthSincePreviousTick) {
  obs::AlertEngine engine;
  obs::LiveTick tick;
  tick.rss_bytes = 100ull << 20;
  EXPECT_TRUE(engine.evaluate(tick).empty());  // seeds the baseline

  tick.rss_bytes += 300ull << 20;  // +300 MiB in one tick
  std::vector<obs::Alert> alerts = engine.evaluate(tick);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "rss_slope");
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kWarn);

  tick.rss_bytes += 2048ull << 20;  // +2 GiB
  alerts = engine.evaluate(tick);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kCrit);

  // Flat RSS afterwards: silent.
  EXPECT_TRUE(engine.evaluate(tick).empty());
}

obs::LiveTick worker_tick(std::int64_t worker, double score, bool evicted) {
  obs::LiveTick tick;
  obs::LiveHealthRow row;
  row.worker = worker;
  row.score = score;
  row.evicted = evicted;
  tick.workers.push_back(row);
  return tick;
}

TEST(AlertEngineTest, HealthDropAndFreshEviction) {
  obs::AlertEngine engine;
  // First published rows: no previous row to compare against, no alert.
  EXPECT_TRUE(engine.evaluate(worker_tick(0, 100.0, false)).empty());

  std::vector<obs::Alert> alerts = engine.evaluate(worker_tick(0, 70.0, false));
  ASSERT_EQ(alerts.size(), 1u);  // fell 30 points
  EXPECT_EQ(alerts[0].rule, "health_drop");
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kWarn);
  EXPECT_EQ(alerts[0].worker, 0);

  alerts = engine.evaluate(worker_tick(0, 25.0, false));
  ASSERT_EQ(alerts.size(), 1u);  // fell 45 points
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kCrit);

  // Fresh eviction outranks the score-drop rule.
  alerts = engine.evaluate(worker_tick(0, 0.0, true));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "worker_evicted");
  EXPECT_EQ(alerts[0].severity, obs::AlertSeverity::kCrit);

  // Already-evicted rows do not re-fire.
  EXPECT_TRUE(engine.evaluate(worker_tick(0, 0.0, true)).empty());
}

// ---------------------------------------------------------------------------
// Health publication

TEST_F(LiveTelemetryTest, HealthPublicationCopiesRowsAndIsGated) {
  obs::HealthRegistry reg(2, 2);
  obs::HealthOutcome bad;
  bad.participated = true;
  bad.accepted = false;
  obs::HealthOutcome good;
  good.participated = true;
  good.accepted = true;
  reg.record(0, bad);
  reg.record(0, bad);  // second strike: evicted at threshold 2
  reg.record(1, good);

  obs::set_live_enabled(false);
  obs::live_publish_health(reg);
  EXPECT_TRUE(obs::live_health_rows().empty());

  obs::set_live_enabled(true);
  obs::live_publish_health(reg);
  const std::vector<obs::LiveHealthRow> rows = obs::live_health_rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].evicted);
  EXPECT_EQ(rows[0].score, 0.0);
  EXPECT_FALSE(rows[1].evicted);
  EXPECT_EQ(rows[1].window_accepted, 1u);

  obs::live_reset_health();
  EXPECT_TRUE(obs::live_health_rows().empty());
}

// ---------------------------------------------------------------------------
// LiveFlusher -> rpol.live.v1 -> reader round trip

TEST_F(LiveTelemetryTest, FlusherStreamRoundTripsThroughReader) {
  // Fixed metric state before the flusher starts, so every tick sees the
  // same totals and the windowed deltas are deterministic.
  obs::count("verify.accept", 1);
  obs::count("verify.reject", 9);
  for (int i = 0; i < 10; ++i) {
    obs::observe("pool.session_latency_ns", 1000);
  }
  obs::HealthRegistry reg(2, 1);
  obs::HealthOutcome good;
  good.participated = true;
  good.accepted = true;
  reg.record(0, good);
  obs::live_publish_health(reg);

  const std::string path = temp_path("live_roundtrip_test.jsonl");
  obs::LiveFlusher::Options options;
  options.path = path;
  options.interval = std::chrono::hours(1);  // only explicit ticks matter
  options.window_capacity = 8;
  obs::LiveFlusher flusher(options);
  ASSERT_TRUE(flusher.ok());
  flusher.flush_now();
  flusher.stop();
  EXPECT_GE(flusher.snapshots_written(), 2u);
  EXPECT_GE(flusher.alerts_emitted(), 1u);

  // The file a stopped flusher leaves behind is fully valid: strict parse.
  const obs::LiveDoc doc = obs::load_live_file(path, /*strict=*/true);
  EXPECT_EQ(doc.schema, "rpol.live.v1");
  EXPECT_EQ(doc.window, 8u);
  EXPECT_FALSE(doc.truncated_tail);
  ASSERT_GE(doc.snapshots.size(), 2u);

  const obs::LiveSnapshot& last = doc.snapshots.back();
  const obs::LiveCounterRow* rejects = nullptr;
  for (const obs::LiveCounterRow& row : last.counters) {
    if (row.name == "verify.reject") rejects = &row;
  }
  ASSERT_NE(rejects, nullptr);
  EXPECT_EQ(rejects->total, 9u);
  // The window was seeded empty, so the whole run is one delta.
  EXPECT_EQ(rejects->delta, 9u);

  const obs::LiveHistogramRow* latency = nullptr;
  for (const obs::LiveHistogramRow& row : last.histograms) {
    if (row.name == "pool.session_latency_ns") latency = &row;
  }
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 10u);
  EXPECT_EQ(latency->delta, 10u);
  EXPECT_GT(latency->p95, 0u);

  ASSERT_EQ(last.workers.size(), 1u);
  EXPECT_EQ(last.workers[0].window_accepted, 1u);

  // 9 rejects of 10 verdicts against a quiet baseline: crit drift.
  bool drift_crit = false;
  for (const obs::LiveAlertRow& alert : doc.alerts) {
    if (alert.rule == "reject_rate_drift" && alert.severity == "crit") {
      drift_crit = true;
    }
  }
  EXPECT_TRUE(drift_crit);
  std::remove(path.c_str());
}

TEST_F(LiveTelemetryTest, FlusherReportsUnwritableSink) {
  obs::LiveFlusher::Options options;
  options.path = "/nonexistent-rpol-dir/live.jsonl";
  options.interval = std::chrono::hours(1);
  obs::LiveFlusher flusher(options);
  EXPECT_FALSE(flusher.ok());
  flusher.flush_now();  // must not crash
  flusher.stop();
  EXPECT_EQ(flusher.snapshots_written(), 0u);
}

TEST_F(LiveTelemetryTest, MaybeStartLiveHonorsGateAndEnv) {
  const std::string path = temp_path("live_maybe_test.jsonl");
  ::setenv("RPOL_LIVE_FILE", path.c_str(), 1);
  ::setenv("RPOL_LIVE_INTERVAL_MS", "3600000", 1);
  std::unique_ptr<obs::LiveFlusher> flusher =
      obs::maybe_start_live("fallback.jsonl");
  ASSERT_NE(flusher, nullptr);
  EXPECT_EQ(flusher->path(), path);
  flusher->stop();
  EXPECT_EQ(obs::load_live_file(path).schema, "rpol.live.v1");
  std::remove(path.c_str());

  obs::set_live_enabled(false);
  EXPECT_EQ(obs::maybe_start_live("fallback.jsonl"), nullptr);
}

TEST_F(LiveTelemetryTest, EnvKnobsClampAndDefault) {
  ::unsetenv("RPOL_LIVE_INTERVAL_MS");
  EXPECT_EQ(obs::live_interval_ms(), 1000u);
  ::setenv("RPOL_LIVE_INTERVAL_MS", "250", 1);
  EXPECT_EQ(obs::live_interval_ms(), 250u);
  ::setenv("RPOL_LIVE_INTERVAL_MS", "0", 1);
  EXPECT_EQ(obs::live_interval_ms(), 1u);  // clamped

  ::unsetenv("RPOL_LIVE_FILE");
  EXPECT_EQ(obs::live_file_path("d.jsonl"), "d.jsonl");
  ::setenv("RPOL_LIVE_FILE", "x.jsonl", 1);
  EXPECT_EQ(obs::live_file_path("d.jsonl"), "x.jsonl");
}

// ---------------------------------------------------------------------------
// Reader damage tolerance (satellite: truncated-tail handling)

TEST(LiveReadTest, TolerantParseFlagsTruncatedTail) {
  const std::string meta =
      "{\"type\":\"meta\",\"schema\":\"rpol.live.v1\",\"interval_ms\":250,"
      "\"window\":8,\"wall_anchor_unix_ns\":0}";
  const std::string snap =
      "{\"type\":\"snapshot\",\"seq\":1,\"t_ns\":100,\"counters\":"
      "{\"verify.accept\":{\"total\":5,\"delta\":5,\"rate\":5}},"
      "\"rss_bytes\":0}";
  const std::string partial = "{\"type\":\"snapshot\",\"seq\":2,\"t_ns\":";
  const std::string text = meta + "\n" + snap + "\n" + partial;  // no newline
  const std::size_t tail_offset = meta.size() + 1 + snap.size() + 1;

  const obs::LiveDoc doc = obs::parse_live_jsonl(text);
  EXPECT_EQ(doc.schema, "rpol.live.v1");
  ASSERT_EQ(doc.snapshots.size(), 1u);
  EXPECT_EQ(doc.snapshots[0].counters.at(0).total, 5u);
  EXPECT_TRUE(doc.truncated_tail);
  EXPECT_EQ(doc.truncated_tail_offset, tail_offset);
  EXPECT_EQ(doc.skipped_lines, 0u);

  // Strict mode names the byte offset instead of tolerating the cut.
  try {
    obs::parse_live_jsonl(text, /*strict=*/true);
    FAIL() << "strict parse accepted a truncated tail";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset " +
                                         std::to_string(tail_offset)),
              std::string::npos)
        << e.what();
  }
}

TEST(LiveReadTest, InteriorDamageIsSkippedOrStrict) {
  const std::string text =
      "{\"type\":\"meta\",\"schema\":\"rpol.live.v1\",\"interval_ms\":250,"
      "\"window\":8}\n"
      "{broken json\n"
      "{\"type\":\"alert\",\"schema\":\"rpol.alert.v1\",\"seq\":3,\"t_ns\":9,"
      "\"rule\":\"retrans_spike\",\"severity\":\"warn\",\"value\":9,"
      "\"baseline\":0,\"threshold\":8,\"message\":\"m\"}\n";

  const obs::LiveDoc doc = obs::parse_live_jsonl(text);
  EXPECT_EQ(doc.skipped_lines, 1u);
  ASSERT_EQ(doc.parse_errors.size(), 1u);
  EXPECT_FALSE(doc.truncated_tail);
  ASSERT_EQ(doc.alerts.size(), 1u);  // damage did not stop the parse
  EXPECT_EQ(doc.alerts[0].rule, "retrans_spike");
  EXPECT_EQ(doc.alerts[0].severity, "warn");
  EXPECT_EQ(doc.alerts[0].seq, 3u);

  EXPECT_THROW(obs::parse_live_jsonl(text, /*strict=*/true),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Reset-vs-reader seqlock (satellite: obs::reset hardening)

TEST(ResetSeqlockTest, BarrierMakesReadsUnstable) {
  EXPECT_EQ(obs::reset_generation() & 1, 0u);
  obs::detail::reset_barrier_begin();
  EXPECT_EQ(obs::reset_generation() & 1, 1u);
  // A bounded reader must give up rather than return a torn sample.
  EXPECT_FALSE(obs::stable_telemetry_read([] {}, /*max_retries=*/4));
  obs::detail::reset_barrier_end();
  EXPECT_EQ(obs::reset_generation() & 1, 0u);
  EXPECT_TRUE(obs::stable_telemetry_read([] {}, /*max_retries=*/4));
}

TEST(ResetSeqlockTest, NestedBarriersKeepGenerationOddUntilOutermost) {
  obs::detail::reset_barrier_begin();
  obs::detail::reset_barrier_begin();  // nested (reset_all calls mem_reset)
  EXPECT_EQ(obs::reset_generation() & 1, 1u);
  obs::detail::reset_barrier_end();
  EXPECT_EQ(obs::reset_generation() & 1, 1u);  // still inside the outer reset
  obs::detail::reset_barrier_end();
  EXPECT_EQ(obs::reset_generation() & 1, 0u);
}

// Hammer: a writer thread incrementing a counter, a resetter thread calling
// obs::reset_all() in a loop, and a reader taking stable multi-read samples.
// The sound invariant is SAME-COUNTER MONOTONICITY: between resets a counter
// only grows, and a stable section excludes resets entirely, so two reads of
// one counter inside a single stable section must be non-decreasing. (A
// cross-counter ordering invariant would be unsound here: a writer pair
// split across a reset legitimately leaves the later counter ahead.) If the
// barrier failed to hold the generation odd for the whole reset, a drain
// landing between the two reads would show up as a decrease.
TEST(ResetSeqlockTest, StableReadsStayMonotoneUnderResetHammer) {
  obs::Counter& counter = obs::counter("hammer.mono");
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) counter.add(1);
  });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      obs::reset_all();
      std::this_thread::yield();
    }
  });

  std::size_t stable_reads = 0;
  std::size_t violations = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    std::uint64_t first = 0;
    std::uint64_t second = 0;
    const bool ok = obs::stable_telemetry_read([&] {
      first = counter.value();
      // A multi-subsystem read in the middle widens the race window the
      // seqlock must cover (this is what the live flusher does per tick).
      (void)obs::Registry::instance().counter_values();
      (void)obs::mem_stats_all();
      second = counter.value();
    });
    if (!ok) continue;  // reset hammer won this round; sample skipped
    ++stable_reads;
    if (second < first) ++violations;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  resetter.join();

  EXPECT_GT(stable_reads, 0u);
  EXPECT_EQ(violations, 0u);
  obs::reset_all();
}

// ---------------------------------------------------------------------------
// Byzantine end to end: a pool with replay adversaries, live telemetry on.
// The acceptance path from the issue: the reject-rate alert fires and the
// evictions leave a flight dump — all without the flusher ever being part
// of the decision (the determinism test covers that half).

TEST_F(LiveTelemetryTest, ByzantinePoolFiresAlertAndDumpsFlightRecord) {
  const std::string flight_path = temp_path("live_byzantine_flight.jsonl");
  const std::string live_path = temp_path("live_byzantine_stream.jsonl");
  std::remove(flight_path.c_str());
  ::setenv("RPOL_FLIGHT_FILE", flight_path.c_str(), 1);

  const testing::TinyTask task = testing::TinyTask::make(61, 10, 3);
  const data::TrainTestSplit split =
      data::train_test_split(task.dataset, 0.25, 17);
  core::PoolConfig cfg;
  cfg.hp = task.hp;
  cfg.epochs = 3;
  cfg.samples_q = 3;
  cfg.seed = 71;
  cfg.eviction_threshold = 2;
  std::vector<core::WorkerSpec> workers;
  const auto devices = sim::all_devices();
  // Two replay adversaries of four: the reject share (4 of 10 verdicts over
  // the run) sits well past the 0.25 drift-warn margin.
  for (std::size_t w = 0; w < 4; ++w) {
    core::WorkerSpec spec;
    spec.policy = w < 2 ? std::unique_ptr<core::WorkerPolicy>(
                              std::make_unique<core::ReplayPolicy>())
                        : std::unique_ptr<core::WorkerPolicy>(
                              std::make_unique<core::HonestPolicy>());
    spec.device = devices[w % devices.size()];
    workers.push_back(std::move(spec));
  }
  core::MiningPool pool(cfg, task.factory, task.dataset, split.test,
                        std::move(workers));
  pool.run();
  ASSERT_TRUE(pool.health().evicted(0));
  ASSERT_TRUE(pool.health().evicted(1));

  // The evictions during the run dumped the flight ring to RPOL_FLIGHT_FILE.
  const std::string flight_text = slurp(flight_path);
  EXPECT_NE(flight_text.find("rpol.flight.v1"), std::string::npos);
  EXPECT_NE(flight_text.find("pool.eviction"), std::string::npos);
  EXPECT_NE(flight_text.find("verify.reject"), std::string::npos);

  // Flush the accumulated run through a flusher: started after the run so
  // every tick sees the same final totals (no racing background sample) and
  // the first windowed delta spans the whole run.
  obs::LiveFlusher::Options options;
  options.path = live_path;
  options.interval = std::chrono::hours(1);
  obs::LiveFlusher flusher(options);
  ASSERT_TRUE(flusher.ok());
  flusher.flush_now();
  flusher.stop();

  const obs::LiveDoc doc = obs::load_live_file(live_path, /*strict=*/true);
  ASSERT_GE(doc.snapshots.size(), 2u);
  const obs::LiveSnapshot& last = doc.snapshots.back();

  const obs::LiveCounterRow* rejects = nullptr;
  for (const obs::LiveCounterRow& row : last.counters) {
    if (row.name == "verify.reject") rejects = &row;
  }
  ASSERT_NE(rejects, nullptr);
  EXPECT_EQ(rejects->total, 4u);  // 2 adversaries x 2 strikes each

  // The pool published health rows at its safe points: the final snapshot
  // carries the evicted adversaries.
  ASSERT_EQ(last.workers.size(), 4u);
  EXPECT_TRUE(last.workers[0].evicted);
  EXPECT_TRUE(last.workers[1].evicted);
  EXPECT_FALSE(last.workers[2].evicted);

  bool drift_alert = false;
  for (const obs::LiveAlertRow& alert : doc.alerts) {
    if (alert.rule == "reject_rate_drift") drift_alert = true;
  }
  EXPECT_TRUE(drift_alert);

  std::remove(flight_path.c_str());
  std::remove(live_path.c_str());
}

}  // namespace
}  // namespace rpol
