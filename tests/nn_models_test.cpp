// Tests for model factories, state-vector round trips, and optimizers.

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "tensor/rng.h"

namespace rpol::nn {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.image_size = 8;
  cfg.width = 2;
  cfg.num_classes = 4;
  cfg.seed = 77;
  return cfg;
}

TEST(Models, FactoryIsDeterministic) {
  Model a = make_mini_resnet18(tiny_config(), 1);
  Model b = make_mini_resnet18(tiny_config(), 1);
  EXPECT_EQ(a.state_vector(), b.state_vector());
}

TEST(Models, DifferentSeedsGiveDifferentWeights) {
  ModelConfig cfg = tiny_config();
  Model a = make_mini_resnet18(cfg, 1);
  cfg.seed = 78;
  Model b = make_mini_resnet18(cfg, 1);
  EXPECT_NE(a.state_vector(), b.state_vector());
}

TEST(Models, ResNet18ForwardShape) {
  Model m = make_mini_resnet18(tiny_config(), 1);
  Rng rng(1);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor y = m.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 4}));
  EXPECT_EQ(m.output_shape({2, 3, 8, 8}), (Shape{2, 4}));
}

TEST(Models, ResNet50ForwardShape) {
  Model m = make_mini_resnet50(tiny_config(), {1, 1, 1, 1});
  Rng rng(2);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(m.forward(x, true).shape(), (Shape{2, 4}));
}

TEST(Models, Vgg16ForwardShape) {
  Model m = make_mini_vgg16(tiny_config());
  Rng rng(3);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(m.forward(x, true).shape(), (Shape{2, 4}));
}

TEST(Models, MlpForwardShape) {
  Model m = make_mlp(16, {8, 8}, 5, 7);
  Rng rng(4);
  const Tensor x = Tensor::randn({3, 16}, rng);
  EXPECT_EQ(m.forward(x, true).shape(), (Shape{3, 5}));
}

TEST(Models, Vgg16TrainingReducesLoss) {
  // End-to-end training through the MaxPool/Flatten path (not exercised by
  // the ResNet-family tests).
  ModelConfig cfg = tiny_config();
  Model m = make_mini_vgg16(cfg);
  Rng rng(50);
  const Tensor x = Tensor::randn({8, 3, 8, 8}, rng, 0.5F);
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 8; ++i) labels.push_back(i % 4);
  SoftmaxCrossEntropy loss;
  // Adam: the plain VGG stack (no BatchNorm) needs adaptive steps to make
  // progress from He init on tiny 8x8 inputs.
  auto opt = make_optimizer(OptimizerKind::kAdam, m.params(), 0.003F);
  float first = 0.0F, last = 0.0F;
  for (int step = 0; step < 80; ++step) {
    opt->zero_grad();
    const Tensor logits = m.forward(x, true);
    const float l = loss.forward(logits, labels);
    if (step == 0) first = l;
    last = l;
    m.backward(loss.backward());
    opt->step();
  }
  EXPECT_LT(last, 0.5F * first);
}

TEST(Models, ResNet50TrainingReducesLoss) {
  ModelConfig cfg = tiny_config();
  Model m = make_mini_resnet50(cfg, {1, 1, 1, 1});
  Rng rng(51);
  const Tensor x = Tensor::randn({8, 3, 8, 8}, rng, 0.5F);
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 8; ++i) labels.push_back(i % 4);
  SoftmaxCrossEntropy loss;
  auto opt = make_optimizer(OptimizerKind::kSgdMomentum, m.params(), 0.01F);
  float first = 0.0F, last = 0.0F;
  for (int step = 0; step < 30; ++step) {
    opt->zero_grad();
    const Tensor logits = m.forward(x, true);
    const float l = loss.forward(logits, labels);
    if (step == 0) first = l;
    last = l;
    m.backward(loss.backward());
    opt->step();
  }
  EXPECT_LT(last, 0.7F * first);
}

TEST(Models, StateVectorRoundTrip) {
  Model m = make_mini_resnet18(tiny_config(), 1);
  const auto state = m.state_vector();
  EXPECT_EQ(static_cast<std::int64_t>(state.size()), m.num_parameters());

  Model n = make_mini_resnet18(tiny_config(), 1);
  // Scramble, then restore.
  auto scrambled = state;
  for (auto& v : scrambled) v += 1.0F;
  n.load_state_vector(scrambled);
  EXPECT_NE(n.state_vector(), state);
  n.load_state_vector(state);
  EXPECT_EQ(n.state_vector(), state);
}

TEST(Models, LoadStateWrongSizeThrows) {
  Model m = make_mlp(4, {4}, 2, 1);
  std::vector<float> too_short(3, 0.0F);
  EXPECT_THROW(m.load_state_vector(too_short), std::invalid_argument);
  std::vector<float> too_long(static_cast<std::size_t>(m.num_parameters()) + 1);
  EXPECT_THROW(m.load_state_vector(too_long), std::invalid_argument);
}

TEST(Models, TrainableSubsetExcludesBuffers) {
  Model m = make_mini_resnet18(tiny_config(), 1);
  EXPECT_LT(m.num_trainable_parameters(), m.num_parameters());
  for (Param* p : m.trainable_params()) EXPECT_TRUE(p->trainable);
}

// ---------------------------------------------------------------------------
// Optimizers

struct OptimizerCase {
  OptimizerKind kind;
  float lr;
};

class OptimizerSweep : public ::testing::TestWithParam<OptimizerCase> {};

TEST_P(OptimizerSweep, ReducesQuadraticLoss) {
  // Minimize f(w) = 0.5 ||w||^2 whose gradient is w itself; every optimizer
  // must shrink the norm over iterations.
  Param p("w", Tensor({8}, {4, -3, 2, -1, 0.5F, -0.25F, 3, -2}));
  const double initial_norm = p.value.l2_norm();
  auto opt = make_optimizer(GetParam().kind, {&p}, GetParam().lr);
  for (int i = 0; i < 200; ++i) {
    opt->zero_grad();
    p.grad = p.value;  // dL/dw = w
    opt->step();
  }
  EXPECT_LT(p.value.l2_norm(), 0.25 * initial_norm)
      << optimizer_kind_name(GetParam().kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, OptimizerSweep,
    ::testing::Values(OptimizerCase{OptimizerKind::kSgd, 0.05F},
                      OptimizerCase{OptimizerKind::kSgdMomentum, 0.02F},
                      OptimizerCase{OptimizerKind::kRmsProp, 0.01F},
                      OptimizerCase{OptimizerKind::kAdam, 0.05F}),
    [](const ::testing::TestParamInfo<OptimizerCase>& info) {
      return optimizer_kind_name(info.param.kind);
    });

TEST(Optimizer, SgdMatchesHandComputation) {
  Param p("w", Tensor({2}, {1.0F, 2.0F}));
  Sgd opt({&p}, 0.1F);
  p.grad = Tensor({2}, {10.0F, 20.0F});
  opt.step();
  EXPECT_NEAR(p.value.at(0), 0.0F, 1e-6F);
  EXPECT_NEAR(p.value.at(1), 0.0F, 1e-6F);
}

TEST(Optimizer, MomentumAccumulates) {
  Param p("w", Tensor({1}, {0.0F}));
  SgdMomentum opt({&p}, 1.0F, 0.5F);
  p.grad = Tensor({1}, {1.0F});
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(p.value.at(0), -1.0F, 1e-6F);
  p.grad = Tensor({1}, {1.0F});
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value.at(0), -2.5F, 1e-6F);
}

TEST(Optimizer, SkipsNonTrainableParams) {
  Param w("w", Tensor({1}, {1.0F}), /*train=*/true);
  Param buf("buf", Tensor({1}, {1.0F}), /*train=*/false);
  Sgd opt({&w, &buf}, 0.5F);
  w.grad = Tensor({1}, {1.0F});
  buf.grad = Tensor({1}, {1.0F});
  opt.step();
  EXPECT_NEAR(w.value.at(0), 0.5F, 1e-6F);
  EXPECT_EQ(buf.value.at(0), 1.0F);
}

TEST(Optimizer, StateVectorRoundTripPreservesTrajectory) {
  // Two momentum optimizers, one reloaded mid-run from the other's state,
  // must continue on identical trajectories — the property checkpointed
  // verification re-execution depends on.
  Param p1("w", Tensor({4}, {1, 2, 3, 4}));
  Param p2("w", Tensor({4}, {1, 2, 3, 4}));
  SgdMomentum a({&p1}, 0.1F, 0.9F);
  SgdMomentum b({&p2}, 0.1F, 0.9F);
  for (int i = 0; i < 5; ++i) {
    p1.grad = p1.value;
    a.step();
  }
  // Transplant a's full state into b.
  p2.value = p1.value;
  b.load_state_vector(a.state_vector());
  for (int i = 0; i < 5; ++i) {
    p1.grad = p1.value;
    a.step();
    p2.grad = p2.value;
    b.step();
  }
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(p1.value.at(i), p2.value.at(i));
  }
}

TEST(Optimizer, AdamStateIncludesBothBanks) {
  Param p("w", Tensor({3}));
  Adam adam({&p}, 0.01F);
  // step counter + m slots + v slots.
  EXPECT_EQ(adam.state_vector().size(), 1u + 3u + 3u);
}

TEST(Optimizer, LoadBadStateThrows) {
  Param p("w", Tensor({3}));
  SgdMomentum opt({&p}, 0.1F);
  EXPECT_THROW(opt.load_state_vector({}), std::invalid_argument);
  EXPECT_THROW(opt.load_state_vector({0.0F, 1.0F}), std::invalid_argument);
  std::vector<float> too_long(10, 0.0F);
  EXPECT_THROW(opt.load_state_vector(too_long), std::invalid_argument);
}

TEST(Optimizer, ZeroGradClearsAllParams) {
  Param w("w", Tensor({2}));
  Param buf("b", Tensor({2}), false);
  w.grad = Tensor({2}, {1, 1});
  buf.grad = Tensor({2}, {1, 1});
  Sgd opt({&w, &buf}, 0.1F);
  opt.zero_grad();
  EXPECT_EQ(w.grad.at(0), 0.0F);
  EXPECT_EQ(buf.grad.at(1), 0.0F);
}

}  // namespace
}  // namespace rpol::nn
