// LSH tests: the analytic collision-probability model is validated against
// Monte-Carlo measurements of the actual hash family; parameter tuning must
// hit the paper's Pr(alpha) >= 95% / Pr(beta) <= 5% working point; and the
// match-probability surface must be monotone in c, k, and l (property
// sweeps, Fig. 1's qualitative content).

#include <gtest/gtest.h>

#include <cmath>

#include "lsh/pstable.h"
#include "lsh/tuning.h"
#include "tensor/rng.h"

namespace rpol::lsh {
namespace {

// Empirical single-function collision rate for distance c and width r.
double empirical_collision_rate(double c, double r, int trials,
                                std::uint64_t seed) {
  // One-dimensional projections suffice: collisions depend only on the
  // projected difference, which is N(0, c^2) for any dimension.
  Rng rng(seed);
  int collisions = 0;
  for (int t = 0; t < trials; ++t) {
    const double x = 10.0 * rng.next_double();
    const double y = x + c * rng.next_normal();
    const double b = r * rng.next_double();
    if (std::floor((x + b) / r) == std::floor((y + b) / r)) ++collisions;
  }
  return static_cast<double>(collisions) / trials;
}

TEST(Probability, NormCdfReferencePoints) {
  EXPECT_NEAR(norm_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(norm_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(norm_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(Probability, CollisionProbabilityLimits) {
  EXPECT_DOUBLE_EQ(collision_probability(0.0, 1.0), 1.0);
  EXPECT_LT(collision_probability(100.0, 1.0), 0.02);
  EXPECT_GT(collision_probability(0.01, 1.0), 0.98);
  EXPECT_THROW(collision_probability(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(collision_probability(-1.0, 1.0), std::invalid_argument);
}

class CollisionMonteCarlo
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CollisionMonteCarlo, AnalyticMatchesEmpirical) {
  const auto [c, r] = GetParam();
  const double analytic = collision_probability(c, r);
  const double empirical = empirical_collision_rate(c, r, 40000, 1234);
  EXPECT_NEAR(analytic, empirical, 0.015) << "c=" << c << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CollisionMonteCarlo,
    ::testing::Values(std::pair{0.5, 1.0}, std::pair{1.0, 1.0},
                      std::pair{2.0, 1.0}, std::pair{4.0, 1.0},
                      std::pair{1.0, 4.0}, std::pair{0.25, 2.0},
                      std::pair{3.0, 2.0}));

TEST(Probability, MatchProbabilityMonotoneDecreasingInDistance) {
  const LshParams params{1.0, 4, 4};
  double prev = 1.1;
  for (double c = 0.1; c < 10.0; c *= 1.5) {
    const double p = match_probability(c, params);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

class MatchMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(MatchMonotonicity, IncreasingInLDecreasingInK) {
  const double c = GetParam();
  for (int k = 1; k <= 6; ++k) {
    // More groups (OR) can only raise the match probability.
    double prev_l = -1.0;
    for (int l = 1; l <= 6; ++l) {
      const double p = match_probability(c, {1.0, k, l});
      EXPECT_GE(p + 1e-12, prev_l) << "k=" << k << " l=" << l;
      prev_l = p;
    }
  }
  for (int l = 1; l <= 6; ++l) {
    // More functions per group (AND) can only lower it.
    double prev_k = 2.0;
    for (int k = 1; k <= 6; ++k) {
      const double p = match_probability(c, {1.0, k, l});
      EXPECT_LE(p - 1e-12, prev_k) << "k=" << k << " l=" << l;
      prev_k = p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, MatchMonotonicity,
                         ::testing::Values(0.2, 0.5, 1.0, 2.0, 5.0));

TEST(Probability, MatchProbabilityFormula) {
  // Pr = 1 - (1 - p^k)^l must reduce to p for k = l = 1.
  const double p1 = collision_probability(0.7, 1.3);
  EXPECT_NEAR(match_probability(0.7, {1.3, 1, 1}), p1, 1e-12);
}

TEST(Probability, FnrFprIntegralsBehave) {
  // A tight error distribution near 0 with a tolerant family => tiny FNR.
  const LshParams params = optimize_lsh(0.1, 0.5, 16).params;
  const double fnr = expected_fnr(normal_pdf(0.08, 0.01), 0.5, params);
  EXPECT_LT(fnr, 0.10);
  // Spoof distances far beyond beta => tiny FPR.
  const double fpr = expected_fpr(normal_pdf(2.0, 0.1), 0.5, 4.0, params);
  EXPECT_LT(fpr, 0.10);
  EXPECT_THROW(expected_fnr(normal_pdf(0, 1), 0.0, params), std::invalid_argument);
  EXPECT_THROW(expected_fpr(normal_pdf(0, 1), 1.0, 1.0, params),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Tuning

TEST(Tuning, NearPaperWorkingPointAtK16) {
  // Sec. VII-D uses beta = 5 alpha with K_lsh = 16 and quotes the working
  // point Pr(alpha) = 95% / Pr(beta) = 5%. Under the strict k*l <= K budget
  // of Eq. (6) the exactly-95/5 point is infeasible at K = 16 (the Pareto
  // frontier passes through ~92.9% / 6.3%); the optimizer must land on that
  // frontier for every scale of alpha.
  for (const double alpha : {0.01, 0.1, 1.0, 10.0}) {
    const TuningResult result = optimize_lsh(alpha, 5.0 * alpha, 16);
    EXPECT_GE(result.pr_alpha, 0.92) << "alpha=" << alpha;
    EXPECT_LE(result.pr_beta, 0.07) << "alpha=" << alpha;
    EXPECT_LE(result.params.k * result.params.l, 16);
  }
}

TEST(Tuning, HitsPaperWorkingPointAtK24) {
  // A budget of 24 hash functions reaches the paper's quoted guarantees.
  for (const double alpha : {0.01, 1.0, 10.0}) {
    const TuningResult result = optimize_lsh(alpha, 5.0 * alpha, 24);
    EXPECT_GE(result.pr_alpha, 0.95) << "alpha=" << alpha;
    EXPECT_LE(result.pr_beta, 0.05) << "alpha=" << alpha;
  }
}

TEST(Tuning, ScaleInvariance) {
  // The optimum is scale-free: (alpha, beta) and (10 alpha, 10 beta) give
  // the same k, l and probabilities with r scaled accordingly.
  const TuningResult a = optimize_lsh(0.1, 0.5, 16);
  const TuningResult b = optimize_lsh(1.0, 5.0, 16);
  EXPECT_EQ(a.params.k, b.params.k);
  EXPECT_EQ(a.params.l, b.params.l);
  EXPECT_NEAR(a.pr_alpha, b.pr_alpha, 0.02);
  EXPECT_NEAR(a.pr_beta, b.pr_beta, 0.02);
}

TEST(Tuning, RespectsBudget) {
  for (const int budget : {1, 2, 4, 8, 32}) {
    const TuningResult result = optimize_lsh(1.0, 5.0, budget);
    EXPECT_LE(result.params.k * result.params.l, budget);
    EXPECT_GE(result.params.k, 1);
    EXPECT_GE(result.params.l, 1);
  }
}

TEST(Tuning, LargerBudgetNeverHurts) {
  const TuningResult small = optimize_lsh(1.0, 3.0, 4);
  const TuningResult large = optimize_lsh(1.0, 3.0, 64);
  EXPECT_LE(large.objective, small.objective + 1e-12);
}

TEST(Tuning, TighterSeparationIsHarder) {
  const TuningResult tight = optimize_lsh(1.0, 1.5, 16);
  const TuningResult wide = optimize_lsh(1.0, 10.0, 16);
  EXPECT_LT(wide.objective, tight.objective);
}

TEST(Tuning, InvalidInputsThrow) {
  EXPECT_THROW(optimize_lsh(0.0, 1.0, 16), std::invalid_argument);
  EXPECT_THROW(optimize_lsh(2.0, 1.0, 16), std::invalid_argument);
  EXPECT_THROW(optimize_lsh(1.0, 2.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PStableLsh (the actual hash family)

std::vector<float> random_vec(std::int64_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(dim));
  rng.fill_normal(v, 0.0F, 1.0F);
  return v;
}

std::vector<float> displaced(const std::vector<float>& v, double distance,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> direction(v.size());
  rng.fill_normal(direction, 0.0F, 1.0F);
  double norm = 0.0;
  for (const float d : direction) norm += static_cast<double>(d) * d;
  norm = std::sqrt(norm);
  std::vector<float> out = v;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] += static_cast<float>(distance * direction[i] / norm);
  }
  return out;
}

TEST(PStableLsh, DeterministicForConfig) {
  const LshConfig cfg{{1.0, 3, 4}, 64, 99};
  PStableLsh a(cfg), b(cfg);
  const auto v = random_vec(64, 5);
  EXPECT_TRUE(lsh_match(a.hash(v), b.hash(v)));
  EXPECT_EQ(a.buckets(v), b.buckets(v));
}

TEST(PStableLsh, DifferentSeedsDifferentFamilies) {
  LshConfig cfg{{1.0, 3, 4}, 64, 99};
  PStableLsh a(cfg);
  cfg.seed = 100;
  PStableLsh b(cfg);
  const auto v = random_vec(64, 5);
  EXPECT_NE(a.buckets(v), b.buckets(v));
}

TEST(PStableLsh, IdenticalVectorsAlwaysMatch) {
  const LshConfig cfg{{0.5, 4, 4}, 128, 7};
  PStableLsh lsh(cfg);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto v = random_vec(128, s);
    EXPECT_TRUE(lsh_match(lsh.hash(v), lsh.hash(v)));
  }
}

TEST(PStableLsh, DimensionMismatchThrows) {
  const LshConfig cfg{{1.0, 2, 2}, 32, 1};
  PStableLsh lsh(cfg);
  EXPECT_THROW(lsh.hash(random_vec(16, 1)), std::invalid_argument);
}

TEST(PStableLsh, InvalidConfigThrows) {
  EXPECT_THROW(PStableLsh({{1.0, 0, 2}, 32, 1}), std::invalid_argument);
  EXPECT_THROW(PStableLsh({{0.0, 2, 2}, 32, 1}), std::invalid_argument);
  EXPECT_THROW(PStableLsh({{1.0, 2, 2}, 0, 1}), std::invalid_argument);
}

TEST(PStableLsh, EmpiricalMatchRateTracksAnalytic) {
  // Tuned for (alpha=0.5, beta=2.5): vectors at alpha should almost always
  // match; vectors at beta almost never. This is the end-to-end fuzzy
  // matching property RPoLv2 verification relies on.
  const TuningResult tuned = optimize_lsh(0.5, 2.5, 16);
  const LshConfig cfg{tuned.params, 256, 11};

  int near_matches = 0, far_matches = 0;
  constexpr int kTrials = 120;
  for (int t = 0; t < kTrials; ++t) {
    // A fresh family per trial: match probability is over the random family.
    LshConfig trial_cfg = cfg;
    trial_cfg.seed = static_cast<std::uint64_t>(1000 + t);
    PStableLsh lsh(trial_cfg);
    const auto base = random_vec(256, static_cast<std::uint64_t>(t));
    const auto near = displaced(base, 0.5, static_cast<std::uint64_t>(t) + 1);
    const auto far = displaced(base, 2.5, static_cast<std::uint64_t>(t) + 2);
    near_matches += lsh_match(lsh.hash(base), lsh.hash(near)) ? 1 : 0;
    far_matches += lsh_match(lsh.hash(base), lsh.hash(far)) ? 1 : 0;
  }
  EXPECT_GE(near_matches, static_cast<int>(0.85 * kTrials));
  EXPECT_LE(far_matches, static_cast<int>(0.15 * kTrials));
}

TEST(PStableLsh, DigestSerializationStable) {
  const LshConfig cfg{{1.0, 2, 3}, 16, 3};
  PStableLsh lsh(cfg);
  const auto v = random_vec(16, 2);
  const LshDigest d = lsh.hash(v);
  EXPECT_EQ(d.groups.size(), 3u);
  EXPECT_EQ(serialize_lsh_digest(d), serialize_lsh_digest(lsh.hash(v)));
}

TEST(PStableLsh, MatchRequiresSameGroupCount) {
  const LshConfig a_cfg{{1.0, 2, 2}, 16, 3};
  const LshConfig b_cfg{{1.0, 2, 3}, 16, 3};
  PStableLsh a(a_cfg), b(b_cfg);
  const auto v = random_vec(16, 4);
  EXPECT_FALSE(lsh_match(a.hash(v), b.hash(v)));
}

}  // namespace
}  // namespace rpol::lsh
