// Benchmark-registry coverage (src/obs/benchreg.*): rpol.bench.v1
// serialization round trips, overlay merge semantics, and the bench-diff
// tolerance gate — including the acceptance-criteria case that an injected
// 2x regression is detected while baseline-vs-baseline passes clean.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/benchreg.h"

namespace rpol {
namespace {

obs::BenchRecord record(std::string bench, std::string name, double value,
                        bool higher_is_better = false) {
  obs::BenchRecord r;
  r.bench = std::move(bench);
  r.name = std::move(name);
  r.unit = std::string("s");  // temporary dodges a GCC 12 -Wrestrict warning
  r.value = value;
  r.higher_is_better = higher_is_better;
  return r;
}

obs::BenchReport sample_report() {
  obs::BenchReport report;
  report.records.push_back(record("bench_micro", "gemm.256", 1.5e-3));
  report.records.push_back(
      record("bench_micro", "gemm.gflops", 42.5, /*higher_is_better=*/true));
  obs::BenchRecord latency = record("bench_table3", "verify.p50", 0.25);
  latency.has_stats = true;
  latency.stats = {0.20, 0.25, 0.40, 0.55};
  latency.env.threads = 4;
  latency.env.build = "release";
  latency.env.compiler = "test-cc 1.0";
  report.records.push_back(latency);
  return report;
}

TEST(BenchReg, WriteParseRoundTripsEveryField) {
  const obs::BenchReport report = sample_report();
  const char* path = "obs_benchreg_test_roundtrip.json";
  ASSERT_TRUE(obs::write_bench_json_file(report, path));

  const obs::BenchReport loaded = obs::load_bench_file(path);
  ASSERT_EQ(loaded.records.size(), 3U);
  // Canonical order is (bench, name): gemm.256 < gemm.gflops < verify.p50.
  EXPECT_EQ(loaded.records[0].name, "gemm.256");
  EXPECT_DOUBLE_EQ(loaded.records[0].value, 1.5e-3);
  EXPECT_FALSE(loaded.records[0].higher_is_better);
  EXPECT_FALSE(loaded.records[0].has_stats);
  EXPECT_EQ(loaded.records[1].name, "gemm.gflops");
  EXPECT_TRUE(loaded.records[1].higher_is_better);

  const obs::BenchRecord& latency = loaded.records[2];
  EXPECT_EQ(latency.bench, "bench_table3");
  EXPECT_EQ(latency.unit, "s");
  ASSERT_TRUE(latency.has_stats);
  EXPECT_DOUBLE_EQ(latency.stats.best, 0.20);
  EXPECT_DOUBLE_EQ(latency.stats.p95, 0.40);
  EXPECT_DOUBLE_EQ(latency.stats.worst, 0.55);
  EXPECT_EQ(latency.env.threads, 4);
  EXPECT_EQ(latency.env.build, "release");
  EXPECT_EQ(latency.env.compiler, "test-cc 1.0");
}

TEST(BenchReg, ParserRejectsWrongOrMissingSchema) {
  EXPECT_THROW(obs::parse_bench_json("{\"schema\":\"other.v2\",\"records\":[]}"),
               std::runtime_error);
  EXPECT_THROW(obs::parse_bench_json("{\"records\":[]}"), std::runtime_error);
  EXPECT_THROW(obs::parse_bench_json("{\"schema\":\"rpol.bench.v1\"}"),
               std::runtime_error);
  EXPECT_THROW(obs::parse_bench_json("not json"), std::runtime_error);
  EXPECT_THROW(obs::load_bench_file("does_not_exist_bench.json"),
               std::runtime_error);
  // A record missing a required key is an error, not a silent default.
  EXPECT_THROW(
      obs::parse_bench_json("{\"schema\":\"rpol.bench.v1\",\"records\":["
                            "{\"bench\":\"b\",\"name\":\"n\"}]}"),
      std::runtime_error);
}

TEST(BenchReg, MergeOverlaysLaterRecordsAndKeepsTheRest) {
  obs::BenchReport base = sample_report();
  obs::BenchReport update;
  update.records.push_back(record("bench_micro", "gemm.256", 9.9e-3));  // wins
  update.records.push_back(record("bench_new", "fresh.metric", 1.0));

  const obs::BenchReport merged = obs::merge_bench_reports(base, update);
  ASSERT_EQ(merged.records.size(), 4U);
  double gemm256 = -1.0;
  bool saw_fresh = false, saw_verify = false;
  for (const obs::BenchRecord& r : merged.records) {
    if (r.bench == "bench_micro" && r.name == "gemm.256") gemm256 = r.value;
    if (r.bench == "bench_new") saw_fresh = true;
    if (r.name == "verify.p50") saw_verify = true;
  }
  EXPECT_DOUBLE_EQ(gemm256, 9.9e-3);  // update replaced the base record
  EXPECT_TRUE(saw_fresh);
  EXPECT_TRUE(saw_verify);  // untouched base record survives
}

TEST(BenchReg, BaselineVsItselfPassesClean) {
  const obs::BenchReport report = sample_report();
  const obs::BenchDiffResult diff = obs::diff_bench(report, report, 0.35);
  EXPECT_TRUE(diff.ok());
  EXPECT_EQ(diff.regressions, 0U);
  ASSERT_EQ(diff.deltas.size(), 3U);
  for (const obs::BenchDelta& d : diff.deltas) {
    EXPECT_DOUBLE_EQ(d.ratio, 1.0);
    EXPECT_FALSE(d.regression);
    EXPECT_FALSE(d.improvement);
  }
  EXPECT_TRUE(diff.only_baseline.empty());
  EXPECT_TRUE(diff.only_current.empty());
}

TEST(BenchReg, DetectsInjectedTwoXRegression) {
  const obs::BenchReport baseline = sample_report();
  obs::BenchReport current = sample_report();
  for (obs::BenchRecord& r : current.records) {
    if (r.name == "gemm.256") r.value *= 2.0;  // latency doubled: regression
  }
  const obs::BenchDiffResult diff = obs::diff_bench(baseline, current, 0.35);
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.regressions, 1U);
  bool flagged = false;
  for (const obs::BenchDelta& d : diff.deltas) {
    if (d.name == "gemm.256") {
      flagged = d.regression;
      EXPECT_DOUBLE_EQ(d.ratio, 2.0);
    } else {
      EXPECT_FALSE(d.regression);
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(BenchReg, DirectionAwareTolerance) {
  const obs::BenchReport baseline = sample_report();

  // Halved throughput (higher_is_better) regresses; halved latency improves.
  obs::BenchReport current = sample_report();
  for (obs::BenchRecord& r : current.records) r.value *= 0.5;
  const obs::BenchDiffResult diff = obs::diff_bench(baseline, current, 0.35);
  EXPECT_EQ(diff.regressions, 1U);
  for (const obs::BenchDelta& d : diff.deltas) {
    if (d.name == "gemm.gflops") {
      EXPECT_TRUE(d.regression);
    } else {
      EXPECT_FALSE(d.regression);
      EXPECT_TRUE(d.improvement);
    }
  }

  // Movement inside the tolerance band gates nothing in either direction.
  obs::BenchReport close = sample_report();
  for (obs::BenchRecord& r : close.records) r.value *= 1.1;
  EXPECT_TRUE(obs::diff_bench(baseline, close, 0.35).ok());
}

TEST(BenchReg, OneSidedRecordsReportButNeverGate) {
  obs::BenchReport baseline = sample_report();
  obs::BenchReport current = sample_report();
  current.records.pop_back();  // dropped from current
  current.records.push_back(record("bench_new", "added.metric", 5.0));

  const obs::BenchDiffResult diff = obs::diff_bench(baseline, current, 0.35);
  EXPECT_TRUE(diff.ok());  // presence changes alone never fail the gate
  ASSERT_EQ(diff.only_baseline.size(), 1U);
  EXPECT_EQ(diff.only_baseline[0], "bench_table3/verify.p50");
  ASSERT_EQ(diff.only_current.size(), 1U);
  EXPECT_EQ(diff.only_current[0], "bench_new/added.metric");

  // print_bench_diff must render every section without crashing.
  std::FILE* out = std::fopen("obs_benchreg_test_print.txt", "w");
  ASSERT_NE(out, nullptr);
  obs::print_bench_diff(diff, out);
  std::fclose(out);
}

TEST(BenchReg, ZeroBaselineOnlyGatesOnNonFiniteCurrent) {
  obs::BenchReport baseline;
  baseline.records.push_back(record("b", "starts.at.zero", 0.0));
  obs::BenchReport current;
  current.records.push_back(record("b", "starts.at.zero", 123.0));
  // Any finite movement off a zero baseline is reported, not gated: there
  // is no meaningful relative change to threshold.
  EXPECT_TRUE(obs::diff_bench(baseline, current, 0.35).ok());

  current.records[0].value = std::nan("");
  EXPECT_FALSE(obs::diff_bench(baseline, current, 0.35).ok());
}

TEST(BenchReg, PeakRssRoundTripsAndOldFilesReadAsZero) {
  obs::BenchReport report = sample_report();
  report.records[0].env.peak_rss_bytes = 123'456'789ULL;
  const char* path = "obs_benchreg_test_rss.json";
  ASSERT_TRUE(obs::write_bench_json_file(report, path));

  const obs::BenchReport loaded = obs::load_bench_file(path);
  ASSERT_EQ(loaded.records.size(), 3U);
  EXPECT_EQ(loaded.records[0].env.peak_rss_bytes, 123'456'789ULL);
  // Records written without the memory column parse with rss == 0
  // (pre-memory-column files stay loadable).
  EXPECT_EQ(loaded.records[1].env.peak_rss_bytes, 0U);
}

TEST(BenchReg, MemoryGateOnlyFiresWhenToleranceIsSet) {
  obs::BenchReport baseline = sample_report();
  obs::BenchReport current = sample_report();
  for (obs::BenchRecord& r : baseline.records) r.env.peak_rss_bytes = 1000;
  for (obs::BenchRecord& r : current.records) r.env.peak_rss_bytes = 2000;

  // Default: memory is advisory. The doubled RSS is visible in the deltas
  // but does not gate.
  const obs::BenchDiffResult advisory = obs::diff_bench(baseline, current, 0.35);
  EXPECT_TRUE(advisory.ok());
  EXPECT_EQ(advisory.mem_regressions, 0U);
  for (const obs::BenchDelta& d : advisory.deltas) {
    EXPECT_DOUBLE_EQ(d.rss_ratio, 2.0);
    EXPECT_FALSE(d.rss_regression);
  }

  // With a tolerance, the same diff gates — time regressions stay at zero,
  // so ok() flips purely on memory.
  const obs::BenchDiffResult gated =
      obs::diff_bench(baseline, current, 0.35, /*mem_tolerance=*/0.25);
  EXPECT_FALSE(gated.ok());
  EXPECT_EQ(gated.regressions, 0U);
  EXPECT_EQ(gated.mem_regressions, 3U);

  // Movement inside the memory band passes.
  for (obs::BenchRecord& r : current.records) r.env.peak_rss_bytes = 1100;
  EXPECT_TRUE(obs::diff_bench(baseline, current, 0.35, 0.25).ok());
}

TEST(BenchReg, MemoryAbsentOnEitherSideNeverGates) {
  obs::BenchReport baseline = sample_report();
  obs::BenchReport current = sample_report();
  // Baseline predates the memory column; current carries huge RSS values.
  for (obs::BenchRecord& r : current.records) r.env.peak_rss_bytes = 1u << 30;
  obs::BenchDiffResult diff =
      obs::diff_bench(baseline, current, 0.35, /*mem_tolerance=*/0.01);
  EXPECT_TRUE(diff.ok());
  for (const obs::BenchDelta& d : diff.deltas) {
    EXPECT_FALSE(d.rss_regression);
    EXPECT_DOUBLE_EQ(d.rss_ratio, 0.0);
  }

  // And the mirror case: baseline has it, current dropped it.
  diff = obs::diff_bench(current, baseline, 0.35, 0.01);
  EXPECT_TRUE(diff.ok());
}

}  // namespace
}  // namespace rpol
