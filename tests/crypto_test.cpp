// Unit tests for the crypto substrate: SHA-256 against FIPS 180-4 vectors,
// HMAC-SHA256 against RFC 4231 vectors, the protocol PRF, Merkle trees and
// blockchain addresses.

#include <gtest/gtest.h>

#include "crypto/address.h"
#include "crypto/merkle.h"
#include "crypto/prf.h"
#include "runtime/thread_pool.h"

namespace rpol {
namespace {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 / NIST test vectors)

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_to_hex(sha256(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_to_hex(sha256(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_to_hex(sha256(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (const char c : msg) {
    h.update(reinterpret_cast<const std::uint8_t*>(&c), 1);
  }
  EXPECT_EQ(digest_to_hex(h.finish()), digest_to_hex(sha256(msg)));
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edge cases all hash without
  // error and produce distinct digests.
  std::set<std::string> seen;
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u}) {
    seen.insert(digest_to_hex(sha256(std::string(len, 'x'))));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Sha256, FinishResetsForReuse) {
  // finish() leaves the hasher in the fresh-construction state, so one object
  // can hash a sequence of messages (the contract CommitmentIndex and the
  // commit loops rely on).
  Sha256 h;
  h.update(std::string("abc"));
  EXPECT_EQ(digest_to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Second use without an explicit reset: must equal a fresh hash, not a
  // continuation of the first message.
  h.update(std::string("abc"));
  EXPECT_EQ(digest_to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // And an empty third message hashes to the empty-string digest.
  EXPECT_EQ(digest_to_hex(h.finish()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, ResetDiscardsBufferedInput) {
  Sha256 h;
  h.update(std::string(100, 'z'));  // leaves a partial block buffered
  h.reset();
  h.update(std::string("abc"));
  EXPECT_EQ(digest_to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DigestToU64IsLittleEndianPrefix) {
  const Digest d = sha256(std::string("abc"));
  std::uint64_t expected = 0;
  for (int i = 0; i < 8; ++i) expected |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  EXPECT_EQ(digest_to_u64(d), expected);
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231)

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  const Bytes msg_bytes(msg.begin(), msg.end());
  EXPECT_EQ(digest_to_hex(hmac_sha256(key, msg_bytes)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key_s = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const Bytes key(key_s.begin(), key_s.end());
  const Bytes msg_bytes(msg.begin(), msg.end());
  EXPECT_EQ(digest_to_hex(hmac_sha256(key, msg_bytes)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Bytes msg_bytes(msg.begin(), msg.end());
  EXPECT_EQ(digest_to_hex(hmac_sha256(key, msg_bytes)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------------------
// PRF

TEST(Prf, DeterministicAndKeySeparated) {
  const Prf a(std::uint64_t{1});
  const Prf b(std::uint64_t{1});
  const Prf c(std::uint64_t{2});
  EXPECT_EQ(a.eval(0), b.eval(0));
  EXPECT_NE(a.eval(0), c.eval(0));
  EXPECT_NE(a.eval(0), a.eval(1));
}

TEST(Prf, ModulusReduction) {
  const Prf prf(std::uint64_t{99});
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_LT(prf.eval_mod(i, 10), 10u);
  }
  EXPECT_THROW(prf.eval_mod(0, 0), std::invalid_argument);
}

TEST(Prf, ModOutputsCoverResidues) {
  const Prf prf(std::uint64_t{123});
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 200; ++i) seen.insert(prf.eval_mod(i, 7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prf, StringKeyMatchesBytesKey) {
  const Prf a(std::string("nonce"));
  const Prf b(Bytes{'n', 'o', 'n', 'c', 'e'});
  EXPECT_EQ(a.eval(5), b.eval(5));
}

// ---------------------------------------------------------------------------
// Merkle tree

Digest leaf_digest(int i) {
  Bytes b;
  append_u64(b, static_cast<std::uint64_t>(i));
  return sha256(b);
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const Digest d = leaf_digest(0);
  MerkleTree tree({d});
  EXPECT_TRUE(digest_equal(tree.root(), d));
}

TEST(Merkle, EmptyLeavesThrows) {
  EXPECT_THROW(MerkleTree(std::vector<Digest>{}), std::invalid_argument);
}

TEST(Merkle, ProofsVerifyForAllLeafCounts) {
  for (int n : {1, 2, 3, 4, 5, 8, 13, 16, 33}) {
    std::vector<Digest> leaves;
    for (int i = 0; i < n; ++i) leaves.push_back(leaf_digest(i));
    MerkleTree tree(leaves);
    for (int i = 0; i < n; ++i) {
      const MerkleProof proof = tree.prove(static_cast<std::size_t>(i));
      EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[static_cast<std::size_t>(i)],
                                     proof))
          << "n=" << n << " leaf=" << i;
    }
  }
}

TEST(Merkle, WrongLeafFailsVerification) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(leaf_digest(i));
  MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaf_digest(4), proof));
}

TEST(Merkle, TamperedProofFails) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(leaf_digest(i));
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(2);
  proof.siblings[0][0] ^= 0x01;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaf_digest(2), proof));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 5; ++i) leaves.push_back(leaf_digest(i));
  const Digest root = MerkleTree(leaves).root();
  for (int i = 0; i < 5; ++i) {
    auto mutated = leaves;
    mutated[static_cast<std::size_t>(i)] = leaf_digest(100 + i);
    EXPECT_FALSE(digest_equal(MerkleTree(mutated).root(), root));
  }
}

TEST(Merkle, OutOfRangeProofThrows) {
  MerkleTree tree({leaf_digest(0)});
  EXPECT_THROW(tree.prove(1), std::out_of_range);
}

TEST(Merkle, AccumulatorMatchesTreeRootAtEveryCount) {
  // The streaming accumulator must reproduce MerkleTree's root — including
  // the Bitcoin-style self-pairing of ragged edges at every level — for
  // every leaf count, and its root() must be non-destructive so it can be
  // queried mid-stream.
  MerkleAccumulator acc;
  std::vector<Digest> leaves;
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW(acc.root(), std::invalid_argument);
  for (int n = 1; n <= 40; ++n) {
    leaves.push_back(leaf_digest(n - 1));
    acc.push(leaves.back());
    EXPECT_EQ(acc.leaf_count(), static_cast<std::size_t>(n));
    EXPECT_TRUE(digest_equal(acc.root(), MerkleTree(leaves).root()))
        << "n=" << n;
    // Query again: root() folded frontiers into a scratch path, so a second
    // call (and further pushes) must see untouched state.
    EXPECT_TRUE(digest_equal(acc.root(), MerkleTree(leaves).root()))
        << "repeat n=" << n;
  }
  // O(log n) frontier: 40 leaves fit in 6 levels.
  EXPECT_LE(acc.byte_size(), 6 * sizeof(Digest));
}

TEST(Merkle, ParentReuseSurvivesInterleavedDigests) {
  // Regression for the incremental-fold helpers: merkle_parent_reusing
  // relies on Sha256::finish() resetting the hasher for reuse. Interleave
  // parent folds with unrelated digests on the SAME hasher object and
  // assert every fold still matches a fresh-hasher merkle_parent.
  Sha256 reused;
  const Digest a = leaf_digest(1);
  const Digest b = leaf_digest(2);
  for (int round = 0; round < 5; ++round) {
    const Digest folded = merkle_parent_reusing(reused, a, b);
    EXPECT_TRUE(digest_equal(folded, merkle_parent(a, b))) << round;
    // Unrelated work on the same hasher between folds...
    reused.update(std::string("interleaved-") + std::to_string(round));
    const Digest other = reused.finish();
    EXPECT_FALSE(digest_equal(other, folded));
    // ...must not perturb the next fold (finish() reset the state again).
    EXPECT_TRUE(
        digest_equal(merkle_parent_reusing(reused, b, a), merkle_parent(b, a)))
        << round;
  }
}

TEST(Merkle, ParallelBuildMatchesSerialFold) {
  // The pooled per-level construction must equal a serial bottom-up fold at
  // leaf counts below, at, and above the parallel grain (64 pairs), odd and
  // even, at both thread settings.
  const int saved = runtime::threads();
  for (int n : {255, 256, 257, 1000}) {
    std::vector<Digest> leaves;
    for (int i = 0; i < n; ++i) leaves.push_back(leaf_digest(i));

    std::vector<Digest> level = leaves;
    while (level.size() > 1) {
      std::vector<Digest> next;
      for (std::size_t i = 0; i < level.size(); i += 2) {
        const Digest& right = i + 1 < level.size() ? level[i + 1] : level[i];
        next.push_back(merkle_parent(level[i], right));
      }
      level = std::move(next);
    }

    for (int threads : {1, 4}) {
      runtime::set_threads(threads);
      EXPECT_TRUE(digest_equal(MerkleTree(leaves).root(), level[0]))
          << "n=" << n << " threads=" << threads;
    }
  }
  runtime::set_threads(saved);
}

// ---------------------------------------------------------------------------
// Address

TEST(Address, DerivationIsDeterministic) {
  EXPECT_EQ(Address::from_seed(7).str(), Address::from_seed(7).str());
  EXPECT_NE(Address::from_seed(7).str(), Address::from_seed(8).str());
}

TEST(Address, CanonicalFormat) {
  const Address a = Address::from_seed(1);
  EXPECT_EQ(a.str().size(), 42u);
  EXPECT_EQ(a.str().substr(0, 2), "0x");
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(Address{}.valid());
}

TEST(Address, ParseRoundTrip) {
  const Address a = Address::from_seed(99);
  const Address b = Address::from_string(a.str());
  EXPECT_EQ(a, b);
}

TEST(Address, MalformedStringsThrow) {
  EXPECT_THROW(Address::from_string("0x123"), std::invalid_argument);
  EXPECT_THROW(Address::from_string(std::string(42, 'f')), std::invalid_argument);
  // Uppercase hex is rejected (canonical form is lowercase).
  std::string upper = Address::from_seed(1).str();
  upper[2] = 'A';
  EXPECT_THROW(Address::from_string(upper), std::invalid_argument);
}

TEST(Address, OrderingAndEquality) {
  const Address a = Address::from_seed(1);
  const Address b = Address::from_seed(2);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE((a < b) || (b < a));
}

}  // namespace
}  // namespace rpol
