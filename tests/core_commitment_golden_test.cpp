// Golden-digest regression tests for the commitment pipeline.
//
// The zero-copy/parallel rewrite (streaming hash_state, pooled leaf hashing,
// memoized CommitmentIndex, hardware SHA-256 dispatch) must be a pure
// performance change: every digest, root, and proof must match the original
// serialize-then-hash serial implementation byte for byte. The hex constants
// below were dumped from that pre-rewrite implementation over deterministic
// synthetic traces; any future change that moves one of them is a
// commitment-format break, not a refactor.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/commitment.h"
#include "lsh/pstable.h"
#include "runtime/thread_pool.h"

namespace rpol::core {
namespace {

// Deterministic synthetic state, identical to the generator the goldens were
// dumped with: xorshift64 floats in [-1, 1] seeded from `salt`.
TrainState make_state(std::uint64_t salt, std::size_t model_n,
                      std::size_t opt_n) {
  TrainState s;
  s.model.resize(model_n);
  s.optimizer.resize(opt_n);
  std::uint64_t x = salt * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<float>(static_cast<std::int64_t>(x % 2000001) -
                              1000000) /
           1000000.0F;
  };
  for (auto& v : s.model) v = next();
  for (auto& v : s.optimizer) v = next();
  return s;
}

EpochTrace make_trace(std::size_t checkpoints) {
  EpochTrace t;
  for (std::size_t i = 0; i < checkpoints; ++i) {
    t.checkpoints.push_back(make_state(i + 1, 97, 31));
    t.step_of.push_back(static_cast<std::int64_t>(i));
  }
  return t;
}

lsh::PStableLsh golden_hasher() {
  lsh::LshConfig cfg{{1.0, 2, 3}, 97, 9};
  return lsh::PStableLsh(cfg);
}

// Order-sensitive digest of everything a transition proof binds: all three
// sibling paths plus the two state hashes.
std::string proof_transcript_hex(const TransitionProof& proof) {
  Sha256 h;
  for (const auto& sib : proof.in_membership.siblings)
    h.update(sib.data(), sib.size());
  for (const auto& sib : proof.out_membership.siblings)
    h.update(sib.data(), sib.size());
  for (const auto& sib : proof.out_lsh_membership.siblings)
    h.update(sib.data(), sib.size());
  h.update(proof.in_hash.data(), proof.in_hash.size());
  h.update(proof.out_hash.data(), proof.out_hash.size());
  return digest_to_hex(h.finish());
}

struct ThreadGuard {
  int saved;
  explicit ThreadGuard(int n) : saved(runtime::threads()) {
    runtime::set_threads(n);
  }
  ~ThreadGuard() { runtime::set_threads(saved); }
};

// ---------------------------------------------------------------------------
// hash_state: streaming zero-copy path vs frozen goldens and vs the
// serialize-then-hash definition it must stay equivalent to.

struct HashStateGolden {
  std::size_t model_n, opt_n;
  const char* hex;
};

constexpr HashStateGolden kHashStateGoldens[] = {
    {0, 0, "374708fff7719dd5979ec875d56cd2286f6d3cf7ec317a3b25632aab28ec37bb"},
    {1, 0, "582db64f301b4db8facffb643e4a90d4cf470cd15e1f35dd2d51175a9243eb66"},
    {0, 1, "10ababa0c593ace5b75b8dba5ef32d6dcf16492918f74266afff99a00ed4612b"},
    {13, 7, "3111b176c6a42b1d19bc99e14aac65daabfb63e12f9702f0e72447f1b84bfb68"},
    {14, 14, "8acefc704e088480b591e3f413d865f446adb409def3631252ad045ff4e82ace"},
    {15, 1, "988fcddb9027f9ff8e32f499a9ee95d258937b8a775045cf44004498de80bf05"},
    {16, 16, "e5b16309167c222a958465252ca5f124c78ac0d0abbae4e861817c5b83ceb2d4"},
    {100, 100,
     "f1f81aacdb028128eb6019a2cb05fd9c392b6774be7a4fdaee55c14c08b080f3"},
    {1000, 333,
     "e6a62732ad244ab5d70336bdd251490d0fb0d7bcee452d656177218ca2533057"},
};

TEST(CommitmentGolden, HashStateMatchesPrePipelineDigests) {
  for (const auto& g : kHashStateGoldens) {
    const TrainState st = make_state(g.model_n * 1000 + g.opt_n, g.model_n,
                                     g.opt_n);
    EXPECT_EQ(digest_to_hex(hash_state(st)), g.hex)
        << "model_n=" << g.model_n << " opt_n=" << g.opt_n;
  }
}

TEST(CommitmentGolden, HashStateEqualsSerializeThenHash) {
  // The zero-copy streaming path is DEFINED as sha256(serialize_state(s));
  // sizes straddle SHA-256 block boundaries to exercise buffered tails.
  for (const auto& g : kHashStateGoldens) {
    const TrainState st = make_state(g.model_n + 7 * g.opt_n + 3, g.model_n,
                                     g.opt_n);
    EXPECT_EQ(digest_to_hex(hash_state(st)),
              digest_to_hex(sha256(serialize_state(st))));
  }
}

// ---------------------------------------------------------------------------
// Commitment roots, compact roots, and proof transcripts: odd, even, and
// power-of-two checkpoint counts (self-pairing at every level shape).

struct RootGolden {
  std::size_t n;
  const char* v1_root;
  const char* state_root;  // Merkle root shared by compact v1 and v2
  const char* v2_root;
  const char* lsh_root;
};

constexpr RootGolden kRootGoldens[] = {
    {2, "23af0727ea291c57a2deb5fc108a0f8b48352fcbc6f3406c61d65a7dde86a856",
     "23af0727ea291c57a2deb5fc108a0f8b48352fcbc6f3406c61d65a7dde86a856",
     "9ab9d0db4f9eb41d79876d4824a0bab6c6b4fba4efd6aa323dafe184152be129",
     "486767729ba261f99442472eef89216e6a9eea39056a0642ed92701fee057723"},
    {3, "4d0f5ce84f62ead711fc5af1f07492ae196bb41baf11d6a802428ba867fb402e",
     "982e0e33d2e33a413e13c6412715d1d24316513abb5ca828b47be415db9afa78",
     "e106b255f1503de331b9629485471c701aa21917e71fced6e50378d1ce6eb3ec",
     "6ba863c7cc1ef4c238ac0a3067789b31558da5de9166d866ff0a3c7627f8496a"},
    {4, "cb3b6b846b9af2d0ea01d8339d4c02b4372595e08dce797d2326d5c5486224b5",
     "cf3f373859f39b4576d20c2d6d0ef0f2ce90b1a238745000fa0dedbd6c89a924",
     "f6e74e146568badb20f61bead5a36b7cb32b306c11defd3cead205b80f0e0988",
     "b515479db3b88353501988016b31e351d6fd8ae9721678a88531c0c0ac3a21c6"},
    {5, "483fe87e06600195bed69ababd3788f81b9d844bb6b9eda98f02f0151a4f0927",
     "f49c1ec762c8fe546b75058e0374749e33a1ef25f6a5aeee6beb217b432d0969",
     "d940545adc2c933da701b92c3d9c96c4df872e2aa0eeb29caf883884cff556f9",
     "471c8646fdd9e54c0287b48d394733e909af33f615b64aedd4cdcca44fbe5358"},
    {8, "abc5f76d79e4ee15c2e73555fff5a179e37214a31f3435989ac2b61be92b5bd0",
     "57bbb61f810313401a00b9721bf42ad54aa49d924f65a674455c8881042cb880",
     "15b1acd3612419fb23457f034eb55533abc65cbd7747e8be07915a10fd6f1e07",
     "694a9c8d6d185495d05a21d400303bce1c0cfd1df15dc2d744cac2fe748b78c8"},
    {9, "adfc255b7e94dfdbadc7d4593649bdc15cfe4765ecbbc9d87d7cd1452e7af040",
     "7c12714a1fedb8f5e09e970e25b07b026bf44de2309b4122735857d164cd653c",
     "53d0a64e736be64e6a5b3b4f8f0143288b997a0073de0b4a7776f9a9a9076099",
     "8ea6bae7616c0257387236b18d0bceb36a2bacdaf4d254063899e1fdd89cca61"},
    {16, "1fb68b5f44fc32706a8a2642e55eb01cae2c6b45238867bbc8167110484feb15",
     "e8f978733c5d3c356c483dd5a556d3833afb6ae4a1bcea7bfaa9de7c87e39933",
     "cef66dda63a599603e834e151e25415e7d682537bf771c8cc56b606079a9c357",
     "f3819d600704135587c2dd5689c62799cdd9f91076258773a6e9f3ac475086f3"},
};

TEST(CommitmentGolden, CommitAndCompactRoots) {
  const lsh::PStableLsh hasher = golden_hasher();
  for (const auto& g : kRootGoldens) {
    const EpochTrace trace = make_trace(g.n);
    const Commitment v1 = commit_v1(trace);
    EXPECT_EQ(digest_to_hex(v1.root), g.v1_root) << "n=" << g.n;
    const CompactCommitment c1 = compact_commitment(v1);
    EXPECT_EQ(digest_to_hex(c1.state_root), g.state_root) << "n=" << g.n;

    const Commitment v2 = commit_v2(trace, hasher);
    EXPECT_EQ(digest_to_hex(v2.root), g.v2_root) << "n=" << g.n;
    const CompactCommitment c2 = compact_commitment(v2);
    EXPECT_EQ(digest_to_hex(c2.state_root), g.state_root) << "n=" << g.n;
    EXPECT_EQ(digest_to_hex(c2.lsh_root), g.lsh_root) << "n=" << g.n;
  }
}

// Transition-proof transcripts for the v2 commitment at n = 5 (odd, forces
// self-pairing on two levels) and n = 8 (perfect tree); every transition.
struct ProofGolden {
  std::size_t n, j;
  const char* hex;
};

constexpr ProofGolden kProofGoldens[] = {
    {5, 0, "b3c0043eb996007879f9f7fce7aad6f0371f81e885309d7499475f40ce7fa2ef"},
    {5, 1, "03ab9bb0c4ae72c9a11aa2fa8c42e420ce5e9c1eca80caf3ed0651938854abc3"},
    {5, 2, "f34f8ade49ac7aaf5da534a24516bd4075a5ec7a6d30f4660a29dd61d27ab453"},
    {5, 3, "1016469f6ce88cde498df70105fa870de3a145318df40a79e94cfeebbab11d0f"},
    {8, 0, "89f9ef40ed244165ef028e1207abe65907905a84df79d3dffd505a4bd63d692f"},
    {8, 1, "2e6bb2ab8f1be23deb02d7ba54d29c69ecc38ec5d9aa67ad50b2a9137fbf5db0"},
    {8, 2, "1d6debb433c6a5ebc87f83e79d96252297d8a849c7b771576267c9915ee172af"},
    {8, 3, "f3e067e79136ce9ea08b8273cb5d6c1617c6bd0e2f169393bbc3c5f5599ae6c3"},
    {8, 4, "e2db842b8f163237740899f23215cfe4067e9ff722c55c3b8f0786911417224f"},
    {8, 5, "d3b68575f381608cd32956fb0fb2baac8bb89d98841646e803f84cafdc290fd4"},
    {8, 6, "dab70d24f52f66285c9e463719491dc66ae45da6cf4011565eab730e0fca7591"},
};

TEST(CommitmentGolden, TransitionProofTranscripts) {
  const lsh::PStableLsh hasher = golden_hasher();
  Commitment v2_5 = commit_v2(make_trace(5), hasher);
  Commitment v2_8 = commit_v2(make_trace(8), hasher);
  for (const auto& g : kProofGoldens) {
    const Commitment& full = g.n == 5 ? v2_5 : v2_8;
    const TransitionProof proof =
        make_transition_proof(full, static_cast<std::int64_t>(g.j));
    EXPECT_EQ(proof_transcript_hex(proof), g.hex)
        << "n=" << g.n << " j=" << g.j;
    // The memoized index must produce the identical proof.
    const CommitmentIndex index(full);
    EXPECT_EQ(proof_transcript_hex(
                  index.prove_transition(static_cast<std::int64_t>(g.j))),
              g.hex);
  }
}

// ---------------------------------------------------------------------------
// Thread-count invariance: the parallel leaf/Merkle fan-out must be bitwise
// identical at 1 and 4 threads — same goldens, not merely self-consistent.

TEST(CommitmentGolden, BitwiseInvariantAcrossThreadCounts) {
  const lsh::PStableLsh hasher = golden_hasher();
  for (const int threads : {1, 4}) {
    ThreadGuard guard(threads);
    for (const auto& g : kRootGoldens) {
      const EpochTrace trace = make_trace(g.n);
      EXPECT_EQ(digest_to_hex(commit_v1(trace).root), g.v1_root)
          << "threads=" << threads << " n=" << g.n;
      const Commitment v2 = commit_v2(trace, hasher);
      EXPECT_EQ(digest_to_hex(v2.root), g.v2_root)
          << "threads=" << threads << " n=" << g.n;
      EXPECT_EQ(digest_to_hex(compact_commitment(v2).lsh_root), g.lsh_root)
          << "threads=" << threads << " n=" << g.n;
    }
  }
}

// ---------------------------------------------------------------------------
// CommitmentIndex contract: equivalent to the one-shot wrappers, including
// the exception behavior callers rely on.

TEST(CommitmentGolden, IndexMatchesOneShotWrappers) {
  const lsh::PStableLsh hasher = golden_hasher();
  const Commitment full = commit_v2(make_trace(7), hasher);
  const CommitmentIndex index(full);

  const CompactCommitment a = index.compact();
  const CompactCommitment b = compact_commitment(full);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.num_checkpoints, b.num_checkpoints);
  EXPECT_TRUE(digest_equal(a.state_root, b.state_root));
  EXPECT_TRUE(digest_equal(a.lsh_root, b.lsh_root));

  for (std::int64_t j = 0; j + 1 < 7; ++j) {
    EXPECT_EQ(proof_transcript_hex(index.prove_transition(j)),
              proof_transcript_hex(make_transition_proof(full, j)));
  }
  // Every proof must verify against the compact roots it was built for.
  for (std::int64_t j = 0; j + 1 < 7; ++j) {
    EXPECT_TRUE(verify_transition_proof(a, index.prove_transition(j)));
  }
}

TEST(CommitmentGolden, IndexExceptionBehavior) {
  const Commitment empty;
  EXPECT_THROW(CommitmentIndex{empty}, std::invalid_argument);
  EXPECT_THROW(compact_commitment(empty), std::invalid_argument);

  const Commitment full = commit_v1(make_trace(4));
  const CommitmentIndex index(full);
  EXPECT_THROW(index.prove_transition(-1), std::out_of_range);
  EXPECT_THROW(index.prove_transition(3), std::out_of_range);
  EXPECT_THROW(make_transition_proof(full, -1), std::out_of_range);
  EXPECT_THROW(make_transition_proof(full, 3), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Streaming construction: CommitmentBuilder folds checkpoints one at a time
// and must land on the exact same pinned roots as the batch builders — the
// §6 equivalence contract for the bounded-memory epoch path.

TEST(CommitmentGolden, StreamedBuilderMatchesPinnedRoots) {
  const lsh::PStableLsh hasher = golden_hasher();
  for (const auto& g : kRootGoldens) {
    const EpochTrace trace = make_trace(g.n);

    CommitmentBuilder b1(CommitmentVersion::kV1);
    CommitmentBuilder b2(CommitmentVersion::kV2, &hasher);
    for (const auto& ckpt : trace.checkpoints) {
      b1.add_checkpoint(ckpt);
      b2.add_checkpoint(ckpt);
    }

    const Commitment v1 = b1.finish();
    EXPECT_EQ(digest_to_hex(v1.root), g.v1_root) << "n=" << g.n;
    const Commitment v2 = b2.finish();
    EXPECT_EQ(digest_to_hex(v2.root), g.v2_root) << "n=" << g.n;

    // Streamed O(log n) compact roots vs the pinned tree roots.
    const CompactCommitment c1 = b1.compact();
    EXPECT_EQ(digest_to_hex(c1.state_root), g.state_root) << "n=" << g.n;
    const CompactCommitment c2 = b2.compact();
    EXPECT_EQ(digest_to_hex(c2.state_root), g.state_root) << "n=" << g.n;
    EXPECT_EQ(digest_to_hex(c2.lsh_root), g.lsh_root) << "n=" << g.n;

    EXPECT_EQ(v2.state_hashes.size(), g.n);
    EXPECT_EQ(v2.lsh_digests.size(), g.n);
    EXPECT_TRUE(commitment_consistent(v1));
    EXPECT_TRUE(commitment_consistent(v2));
  }
}

TEST(CommitmentGolden, StreamedProofTranscriptsMatchBatch) {
  // finish() is non-destructive and the resulting Commitment feeds the same
  // proof machinery: transcripts must equal the pinned batch transcripts.
  const lsh::PStableLsh hasher = golden_hasher();
  CommitmentBuilder b5(CommitmentVersion::kV2, &hasher);
  CommitmentBuilder b8(CommitmentVersion::kV2, &hasher);
  const EpochTrace t5 = make_trace(5);
  const EpochTrace t8 = make_trace(8);
  for (const auto& c : t5.checkpoints) b5.add_checkpoint(c);
  for (const auto& c : t8.checkpoints) b8.add_checkpoint(c);
  const Commitment v2_5 = b5.finish();
  const Commitment v2_8 = b8.finish();
  for (const auto& g : kProofGoldens) {
    const Commitment& full = g.n == 5 ? v2_5 : v2_8;
    EXPECT_EQ(proof_transcript_hex(
                  make_transition_proof(full, static_cast<std::int64_t>(g.j))),
              g.hex)
        << "n=" << g.n << " j=" << g.j;
  }
  // Interleaved finish(): sealing early then adding more checkpoints must
  // not perturb the final roots (the accumulators are pure folds).
  CommitmentBuilder inc(CommitmentVersion::kV2, &hasher);
  for (std::size_t i = 0; i < t8.checkpoints.size(); ++i) {
    inc.add_checkpoint(t8.checkpoints[i]);
    (void)inc.finish();
    (void)inc.compact();
  }
  EXPECT_EQ(digest_to_hex(inc.finish().root), digest_to_hex(v2_8.root));
  EXPECT_EQ(digest_to_hex(inc.compact().state_root),
            digest_to_hex(b8.compact().state_root));
  EXPECT_EQ(digest_to_hex(inc.compact().lsh_root),
            digest_to_hex(b8.compact().lsh_root));
}

TEST(CommitmentGolden, StreamedBuilderExceptionBehavior) {
  EXPECT_THROW(CommitmentBuilder(CommitmentVersion::kV2, nullptr),
               std::invalid_argument);
  CommitmentBuilder empty(CommitmentVersion::kV1);
  EXPECT_THROW((void)empty.finish(), std::invalid_argument);
  EXPECT_THROW((void)empty.compact(), std::invalid_argument);
}

}  // namespace
}  // namespace rpol::core
