// Tests for the simulation substrate: device noise model, WAN model,
// real-model descriptors, statistics (KS normality test).

#include <gtest/gtest.h>

#include <cmath>

#include "sim/cost.h"
#include "sim/device.h"
#include "sim/model_specs.h"
#include "sim/network.h"
#include "sim/stats.h"

namespace rpol::sim {
namespace {

// ---------------------------------------------------------------------------
// Devices

TEST(Device, RegistryOrderedByThroughput) {
  const auto devices = all_devices();
  ASSERT_EQ(devices.size(), 4u);
  EXPECT_EQ(devices[0].name, "G3090");
  EXPECT_DOUBLE_EQ(devices[0].tflops_fp32, 35.7);
  EXPECT_EQ(devices[3].name, "GT4");
  EXPECT_DOUBLE_EQ(devices[3].tflops_fp32, 8.1);
}

TEST(Device, NoiseGrowsWithThroughput) {
  // Fig. 4 trend: faster GPUs produce larger reproduction errors.
  EXPECT_GT(device_g3090().noise_rel, device_ga10().noise_rel);
  EXPECT_GT(device_ga10().noise_rel, device_gp100().noise_rel);
  EXPECT_GT(device_gp100().noise_rel, device_gt4().noise_rel);
}

TEST(Device, ComputeSecondsScalesInversely) {
  const double flops = 1e12;
  EXPECT_LT(device_g3090().compute_seconds(flops),
            device_gt4().compute_seconds(flops));
}

TEST(Device, PerturbationIsZeroMeanAndScaled) {
  nn::Param p("w", Tensor({10000}));
  p.grad = Tensor::full({10000}, 1.0F);
  DeviceExecution exec(device_g3090(), 5);
  exec.perturb_gradients({&p});
  double sum = 0.0, sq = 0.0;
  for (std::int64_t i = 0; i < 10000; ++i) {
    const double d = static_cast<double>(p.grad.at(i)) - 1.0;
    sum += d;
    sq += d * d;
  }
  const double mean = sum / 10000.0;
  const double sd = std::sqrt(sq / 10000.0);
  EXPECT_NEAR(mean, 0.0, 3e-5);
  // grad rms is 1, so sd should be ~noise_rel of the device.
  EXPECT_NEAR(sd, device_g3090().noise_rel, device_g3090().noise_rel * 0.2);
}

TEST(Device, SameRunSeedReproduces) {
  nn::Param p1("w", Tensor({64}));
  nn::Param p2("w", Tensor({64}));
  p1.grad = Tensor::full({64}, 2.0F);
  p2.grad = Tensor::full({64}, 2.0F);
  DeviceExecution a(device_ga10(), 9);
  DeviceExecution b(device_ga10(), 9);
  a.perturb_gradients({&p1});
  b.perturb_gradients({&p2});
  EXPECT_EQ(p1.grad.vec(), p2.grad.vec());
}

TEST(Device, DifferentRunSeedsDiverge) {
  nn::Param p1("w", Tensor({64}));
  nn::Param p2("w", Tensor({64}));
  p1.grad = Tensor::full({64}, 2.0F);
  p2.grad = Tensor::full({64}, 2.0F);
  DeviceExecution a(device_ga10(), 9);
  DeviceExecution b(device_ga10(), 10);
  a.perturb_gradients({&p1});
  b.perturb_gradients({&p2});
  EXPECT_NE(p1.grad.vec(), p2.grad.vec());
}

TEST(Device, NonTrainableGradsUntouched) {
  nn::Param buf("b", Tensor({16}), /*train=*/false);
  buf.grad = Tensor::full({16}, 3.0F);
  DeviceExecution exec(device_g3090(), 1);
  exec.perturb_gradients({&buf});
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(buf.grad.at(i), 3.0F);
}

TEST(Device, ZeroGradientStaysZero) {
  // Noise is relative to gradient magnitude: a zero gradient gains nothing.
  nn::Param p("w", Tensor({16}));
  DeviceExecution exec(device_g3090(), 1);
  exec.perturb_gradients({&p});
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(p.grad.at(i), 0.0F);
}

// ---------------------------------------------------------------------------
// Network

TEST(Network, TransferTimeMatchesBandwidth) {
  Network net(NetworkSpec{10e9, 100e6, 0.0}, 1);
  // 100 Mbps worker link: 12.5 MB/s => 125 MB takes 10 s.
  const double t = net.upload(0, 125'000'000ULL, 1);
  EXPECT_NEAR(t, 10.0, 1e-6);
}

TEST(Network, ManagerLinkSharedAcrossConcurrentStreams) {
  Network net(NetworkSpec{10e9, 1e9, 0.0}, 200);
  // 200 concurrent workers share 10 Gbps: each sees 50 Mbps < its own 1 Gbps.
  const double t = net.download(0, 1'000'000ULL, 200);
  EXPECT_NEAR(t, 8e6 / 50e6, 1e-9);
}

TEST(Network, CountersAccumulate) {
  Network net(NetworkSpec{}, 2);
  net.upload(0, 100, 1);
  net.upload(1, 50, 1);
  net.download(0, 30, 1);
  EXPECT_EQ(net.worker_traffic(0).bytes_sent, 100u);
  EXPECT_EQ(net.worker_traffic(1).bytes_sent, 50u);
  EXPECT_EQ(net.worker_traffic(0).bytes_received, 30u);
  EXPECT_EQ(net.manager_traffic().bytes_received, 150u);
  EXPECT_EQ(net.manager_traffic().bytes_sent, 30u);
  EXPECT_EQ(net.total_bytes(), 180u);
  net.reset_counters();
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(Network, LatencyAdds) {
  Network net(NetworkSpec{10e9, 100e6, 0.5}, 1);
  EXPECT_NEAR(net.upload(0, 0, 1), 0.5, 1e-12);
}

TEST(Network, InvalidUsageThrows) {
  EXPECT_THROW(Network(NetworkSpec{}, 0), std::invalid_argument);
  Network net(NetworkSpec{}, 1);
  EXPECT_THROW(net.upload(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(net.upload(5, 1, 1), std::out_of_range);
}

TEST(Network, FormatGb) {
  EXPECT_EQ(format_gb(1024ULL * 1024 * 1024), "1.00GB");
  EXPECT_EQ(format_gb(1536ULL * 1024 * 1024), "1.50GB");
}

// ---------------------------------------------------------------------------
// Cost model

TEST(Cost, PaperConstants) {
  const CostModel prices;
  EXPECT_NEAR(prices.compute_cost(3600.0), 1.33, 1e-9);
  EXPECT_NEAR(prices.comm_cost(1024ULL * 1024 * 1024), 0.12, 1e-9);
  EXPECT_NEAR(prices.storage_cost(100ULL * 1024 * 1024 * 1024, 1.0), 5.0, 1e-9);
}

TEST(Cost, BreakdownTotals) {
  CostBreakdown b{1.0, 2.0, 0.5};
  EXPECT_DOUBLE_EQ(b.total(), 3.5);
}

// ---------------------------------------------------------------------------
// Real model specs

TEST(ModelSpecs, PaperSizes) {
  EXPECT_NEAR(static_cast<double>(real_resnet50().weight_bytes) / (1024.0 * 1024.0),
              90.7, 0.1);
  EXPECT_NEAR(static_cast<double>(real_vgg16().weight_bytes) / (1024.0 * 1024.0),
              527.0, 0.5);
  EXPECT_EQ(real_imagenet().num_examples, 1'281'167ULL);
}

// ---------------------------------------------------------------------------
// Statistics

TEST(Stats, MomentsHandValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(max_value(xs), 4.0);
  EXPECT_DOUBLE_EQ(min_value(xs), 1.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, KsAcceptsNormalSample) {
  Rng rng(31337);
  std::vector<double> xs(400);
  for (auto& x : xs) x = 5.0 + 2.0 * rng.next_normal();
  const KsTestResult result = ks_normality_test(xs);
  EXPECT_TRUE(result.normal_at_5pct) << "p=" << result.p_value;
}

TEST(Stats, KsRejectsUniformSample) {
  Rng rng(99);
  std::vector<double> xs(800);
  for (auto& x : xs) x = rng.next_double();
  const KsTestResult result = ks_normality_test(xs);
  // A uniform sample is decidedly non-normal at this size.
  EXPECT_FALSE(result.normal_at_5pct) << "p=" << result.p_value;
}

TEST(Stats, KsRejectsBimodalSample) {
  Rng rng(123);
  std::vector<double> xs(600);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = (i % 2 == 0 ? -4.0 : 4.0) + 0.3 * rng.next_normal();
  }
  EXPECT_FALSE(ks_normality_test(xs).normal_at_5pct);
}

TEST(Stats, KsDegenerateInputs) {
  EXPECT_THROW(ks_normality_test({1.0, 2.0}), std::invalid_argument);
  const KsTestResult constant = ks_normality_test({1.0, 1.0, 1.0, 1.0});
  EXPECT_FALSE(constant.normal_at_5pct);
}

}  // namespace
}  // namespace rpol::sim
