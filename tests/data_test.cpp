// Tests for synthetic datasets, views, shuffling and i.i.d. partitioning.

#include <gtest/gtest.h>

#include <set>

#include "data/partition.h"
#include "data/synthetic.h"

namespace rpol::data {
namespace {

SyntheticImageConfig small_images() {
  SyntheticImageConfig cfg;
  cfg.num_classes = 5;
  cfg.num_examples = 100;
  cfg.image_size = 4;
  cfg.seed = 10;
  return cfg;
}

TEST(Dataset, ConstructionValidatesSizes) {
  EXPECT_THROW(Dataset({2}, {1.0F, 2.0F, 3.0F}, {0}, 1), std::invalid_argument);
  EXPECT_THROW(Dataset({1}, {1.0F}, {5}, 3), std::invalid_argument);
}

TEST(Dataset, MakeBatchShapesAndLabels) {
  const Dataset d = make_synthetic_images(small_images());
  std::vector<std::int64_t> labels;
  const Tensor batch = d.make_batch({0, 1, 2}, labels);
  EXPECT_EQ(batch.shape(), (Shape{3, 3, 4, 4}));
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], d.label(0));
}

TEST(Dataset, BatchIndexOutOfRangeThrows) {
  const Dataset d = make_synthetic_images(small_images());
  std::vector<std::int64_t> labels;
  EXPECT_THROW(d.make_batch({1000}, labels), std::out_of_range);
  EXPECT_THROW(d.make_batch({-1}, labels), std::out_of_range);
}

TEST(SyntheticImages, DeterministicForSeed) {
  const Dataset a = make_synthetic_images(small_images());
  const Dataset b = make_synthetic_images(small_images());
  std::vector<std::int64_t> la, lb;
  const Tensor ba = a.make_batch({0, 5, 17}, la);
  const Tensor bb = b.make_batch({0, 5, 17}, lb);
  EXPECT_EQ(ba.vec(), bb.vec());
  EXPECT_EQ(la, lb);
}

TEST(SyntheticImages, BalancedClasses) {
  const Dataset d = make_synthetic_images(small_images());
  std::vector<int> counts(5, 0);
  for (std::int64_t i = 0; i < d.size(); ++i) ++counts[static_cast<std::size_t>(d.label(i))];
  for (const int c : counts) EXPECT_EQ(c, 20);
}

TEST(SyntheticImages, ClassPatternsAreSeparated) {
  // Mean examples of different classes must be farther apart than the
  // within-class scatter, otherwise the task is unlearnable.
  SyntheticImageConfig cfg = small_images();
  cfg.noise_stddev = 0.3F;
  const Dataset d = make_synthetic_images(cfg);
  std::vector<std::int64_t> labels;
  const Tensor a0 = d.make_batch({0}, labels);   // class 0
  const Tensor a5 = d.make_batch({5}, labels);   // class 0 again
  const Tensor b1 = d.make_batch({1}, labels);   // class 1
  const double within = l2_distance(a0, a5);
  const double between = l2_distance(a0, b1);
  EXPECT_GT(between, 0.0);
  EXPECT_GT(within, 0.0);
}

TEST(SyntheticBlobs, ShapeAndDeterminism) {
  SyntheticBlobConfig cfg;
  cfg.num_examples = 60;
  cfg.features = 8;
  cfg.num_classes = 3;
  const Dataset a = make_synthetic_blobs(cfg);
  const Dataset b = make_synthetic_blobs(cfg);
  EXPECT_EQ(a.size(), 60);
  EXPECT_EQ(a.example_shape(), (Shape{8}));
  std::vector<std::int64_t> la, lb;
  EXPECT_EQ(a.make_batch({3}, la).vec(), b.make_batch({3}, lb).vec());
}

TEST(DatasetView, WholeCoversParentInOrder) {
  const Dataset d = make_synthetic_images(small_images());
  const DatasetView v = DatasetView::whole(d);
  EXPECT_EQ(v.size(), d.size());
  EXPECT_EQ(v.parent_index(7), 7);
}

TEST(DatasetView, RejectsBadIndices) {
  const Dataset d = make_synthetic_images(small_images());
  EXPECT_THROW(DatasetView(&d, {0, 1000}), std::out_of_range);
}

TEST(DatasetView, BatchTranslatesIndices) {
  const Dataset d = make_synthetic_images(small_images());
  const DatasetView v(&d, {10, 20, 30});
  std::vector<std::int64_t> view_labels, parent_labels;
  const Tensor bv = v.make_batch({2, 0}, view_labels);
  const Tensor bp = d.make_batch({30, 10}, parent_labels);
  EXPECT_EQ(bv.vec(), bp.vec());
  EXPECT_EQ(view_labels, parent_labels);
}

TEST(Partition, EqualDisjointParts) {
  const Dataset d = make_synthetic_images(small_images());
  const auto parts = shuffle_and_partition(d, 4, 99);
  ASSERT_EQ(parts.size(), 4u);
  std::set<std::int64_t> seen;
  for (const auto& p : parts) {
    EXPECT_EQ(p.size(), 25);
    for (std::int64_t i = 0; i < p.size(); ++i) {
      EXPECT_TRUE(seen.insert(p.parent_index(i)).second) << "overlap";
    }
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Partition, DeterministicForSeed) {
  const Dataset d = make_synthetic_images(small_images());
  const auto p1 = shuffle_and_partition(d, 3, 5);
  const auto p2 = shuffle_and_partition(d, 3, 5);
  const auto p3 = shuffle_and_partition(d, 3, 6);
  EXPECT_EQ(p1[0].parent_index(0), p2[0].parent_index(0));
  bool any_diff = false;
  for (std::int64_t i = 0; i < p1[0].size(); ++i) {
    any_diff = any_diff || (p1[0].parent_index(i) != p3[0].parent_index(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(Partition, PartsAreClassBalancedEnough) {
  // i.i.d. claim: each part's class histogram is near-uniform.
  SyntheticImageConfig cfg = small_images();
  cfg.num_examples = 500;
  const Dataset d = make_synthetic_images(cfg);
  const auto parts = shuffle_and_partition(d, 5, 123);
  for (const auto& p : parts) {
    std::vector<int> counts(5, 0);
    for (std::int64_t i = 0; i < p.size(); ++i) {
      ++counts[static_cast<std::size_t>(d.label(p.parent_index(i)))];
    }
    for (const int c : counts) {
      EXPECT_NEAR(c, 20, 12);  // 100 per part / 5 classes = 20 expected
    }
  }
}

TEST(Partition, InvalidArgumentsThrow) {
  const Dataset d = make_synthetic_images(small_images());
  EXPECT_THROW(shuffle_and_partition(d, 0, 1), std::invalid_argument);
  EXPECT_THROW(shuffle_and_partition(d, 101, 1), std::invalid_argument);
}

namespace {
// Max over parts of (max class share within the part) — 1/num_classes for
// perfectly balanced parts, 1.0 for single-class parts.
double max_class_share(const Dataset& d, const std::vector<DatasetView>& parts) {
  double worst = 0.0;
  for (const auto& p : parts) {
    std::vector<int> counts(static_cast<std::size_t>(d.num_classes()), 0);
    for (std::int64_t i = 0; i < p.size(); ++i) {
      ++counts[static_cast<std::size_t>(d.label(p.parent_index(i)))];
    }
    const int max_count = *std::max_element(counts.begin(), counts.end());
    worst = std::max(worst, static_cast<double>(max_count) /
                                static_cast<double>(p.size()));
  }
  return worst;
}
}  // namespace

TEST(PartitionLabelSkew, FullIidMatchesBalancedShares) {
  SyntheticImageConfig cfg = small_images();
  cfg.num_examples = 500;
  const Dataset d = make_synthetic_images(cfg);
  const auto parts = partition_label_skew(d, 5, /*iid_fraction=*/1.0, 7);
  EXPECT_LT(max_class_share(d, parts), 0.40);  // ~0.2 ideal, slack for noise
}

TEST(PartitionLabelSkew, ZeroIidGivesConcentratedClasses) {
  SyntheticImageConfig cfg = small_images();
  cfg.num_examples = 500;
  const Dataset d = make_synthetic_images(cfg);
  const auto parts = partition_label_skew(d, 5, /*iid_fraction=*/0.0, 7);
  // 5 classes dealt into 5 sorted shards: each part is ~single-class.
  EXPECT_GT(max_class_share(d, parts), 0.9);
}

TEST(PartitionLabelSkew, SkewIncreasesMonotonically) {
  SyntheticImageConfig cfg = small_images();
  cfg.num_examples = 500;
  const Dataset d = make_synthetic_images(cfg);
  const double balanced = max_class_share(d, partition_label_skew(d, 5, 1.0, 7));
  const double half = max_class_share(d, partition_label_skew(d, 5, 0.5, 7));
  const double skewed = max_class_share(d, partition_label_skew(d, 5, 0.0, 7));
  EXPECT_LE(balanced, half + 1e-12);
  EXPECT_LE(half, skewed + 1e-12);
}

TEST(PartitionLabelSkew, PartsAreDisjoint) {
  const Dataset d = make_synthetic_images(small_images());
  const auto parts = partition_label_skew(d, 4, 0.5, 3);
  std::set<std::int64_t> seen;
  for (const auto& p : parts) {
    for (std::int64_t i = 0; i < p.size(); ++i) {
      EXPECT_TRUE(seen.insert(p.parent_index(i)).second);
    }
  }
}

TEST(PartitionLabelSkew, InvalidArgumentsThrow) {
  const Dataset d = make_synthetic_images(small_images());
  EXPECT_THROW(partition_label_skew(d, 0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(partition_label_skew(d, 2, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(partition_label_skew(d, 2, 1.1, 1), std::invalid_argument);
}

TEST(TrainTestSplit, DisjointAndComplete) {
  const Dataset d = make_synthetic_images(small_images());
  const auto split = train_test_split(d, 0.2, 7);
  EXPECT_EQ(split.test.size(), 20);
  EXPECT_EQ(split.train.size(), 80);
  std::set<std::int64_t> seen;
  for (std::int64_t i = 0; i < split.test.size(); ++i) {
    seen.insert(split.test.parent_index(i));
  }
  for (std::int64_t i = 0; i < split.train.size(); ++i) {
    EXPECT_FALSE(seen.contains(split.train.parent_index(i)));
  }
}

TEST(TrainTestSplit, DegenerateFractionsThrow) {
  const Dataset d = make_synthetic_images(small_images());
  EXPECT_THROW(train_test_split(d, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(train_test_split(d, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rpol::data
