// Tests for the compact (Merkle) commitment construction of Sec. V-B:
// membership proofs bind the right hashes at the right positions, byte
// sizes beat the hash-list construction for long epochs, and forgeries of
// every flavour are rejected.

#include <gtest/gtest.h>

#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

struct CompactFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/121, /*steps=*/21, /*interval=*/3);  // 7 transitions
    view = data::DatasetView::whole(task.dataset);
    context = task.context(2468, view);
    StepExecutor executor(task.factory, task.hp);
    sim::DeviceExecution device(sim::device_ga10(), 12);
    HonestPolicy honest;
    trace = honest.produce_trace(executor, context, device);
    full_v1 = commit_v1(trace);
    lsh::LshConfig cfg{{1.0, 2, 3},
                       static_cast<std::int64_t>(trace.checkpoints[0].model.size()),
                       9};
    hasher = std::make_unique<lsh::PStableLsh>(cfg);
    full_v2 = commit_v2(trace, *hasher);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
  EpochTrace trace;
  Commitment full_v1;
  Commitment full_v2;
  std::unique_ptr<lsh::PStableLsh> hasher;
};

TEST_F(CompactFixture, AllTransitionsProveAndVerifyV1) {
  const CompactCommitment compact = compact_commitment(full_v1);
  EXPECT_EQ(compact.num_checkpoints, 8);
  for (std::int64_t j = 0; j + 1 < compact.num_checkpoints; ++j) {
    const TransitionProof proof = make_transition_proof(full_v1, j);
    EXPECT_TRUE(verify_transition_proof(compact, proof)) << "transition " << j;
    // The proven hashes are the real checkpoint hashes.
    EXPECT_TRUE(digest_equal(
        proof.in_hash, hash_state(trace.checkpoints[static_cast<std::size_t>(j)])));
    EXPECT_TRUE(digest_equal(
        proof.out_hash,
        hash_state(trace.checkpoints[static_cast<std::size_t>(j + 1)])));
  }
}

TEST_F(CompactFixture, AllTransitionsProveAndVerifyV2) {
  const CompactCommitment compact = compact_commitment(full_v2);
  for (std::int64_t j = 0; j + 1 < compact.num_checkpoints; ++j) {
    const TransitionProof proof = make_transition_proof(full_v2, j);
    EXPECT_TRUE(verify_transition_proof(compact, proof)) << "transition " << j;
    EXPECT_TRUE(proof.out_lsh ==
                full_v2.lsh_digests[static_cast<std::size_t>(j + 1)]);
  }
}

TEST_F(CompactFixture, CompactBeatsHashListForLongEpochs) {
  // 8 checkpoints: compact root (73 B) vs 8 x 32 B of hashes; the per-proof
  // overhead is logarithmic, so sampled verification transfers less overall
  // once epochs are long and q is small.
  const CompactCommitment compact = compact_commitment(full_v1);
  EXPECT_LT(compact.byte_size(), full_v1.byte_size());
  const TransitionProof proof = make_transition_proof(full_v1, 3);
  // log2(8) = 3 levels => 3 siblings per membership proof.
  EXPECT_EQ(proof.in_membership.siblings.size(), 3u);
}

TEST_F(CompactFixture, WrongTransitionIndexRejected) {
  const CompactCommitment compact = compact_commitment(full_v1);
  TransitionProof proof = make_transition_proof(full_v1, 2);
  proof.transition = 3;  // relabel a valid proof
  EXPECT_FALSE(verify_transition_proof(compact, proof));
}

TEST_F(CompactFixture, TamperedHashRejected) {
  const CompactCommitment compact = compact_commitment(full_v1);
  TransitionProof proof = make_transition_proof(full_v1, 1);
  proof.out_hash[0] ^= 1;
  EXPECT_FALSE(verify_transition_proof(compact, proof));
}

TEST_F(CompactFixture, TamperedMembershipRejected) {
  const CompactCommitment compact = compact_commitment(full_v1);
  TransitionProof proof = make_transition_proof(full_v1, 1);
  proof.in_membership.siblings[0][5] ^= 1;
  EXPECT_FALSE(verify_transition_proof(compact, proof));
}

TEST_F(CompactFixture, SwappedLshDigestRejectedV2) {
  const CompactCommitment compact = compact_commitment(full_v2);
  TransitionProof proof = make_transition_proof(full_v2, 1);
  // Substitute the LSH digest of a different checkpoint (with its proof
  // left pointing at position 2): position binding must catch it.
  const TransitionProof other = make_transition_proof(full_v2, 4);
  proof.out_lsh = other.out_lsh;
  EXPECT_FALSE(verify_transition_proof(compact, proof));
  proof.out_lsh_membership = other.out_lsh_membership;
  EXPECT_FALSE(verify_transition_proof(compact, proof));
}

TEST_F(CompactFixture, OutOfRangeInputsThrowOrFail) {
  EXPECT_THROW(make_transition_proof(full_v1, -1), std::out_of_range);
  EXPECT_THROW(make_transition_proof(full_v1, 7), std::out_of_range);
  const CompactCommitment compact = compact_commitment(full_v1);
  TransitionProof proof = make_transition_proof(full_v1, 0);
  proof.transition = 99;
  EXPECT_FALSE(verify_transition_proof(compact, proof));
}

// ---------------------------------------------------------------------------
// verify_compact: the full manager path over the Merkle construction.

struct CompactVerifierFixture : public CompactFixture {
  VerifyResult run_compact(const Commitment& full, const EpochTrace& tr,
                           bool use_lsh) {
    VerifierConfig cfg;
    cfg.samples_q = 3;
    cfg.beta = 2e-3;
    cfg.use_lsh = use_lsh;
    if (use_lsh) cfg.lsh_config = hasher->config();
    Verifier verifier(task.factory, task.hp, cfg);
    sim::DeviceExecution manager_device(sim::device_g3090(), 321);
    return verifier.verify_compact(compact_commitment(full), full, tr, context,
                                   hash_state(context.initial), manager_device);
  }
};

TEST_F(CompactVerifierFixture, HonestAcceptedV1AndV2) {
  EXPECT_TRUE(run_compact(full_v1, trace, false).accepted);
  EXPECT_TRUE(run_compact(full_v2, trace, true).accepted);
}

TEST_F(CompactVerifierFixture, SpooferRejected) {
  StepExecutor executor(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_ga10(), 55);
  SpoofPolicy spoof(0.15, 0.5);
  const EpochTrace bad = spoof.produce_trace(executor, context, device);
  const Commitment bad_full = commit_v1(bad);
  EXPECT_FALSE(run_compact(bad_full, bad, false).accepted);
}

TEST_F(CompactVerifierFixture, ForeignInitialStateRejected) {
  EpochContext foreign = context;
  foreign.initial.model[0] += 1.0F;
  StepExecutor executor(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_ga10(), 66);
  HonestPolicy honest;
  const EpochTrace foreign_trace = honest.produce_trace(executor, foreign, device);
  const Commitment foreign_full = commit_v1(foreign_trace);
  VerifierConfig cfg;
  cfg.samples_q = 3;
  cfg.beta = 2e-3;
  Verifier verifier(task.factory, task.hp, cfg);
  sim::DeviceExecution manager_device(sim::device_g3090(), 77);
  const VerifyResult result = verifier.verify_compact(
      compact_commitment(foreign_full), foreign_full, foreign_trace, context,
      hash_state(context.initial), manager_device);
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.checks.empty());
}

TEST_F(CompactVerifierFixture, VersionMismatchRejected) {
  VerifierConfig cfg;
  cfg.samples_q = 3;
  cfg.beta = 2e-3;
  cfg.use_lsh = false;
  Verifier verifier(task.factory, task.hp, cfg);
  sim::DeviceExecution manager_device(sim::device_g3090(), 88);
  // A v2 compact commitment fed to a v1-configured verifier is rejected.
  const VerifyResult result = verifier.verify_compact(
      compact_commitment(full_v2), full_v2, trace, context,
      hash_state(context.initial), manager_device);
  EXPECT_FALSE(result.accepted);
}

TEST_F(CompactVerifierFixture, CompactBindingIsUniquePerCommitment) {
  const Digest a = compact_commitment_binding(compact_commitment(full_v1));
  const Digest b = compact_commitment_binding(compact_commitment(full_v2));
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(MerkleProofPath, PathIndexMatchesLeafIndex) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 13; ++i) {
    Bytes b;
    append_u64(b, static_cast<std::uint64_t>(i));
    leaves.push_back(sha256(b));
  }
  const MerkleTree tree(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(tree.prove(i).path_index(), i);
  }
}

}  // namespace
}  // namespace rpol::core
