// Tests for the resource & health observability layer: tagged memory
// accounting (obs/mem.h), windowed metric aggregation (obs/window.h), the
// per-worker health registry (obs/health.h), and the rpol.health.v1
// export/parse round trip (obs/health_read.h).

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/health.h"
#include "obs/health_read.h"
#include "obs/mem.h"
#include "obs/obs.h"
#include "obs/window.h"

namespace rpol::obs {
namespace {

// ---------------------------------------------------------------------------
// Tagged memory accounting

TEST(MemTags, NamesRoundTrip) {
  for (int t = 0; t < kNumMemTags; ++t) {
    const MemTag tag = static_cast<MemTag>(t);
    EXPECT_EQ(mem_tag_from_name(mem_tag_name(tag)), tag);
  }
  EXPECT_STREQ(mem_tag_name(MemTag::kCheckpoint), "checkpoint");
  EXPECT_STREQ(mem_tag_name(MemTag::kPackCache), "packcache");
  EXPECT_EQ(mem_tag_from_name("no-such-tag"), MemTag::kNumTags);
}

TEST(MemTags, AddSubTrackCurrentPeakTotal) {
  mem_reset();
  mem_add(MemTag::kWire, 100);
  mem_add(MemTag::kWire, 50);
  mem_sub(MemTag::kWire, 120);
  const MemStats s = mem_stats(MemTag::kWire);
  EXPECT_EQ(s.current_bytes, 30U);
  EXPECT_EQ(s.peak_bytes, 150U);
  EXPECT_EQ(s.total_bytes, 150U);
  mem_reset();
}

TEST(MemTags, SubClampsAtZeroInsteadOfWrapping) {
  mem_reset();
  mem_add(MemTag::kScratch, 10);
  mem_sub(MemTag::kScratch, 1'000'000);  // unmatched release
  EXPECT_EQ(mem_stats(MemTag::kScratch).current_bytes, 0U);
  mem_reset();
}

TEST(MemScopeTest, ReleasesOnDestructionAndSetIsDeltaAccounted) {
  mem_reset();
  {
    MemScope scope(MemTag::kMerkle, 1000);
    EXPECT_EQ(mem_stats(MemTag::kMerkle).current_bytes, 1000U);
    scope.set(400);  // shrink: subtracts the 600-byte delta
    EXPECT_EQ(mem_stats(MemTag::kMerkle).current_bytes, 400U);
    scope.set(700);  // grow: adds 300
    EXPECT_EQ(mem_stats(MemTag::kMerkle).current_bytes, 700U);
    EXPECT_EQ(scope.bytes(), 700U);
  }
  EXPECT_EQ(mem_stats(MemTag::kMerkle).current_bytes, 0U);
  // Peak and cumulative survive the release.
  EXPECT_EQ(mem_stats(MemTag::kMerkle).peak_bytes, 1000U);
  mem_reset();
}

TEST(MemScopeTest, MoveTransfersTheBalance) {
  mem_reset();
  MemScope a(MemTag::kCheckpoint, 256);
  MemScope b = std::move(a);
  EXPECT_EQ(a.bytes(), 0U);
  EXPECT_EQ(b.bytes(), 256U);
  EXPECT_EQ(mem_stats(MemTag::kCheckpoint).current_bytes, 256U);
  b.release();
  EXPECT_EQ(mem_stats(MemTag::kCheckpoint).current_bytes, 0U);
  mem_reset();
}

TEST(MemTags, TaggedTotalSumsCurrentAcrossTags) {
  mem_reset();
  mem_add(MemTag::kWire, 5);
  mem_add(MemTag::kOther, 7);
  EXPECT_EQ(mem_tagged_total(), 12U);
  EXPECT_EQ(mem_stats_all().size(), static_cast<std::size_t>(kNumMemTags));
  mem_reset();
}

// ---------------------------------------------------------------------------
// Process RSS

TEST(ProcRss, ReadsNonZeroOnLinux) {
  const RssSample s = read_proc_rss();
#ifdef __linux__
  ASSERT_TRUE(s.valid);
  EXPECT_GT(s.vm_rss_bytes, 0U);
  EXPECT_GE(s.vm_hwm_bytes, s.vm_rss_bytes);
#else
  EXPECT_FALSE(s.valid);
#endif
}

TEST(RssSamplerTest, SamplesAndSummarizes) {
  RssSampler sampler(std::chrono::milliseconds(1), /*window=*/8);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.stop();
  sampler.stop();  // idempotent
  const RssSampler::Summary s = sampler.summary();
#ifdef __linux__
  ASSERT_TRUE(s.valid);
  EXPECT_GT(s.samples, 1U);
  EXPECT_GT(s.baseline_bytes, 0U);
  EXPECT_GE(s.peak_bytes, s.min_bytes);
  EXPECT_EQ(s.growth_bytes,
            s.peak_bytes > s.baseline_bytes ? s.peak_bytes - s.baseline_bytes
                                            : 0U);
  // Ring is bounded by the window passed at construction.
  EXPECT_LE(sampler.window().size(), 8U);
#else
  EXPECT_FALSE(s.valid);
#endif
}

// ---------------------------------------------------------------------------
// Windowed aggregation

TEST(CounterWindowTest, DeltaAndRateOverTheRing) {
  CounterWindow w(4);
  EXPECT_EQ(w.window_delta(), 0U);  // < 2 samples
  w.sample(10);
  w.sample(30);
  w.sample(60);
  EXPECT_EQ(w.window_delta(), 50U);
  EXPECT_DOUBLE_EQ(w.rate_per_sample(), 25.0);
  // Fill past capacity: the oldest readings fall out of the window.
  w.sample(100);
  w.sample(140);
  EXPECT_EQ(w.size(), 4U);
  EXPECT_EQ(w.oldest(), 30U);
  EXPECT_EQ(w.latest(), 140U);
  EXPECT_EQ(w.window_delta(), 110U);
}

TEST(CounterWindowTest, SaturatesWhenCounterWasDrainedMidWindow) {
  CounterWindow w(4);
  w.sample(500);
  w.sample(20);  // counter drained between samples
  EXPECT_EQ(w.window_delta(), 0U);
}

TEST(CounterWindowTest, ObservesARealCounter) {
  Counter c("test.window.counter");
  CounterWindow w(8);
  w.sample(c);
  c.add(5);
  c.add(7);
  w.sample(c);
  EXPECT_EQ(w.window_delta(), 12U);
}

TEST(HistogramWindowTest, WindowedPercentileSeesOnlyWindowValues) {
  Histogram h("test.window.hist");
  HistogramWindow w(4);
  // Old regime: tiny values, recorded before the window opens.
  for (int i = 0; i < 100; ++i) h.record(1);
  w.sample(h);
  // New regime inside the window: large values.
  for (int i = 0; i < 50; ++i) h.record(5000);
  w.sample(h);

  EXPECT_EQ(w.windowed_count(), 50U);
  // The cumulative histogram's median is still 1, but the windowed median
  // must reflect only the in-window values (bucketed, so approximate).
  EXPECT_EQ(h.approx_percentile(50.0), 1U);
  EXPECT_GE(w.windowed_percentile(50.0), 4096U);
  EXPECT_DOUBLE_EQ(w.rate_per_sample(), 50.0);
}

TEST(HistogramWindowTest, EmptyAndSingleSampleAreZero) {
  HistogramWindow w(3);
  EXPECT_EQ(w.windowed_count(), 0U);
  EXPECT_EQ(w.windowed_percentile(99.0), 0U);
  Histogram h("test.window.hist2");
  h.record(42);
  w.sample(h);
  EXPECT_EQ(w.windowed_count(), 0U);  // still < 2 snapshots
}

// ---------------------------------------------------------------------------
// Health registry: decision semantics (must match the legacy pool strikes)

HealthOutcome ok_outcome() {
  HealthOutcome o;
  o.participated = true;
  o.accepted = true;
  return o;
}

HealthOutcome failed_outcome() {
  HealthOutcome o;
  o.participated = true;
  o.accepted = false;
  return o;
}

TEST(HealthRegistryTest, ConsecutiveFailuresEvictExactlyAtThreshold) {
  HealthRegistry reg(/*eviction_threshold=*/3, /*workers=*/2);
  EXPECT_FALSE(reg.record(0, failed_outcome()));
  EXPECT_FALSE(reg.record(0, failed_outcome()));
  EXPECT_EQ(reg.consecutive_failures(0), 2);
  EXPECT_FALSE(reg.evicted(0));
  // The third consecutive failure evicts, and record() reports it exactly
  // once so callers can bump their eviction counters.
  EXPECT_TRUE(reg.record(0, failed_outcome()));
  EXPECT_TRUE(reg.evicted(0));
  EXPECT_EQ(reg.state(0), HealthState::kEvicted);
  EXPECT_EQ(reg.score(0), 0.0);
  // Further outcomes for an evicted worker are ignored (eviction is
  // permanent, matching the pools' legacy behavior).
  EXPECT_FALSE(reg.record(0, ok_outcome()));
  EXPECT_TRUE(reg.evicted(0));
}

TEST(HealthRegistryTest, OneAcceptedSessionClearsTheStrikes) {
  HealthRegistry reg(3, 1);
  reg.record(0, failed_outcome());
  reg.record(0, failed_outcome());
  reg.record(0, ok_outcome());
  EXPECT_EQ(reg.consecutive_failures(0), 0);
  reg.record(0, failed_outcome());
  reg.record(0, failed_outcome());
  EXPECT_FALSE(reg.evicted(0));  // non-consecutive failures never evict
}

TEST(HealthRegistryTest, NonParticipationCountsAsFailure) {
  HealthRegistry reg(1, 1);  // threshold 1: single failure evicts
  HealthOutcome absent;      // participated=false, accepted=false
  EXPECT_TRUE(reg.record(0, absent));
  EXPECT_TRUE(reg.evicted(0));
}

// The strike budget is split by failure KIND (link loss vs verify
// rejection): a worker alternating between the two never accrues
// eviction_threshold consecutive strikes of EITHER kind, even though its
// overall consecutive-failure streak (reporting only) keeps growing. Before
// the split, transport loss and rejection burned one shared budget and a
// flaky-but-honest worker on a lossy link could be evicted as "byzantine".
TEST(HealthRegistryTest, MixedLossAndRejectionStreaksDoNotEvict) {
  HealthRegistry reg(/*eviction_threshold=*/3, /*workers=*/1);
  HealthOutcome lost;  // participated=false: never delivered
  // Alternate the kinds so NEITHER counter reaches the threshold of 3,
  // even though the overall failure streak (4) is past it — under the old
  // shared budget this worker would already be gone.
  for (int i = 0; i < 4; ++i) {
    const HealthOutcome o = (i % 2 == 0) ? lost : failed_outcome();
    EXPECT_FALSE(reg.record(0, o)) << "at outcome " << i;
  }
  EXPECT_FALSE(reg.evicted(0));
  // Reporting still sees the whole mixed streak; each kind-counter holds
  // only its own share.
  EXPECT_EQ(reg.consecutive_failures(0), 4);
  EXPECT_EQ(reg.consecutive_losses(0), 2);
  EXPECT_EQ(reg.consecutive_rejections(0), 2);
  // One accepted session clears every counter at once.
  reg.record(0, ok_outcome());
  EXPECT_EQ(reg.consecutive_failures(0), 0);
  EXPECT_EQ(reg.consecutive_losses(0), 0);
  EXPECT_EQ(reg.consecutive_rejections(0), 0);
}

TEST(HealthRegistryTest, SingleKindStreaksStillEvictAtThreshold) {
  // Pure transport-loss streak: evicts at the threshold, exactly as the
  // legacy shared-budget registry did.
  HealthRegistry loss_reg(3, 1);
  HealthOutcome lost;
  EXPECT_FALSE(loss_reg.record(0, lost));
  EXPECT_FALSE(loss_reg.record(0, lost));
  EXPECT_TRUE(loss_reg.record(0, lost));
  EXPECT_TRUE(loss_reg.evicted(0));

  // Pure rejection streak, with interleaved losses that must not delay it:
  // the rejection counter marches to the threshold on its own.
  HealthRegistry rej_reg(3, 1);
  EXPECT_FALSE(rej_reg.record(0, failed_outcome()));
  EXPECT_FALSE(rej_reg.record(0, lost));  // loss strike 1 of 3
  EXPECT_FALSE(rej_reg.record(0, failed_outcome()));
  EXPECT_TRUE(rej_reg.record(0, failed_outcome()));  // rejection 3 of 3
  EXPECT_TRUE(rej_reg.evicted(0));
}

TEST(HealthRegistryTest, ScoresRankCleanWorkersAboveStrugglingOnes) {
  HealthRegistry reg(3, 3);
  // Fresh workers start at 100 / healthy.
  EXPECT_EQ(reg.score(2), 100.0);
  EXPECT_EQ(reg.state(2), HealthState::kHealthy);

  for (int i = 0; i < 8; ++i) {
    HealthOutcome clean = ok_outcome();
    clean.latency_ns = 1'000'000;
    reg.record(0, clean);

    HealthOutcome flaky = (i % 2 == 0) ? failed_outcome() : ok_outcome();
    flaky.retransmissions = 3;
    flaky.latency_ns = (i % 2 == 0) ? 9'000'000 : 1'000'000;
    reg.record(1, flaky);
  }
  EXPECT_GT(reg.score(0), 90.0);
  EXPECT_LT(reg.score(1), reg.score(0));
  EXPECT_EQ(reg.state(1), HealthState::kDegraded);

  const HealthRegistry::WindowStats s = reg.window_stats(1);
  EXPECT_EQ(s.total, 8U);
  EXPECT_EQ(s.accepted, 4U);
  EXPECT_EQ(s.retransmissions, 24U);
  EXPECT_EQ(s.min_latency_ns, 1'000'000U);
  EXPECT_EQ(s.max_latency_ns, 9'000'000U);
}

TEST(HealthRegistryTest, WindowIsBoundedAndForgetsOldOutcomes) {
  HealthRegistry reg(100, 1);  // threshold high enough to never evict
  for (std::size_t i = 0; i < HealthRegistry::kWindow; ++i) {
    reg.record(0, failed_outcome());
  }
  const double bad = reg.score(0);
  // A full window of clean sessions pushes every failure out of the ring.
  for (std::size_t i = 0; i < HealthRegistry::kWindow; ++i) {
    reg.record(0, ok_outcome());
  }
  EXPECT_EQ(reg.window_stats(0).total, HealthRegistry::kWindow);
  EXPECT_EQ(reg.window_stats(0).accepted, HealthRegistry::kWindow);
  EXPECT_GT(reg.score(0), bad);
  EXPECT_EQ(reg.state(0), HealthState::kHealthy);
}

TEST(HealthRegistryTest, OutOfRangeWorkersAreIgnored) {
  HealthRegistry reg(3, 2);
  EXPECT_FALSE(reg.record(7, failed_outcome()));
  EXPECT_TRUE(reg.evicted(7));  // out-of-range reads conservatively evicted
  EXPECT_EQ(reg.score(7), 0.0);
}

TEST(HealthStateNames, RoundTripAndConservativeFallback) {
  EXPECT_EQ(health_state_from_name(health_state_name(HealthState::kHealthy)),
            HealthState::kHealthy);
  EXPECT_EQ(health_state_from_name(health_state_name(HealthState::kDegraded)),
            HealthState::kDegraded);
  EXPECT_EQ(health_state_from_name("garbage"), HealthState::kEvicted);
}

// ---------------------------------------------------------------------------
// rpol.health.v1 export -> parse round trip

TEST(HealthExport, JsonlRoundTripsThroughTheReader) {
  mem_reset();
  mem_add(MemTag::kCheckpoint, 4096);
  mem_add(MemTag::kWire, 128);

  HealthRegistry reg(3, 3);
  for (int i = 0; i < 3; ++i) reg.record(0, ok_outcome());
  reg.record(1, failed_outcome());
  for (int i = 0; i < 3; ++i) reg.record(2, failed_outcome());

  RssSampler::Summary rss;
  rss.valid = true;
  rss.samples = 10;
  rss.baseline_bytes = 1000;
  rss.min_bytes = 900;
  rss.peak_bytes = 9192;
  rss.last_bytes = 5000;
  rss.growth_bytes = 8192;

  const std::string path = ::testing::TempDir() + "health_roundtrip.jsonl";
  ASSERT_TRUE(export_health_jsonl_file(path, reg, &rss));

  const HealthReport report = load_health_file(path);
  EXPECT_EQ(report.schema, "rpol.health.v1");
  EXPECT_EQ(report.eviction_threshold, 3);
  EXPECT_EQ(report.workers_declared, 3U);
  ASSERT_EQ(report.workers.size(), 3U);

  EXPECT_EQ(report.workers[0].state, HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(report.workers[0].score, reg.score(0));
  EXPECT_EQ(report.workers[0].window.accepted, 3U);
  EXPECT_EQ(report.workers[1].state, HealthState::kDegraded);
  EXPECT_EQ(report.workers[1].consecutive_failures, 1);
  EXPECT_TRUE(report.workers[2].evicted);
  EXPECT_EQ(report.workers[2].score, 0.0);

  ASSERT_EQ(report.mem.size(), static_cast<std::size_t>(kNumMemTags));
  EXPECT_EQ(report.mem[0].tag, "checkpoint");
  EXPECT_EQ(report.mem[0].stats.current_bytes, 4096U);
  EXPECT_EQ(report.mem[2].tag, "wire");
  EXPECT_EQ(report.mem[2].stats.peak_bytes, 128U);

  ASSERT_TRUE(report.has_rss);
  EXPECT_TRUE(report.rss.valid);
  EXPECT_EQ(report.rss.growth_bytes, 8192U);
  // Coverage: (4096 + 128) tagged peak over 8192 growth.
  EXPECT_EQ(report.tagged_peak_total(), 4224U);
  EXPECT_NEAR(report.coverage_vs_rss_growth(), 4224.0 / 8192.0, 1e-12);

  std::remove(path.c_str());
  mem_reset();
}

TEST(HealthExport, UnknownLineTypesAreSkippedAndDamageIsTolerated) {
  const std::string doc =
      "{\"type\":\"meta\",\"schema\":\"rpol.health.v1\",\"wall_unix_ns\":1,"
      "\"eviction_threshold\":3,\"workers\":0}\n"
      "{\"type\":\"future-extension\",\"anything\":true}\n";
  const HealthReport report = parse_health_jsonl(doc);
  EXPECT_EQ(report.schema, "rpol.health.v1");
  EXPECT_TRUE(report.workers.empty());
  EXPECT_EQ(report.skipped_lines, 0U);

  // Interior damage: tolerant mode skips and counts, strict mode names the
  // line.
  const std::string damaged =
      "{\"type\":\"meta\",\"schema\":\"rpol.health.v1\"}\n"
      "{half a worker line\n"
      "{\"type\":\"worker\",\"worker\":0,\"score\":100}\n";
  const HealthReport tolerant = parse_health_jsonl(damaged);
  EXPECT_EQ(tolerant.skipped_lines, 1U);
  ASSERT_EQ(tolerant.parse_errors.size(), 1U);
  EXPECT_NE(tolerant.parse_errors[0].find("line 2"), std::string::npos);
  ASSERT_EQ(tolerant.workers.size(), 1U);  // parse continued past the damage
  EXPECT_THROW(parse_health_jsonl(damaged, /*strict=*/true),
               std::runtime_error);
}

TEST(HealthExport, TruncatedFinalLineIsFlaggedNotFatal) {
  // A final line with no trailing newline that fails to parse is a write
  // cut mid-append (a reader racing the exporter), not corruption: tolerant
  // mode keeps everything before it and flags the tail.
  const std::string meta =
      "{\"type\":\"meta\",\"schema\":\"rpol.health.v1\",\"wall_unix_ns\":1,"
      "\"eviction_threshold\":3,\"workers\":1}";
  const std::string partial = "{\"type\":\"worker\",\"worker\":0,\"sco";
  const std::string doc = meta + "\n" + partial;

  const HealthReport report = parse_health_jsonl(doc);
  EXPECT_EQ(report.schema, "rpol.health.v1");
  EXPECT_TRUE(report.truncated_tail);
  EXPECT_EQ(report.truncated_tail_offset, meta.size() + 1);
  EXPECT_EQ(report.skipped_lines, 0U);  // a cut tail is not interior damage

  // Strict mode throws, naming the byte offset where the cut record starts.
  try {
    parse_health_jsonl(doc, /*strict=*/true);
    FAIL() << "strict parse accepted a truncated tail";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "byte offset " + std::to_string(meta.size() + 1)),
              std::string::npos)
        << e.what();
  }

  // A COMPLETE final line without a trailing newline still parses: only a
  // line that both lacks the newline and fails to parse is a cut.
  const std::string complete =
      meta + "\n" + "{\"type\":\"worker\",\"worker\":0,\"score\":100}";
  const HealthReport whole = parse_health_jsonl(complete);
  EXPECT_FALSE(whole.truncated_tail);
  ASSERT_EQ(whole.workers.size(), 1U);
}

}  // namespace
}  // namespace rpol::obs
