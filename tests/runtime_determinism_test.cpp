// Determinism regression tests for the parallel compute runtime: the
// verification protocol re-executes training and compares checkpoint
// hashes, so every kernel must produce bit-identical results for any
// RPOL_THREADS setting. These tests train the small fixture model under
// 1 and 4 threads and assert the serialized checkpoint bytes and the
// Merkle commitment digests match exactly — the end-to-end property the
// whole runtime design (output-partitioned parallel_for, fixed-order
// accumulation) exists to preserve.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/commitment.h"
#include "core/detsel.h"
#include "core/executor.h"
#include "core/sharded_pool.h"
#include "crypto/sha256.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "obs/health.h"
#include "obs/live.h"
#include "obs/live_read.h"
#include "obs/mem.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "task_fixture.h"
#include "tensor/layout.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"

namespace rpol {
namespace {

// Restores the ambient thread count when a test exits.
struct ThreadGuard {
  int saved = runtime::threads();
  ~ThreadGuard() { runtime::set_threads(saved); }
};

// ---------------------------------------------------------------------------
// parallel_for semantics

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  runtime::set_threads(4);
  std::vector<std::atomic<int>> hits(103);
  runtime::parallel_for(0, 103, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, GrainForcesInlineForSmallRanges) {
  ThreadGuard guard;
  runtime::set_threads(4);
  int calls = 0;  // single fn(lo, hi) call => ran inline, no data race
  runtime::parallel_for(0, 7, 8, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, EmptyRangeDoesNothing) {
  int calls = 0;
  runtime::parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadGuard guard;
  runtime::set_threads(4);
  std::atomic<int> total{0};
  runtime::parallel_for(0, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      runtime::parallel_for(0, 4, 1,
                            [&](std::int64_t l2, std::int64_t h2) {
                              total += static_cast<int>(h2 - l2);
                            });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadGuard guard;
  runtime::set_threads(4);
  EXPECT_THROW(
      runtime::parallel_for(0, 64, 1,
                            [&](std::int64_t lo, std::int64_t) {
                              if (lo >= 0) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
  // Pool must still be functional afterwards.
  std::atomic<int> n{0};
  runtime::parallel_for(0, 16, 1, [&](std::int64_t lo, std::int64_t hi) {
    n += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(n.load(), 16);
}

TEST(ParallelFor, SetThreadsReconfiguresPool) {
  ThreadGuard guard;
  runtime::set_threads(3);
  EXPECT_EQ(runtime::threads(), 3);
  runtime::set_threads(1);
  EXPECT_EQ(runtime::threads(), 1);
  runtime::set_threads(0);  // clamped
  EXPECT_EQ(runtime::threads(), 1);
}

// ---------------------------------------------------------------------------
// Kernel bitwise determinism across thread counts

template <typename Fn>
void expect_bitwise_thread_invariant(Fn&& fn) {
  ThreadGuard guard;
  runtime::set_threads(1);
  const Tensor serial = fn();
  runtime::set_threads(4);
  const Tensor parallel = fn();
  ASSERT_EQ(serial.shape(), parallel.shape());
  EXPECT_EQ(serial.vec(), parallel.vec());  // exact float compare, on purpose
}

TEST(KernelDeterminism, MatmulVariantsAreThreadCountInvariant) {
  Rng rng(11);
  // Odd sizes exercise the row/column tail paths of the blocked kernels.
  const Tensor a = Tensor::randn({37, 53}, rng);
  const Tensor b = Tensor::randn({53, 41}, rng);
  const Tensor at = Tensor::randn({53, 37}, rng);
  const Tensor bt = Tensor::randn({41, 53}, rng);
  expect_bitwise_thread_invariant([&] { return matmul(a, b); });
  expect_bitwise_thread_invariant([&] { return matmul_tn(at, b); });
  expect_bitwise_thread_invariant([&] { return matmul_nt(a, bt); });
}

TEST(KernelDeterminism, MatmulMatchesNaiveReference) {
  Rng rng(13);
  const Tensor a = Tensor::randn({19, 23}, rng);
  const Tensor b = Tensor::randn({23, 29}, rng);
  const Tensor c = matmul(a, b);
  for (std::int64_t i = 0; i < 19; ++i) {
    for (std::int64_t j = 0; j < 29; ++j) {
      double ref = 0.0;
      for (std::int64_t kk = 0; kk < 23; ++kk) {
        ref += static_cast<double>(a.at2(i, kk)) * b.at2(kk, j);
      }
      EXPECT_NEAR(c.at2(i, j), ref, 1e-4) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(KernelDeterminism, ConvKernelsAreThreadCountInvariant) {
  Rng rng(17);
  const Conv2dSpec spec{3, 8, 3, 1, 1};
  const Tensor input = Tensor::randn({2, 3, 9, 9}, rng);
  expect_bitwise_thread_invariant([&] { return im2col(input, spec); });
  const Tensor cols = im2col(input, spec);
  expect_bitwise_thread_invariant(
      [&] { return col2im(cols, spec, input.shape()); });
  // Strided conv exercises the hoisted valid-range arithmetic.
  const Conv2dSpec strided{3, 8, 3, 2, 1};
  expect_bitwise_thread_invariant([&] { return im2col(input, strided); });
  const Tensor scols = im2col(input, strided);
  expect_bitwise_thread_invariant(
      [&] { return col2im(scols, strided, input.shape()); });
}

TEST(KernelDeterminism, SoftmaxRowsIsThreadCountInvariant) {
  Rng rng(19);
  const Tensor logits = Tensor::randn({33, 10}, rng);
  expect_bitwise_thread_invariant([&] { return softmax_rows(logits); });
}

TEST(KernelDeterminism, TrainableDistanceIsThreadCountInvariant) {
  Rng rng(23);
  std::vector<float> a(10'000), b(10'000);
  rng.fill_normal(a, 0.0F, 1.0F);
  rng.fill_normal(b, 0.0F, 1.0F);
  std::vector<bool> mask(10'000, true);
  for (std::size_t i = 0; i < mask.size(); i += 7) mask[i] = false;
  ThreadGuard guard;
  runtime::set_threads(1);
  const double d1 = core::trainable_distance(a, b, mask);
  runtime::set_threads(4);
  const double d4 = core::trainable_distance(a, b, mask);
  EXPECT_EQ(d1, d4);  // exact double compare, on purpose
}

// ---------------------------------------------------------------------------
// End-to-end: checkpoint bytes and commitment digests across thread counts

struct TrainRun {
  std::vector<Bytes> checkpoint_bytes;
  core::Commitment commitment;
  Digest merkle_root{};
};

TrainRun train_fixture_model(int threads) {
  ThreadGuard guard;
  runtime::set_threads(threads);

  data::SyntheticImageConfig data_cfg;
  data_cfg.num_examples = 64;
  data_cfg.image_size = 8;
  data_cfg.seed = 3;
  const data::Dataset dataset = data::make_synthetic_images(data_cfg);
  const data::DatasetView view = data::DatasetView::whole(dataset);

  nn::ModelConfig mc;
  mc.image_size = 8;
  mc.width = 4;
  mc.num_classes = 10;
  core::Hyperparams hp;
  hp.batch_size = 8;
  hp.steps_per_epoch = 4;
  hp.checkpoint_interval = 2;

  core::StepExecutor executor(nn::mini_resnet18_factory(mc, 1), hp);
  const core::DeterministicSelector selector(42);

  core::EpochTrace trace;
  trace.step_of = hp.checkpoint_boundaries();
  trace.checkpoints.push_back(executor.save_state());
  for (std::size_t t = 0; t + 1 < trace.step_of.size(); ++t) {
    const std::int64_t first = trace.step_of[t];
    const std::int64_t count = trace.step_of[t + 1] - first;
    executor.run_steps(first, count, view, selector, nullptr);
    trace.checkpoints.push_back(executor.save_state());
  }

  TrainRun run;
  for (const core::TrainState& s : trace.checkpoints) {
    run.checkpoint_bytes.push_back(core::serialize_state(s));
  }
  run.commitment = core::commit_v1(trace);
  run.merkle_root = core::commitment_merkle_root(run.commitment);
  return run;
}

TEST(TrainingDeterminism, CheckpointBytesAndDigestsMatchAcrossThreadCounts) {
  const TrainRun serial = train_fixture_model(1);
  const TrainRun parallel = train_fixture_model(4);

  ASSERT_EQ(serial.checkpoint_bytes.size(), parallel.checkpoint_bytes.size());
  ASSERT_GE(serial.checkpoint_bytes.size(), 3U);  // initial + 2 transitions
  for (std::size_t i = 0; i < serial.checkpoint_bytes.size(); ++i) {
    EXPECT_EQ(serial.checkpoint_bytes[i], parallel.checkpoint_bytes[i])
        << "checkpoint " << i << " bytes differ across thread counts";
  }
  ASSERT_EQ(serial.commitment.state_hashes.size(),
            parallel.commitment.state_hashes.size());
  for (std::size_t i = 0; i < serial.commitment.state_hashes.size(); ++i) {
    EXPECT_TRUE(digest_equal(serial.commitment.state_hashes[i],
                             parallel.commitment.state_hashes[i]))
        << "checkpoint " << i << " digest differs across thread counts";
  }
  EXPECT_TRUE(digest_equal(serial.commitment.root, parallel.commitment.root));
  EXPECT_TRUE(digest_equal(serial.merkle_root, parallel.merkle_root));
}

// The determinism contract also spans EXECUTION PATHS: the blocked direct
// conv / packed GEMM pipeline (tensor/layout.h, the default) and the
// im2col + GEMM fallback (RPOL_DIRECT_CONV=0) must produce bit-identical
// training trajectories, so a verifier may re-execute on either path —
// and at any thread count — against a worker that used the other. This is
// the end-to-end form of the per-kernel parity tests in tensor_test.cpp.
TEST(TrainingDeterminism, DirectAndFallbackConvPathsProduceIdenticalRuns) {
  const bool saved = layout::direct_conv_enabled();

  layout::set_direct_conv_enabled(true);
  const TrainRun direct_1t = train_fixture_model(1);
  const TrainRun direct_4t = train_fixture_model(4);
  layout::set_direct_conv_enabled(false);
  const TrainRun fallback_4t = train_fixture_model(4);
  layout::set_direct_conv_enabled(saved);

  ASSERT_EQ(direct_1t.checkpoint_bytes.size(), direct_4t.checkpoint_bytes.size());
  ASSERT_EQ(direct_1t.checkpoint_bytes.size(), fallback_4t.checkpoint_bytes.size());
  for (std::size_t i = 0; i < direct_1t.checkpoint_bytes.size(); ++i) {
    EXPECT_EQ(direct_1t.checkpoint_bytes[i], direct_4t.checkpoint_bytes[i])
        << "direct-path checkpoint " << i << " differs across thread counts";
    EXPECT_EQ(direct_1t.checkpoint_bytes[i], fallback_4t.checkpoint_bytes[i])
        << "checkpoint " << i << " differs between direct and fallback paths";
  }
  EXPECT_TRUE(digest_equal(direct_1t.commitment.root, direct_4t.commitment.root));
  EXPECT_TRUE(
      digest_equal(direct_1t.commitment.root, fallback_4t.commitment.root));
  EXPECT_TRUE(digest_equal(direct_1t.merkle_root, direct_4t.merkle_root));
  EXPECT_TRUE(digest_equal(direct_1t.merkle_root, fallback_4t.merkle_root));
}

// A verifier running with a different thread count than the worker must
// still reproduce the exact checkpoint: replay transition 1 from C_1 under
// 4 threads and compare against the committed C_2 digest from a 1-thread
// worker. This is the protocol-level consequence of the kernel guarantees.
TEST(TrainingDeterminism, ParallelVerifierReproducesSerialWorkerCheckpoint) {
  const TrainRun worker = train_fixture_model(1);

  ThreadGuard guard;
  runtime::set_threads(4);
  data::SyntheticImageConfig data_cfg;
  data_cfg.num_examples = 64;
  data_cfg.image_size = 8;
  data_cfg.seed = 3;
  const data::Dataset dataset = data::make_synthetic_images(data_cfg);
  const data::DatasetView view = data::DatasetView::whole(dataset);
  nn::ModelConfig mc;
  mc.image_size = 8;
  mc.width = 4;
  mc.num_classes = 10;
  core::Hyperparams hp;
  hp.batch_size = 8;
  hp.steps_per_epoch = 4;
  hp.checkpoint_interval = 2;
  core::StepExecutor executor(nn::mini_resnet18_factory(mc, 1), hp);
  const core::DeterministicSelector selector(42);

  // Re-execute the first transition from the serialized initial state.
  std::size_t offset = 0;
  core::TrainState initial;
  initial.model = deserialize_floats(worker.checkpoint_bytes[0], offset);
  initial.optimizer = deserialize_floats(worker.checkpoint_bytes[0], offset);
  executor.load_state(initial);
  executor.run_steps(0, 2, view, selector, nullptr);
  const Bytes replayed = core::serialize_state(executor.save_state());
  EXPECT_EQ(replayed, worker.checkpoint_bytes[1]);
}

// The parallel commitment pipeline (pooled leaf hashing, parallel Merkle
// levels, memoized CommitmentIndex) must be bitwise invariant across thread
// counts: same state hashes, LSH digests, roots, compact roots, and
// transition-proof bytes at RPOL_THREADS=1 and 4.
TEST(TrainingDeterminism, CommitmentPipelineIsThreadCountInvariant) {
  core::EpochTrace trace;
  Rng rng(29);
  for (int i = 0; i < 9; ++i) {  // odd count: self-pairing on several levels
    core::TrainState s;
    s.model.resize(1024);
    s.optimizer.resize(512);
    rng.fill_normal(s.model, 0.0F, 1.0F);
    rng.fill_normal(s.optimizer, 0.0F, 1.0F);
    trace.checkpoints.push_back(std::move(s));
    trace.step_of.push_back(i);
  }
  const lsh::PStableLsh hasher(lsh::LshConfig{{1.0, 2, 3}, 1024, 31});

  auto run = [&](int threads) {
    ThreadGuard guard;
    runtime::set_threads(threads);
    struct Result {
      core::Commitment commitment;
      core::CompactCommitment compact;
      std::vector<Bytes> proof_paths;
    };
    Result r;
    r.commitment = core::commit_v2(trace, hasher);
    const core::CommitmentIndex index(r.commitment);
    r.compact = index.compact();
    for (std::int64_t j = 0; j < trace.num_transitions(); ++j) {
      const core::TransitionProof p = index.prove_transition(j);
      Bytes path;
      for (const Digest& d : p.in_membership.siblings)
        path.insert(path.end(), d.begin(), d.end());
      for (const Digest& d : p.out_membership.siblings)
        path.insert(path.end(), d.begin(), d.end());
      for (const Digest& d : p.out_lsh_membership.siblings)
        path.insert(path.end(), d.begin(), d.end());
      r.proof_paths.push_back(std::move(path));
    }
    return r;
  };

  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.commitment.state_hashes.size(),
            parallel.commitment.state_hashes.size());
  for (std::size_t i = 0; i < serial.commitment.state_hashes.size(); ++i) {
    EXPECT_TRUE(digest_equal(serial.commitment.state_hashes[i],
                             parallel.commitment.state_hashes[i]));
    EXPECT_TRUE(serial.commitment.lsh_digests[i] ==
                parallel.commitment.lsh_digests[i]);
  }
  EXPECT_TRUE(digest_equal(serial.commitment.root, parallel.commitment.root));
  EXPECT_TRUE(
      digest_equal(serial.compact.state_root, parallel.compact.state_root));
  EXPECT_TRUE(digest_equal(serial.compact.lsh_root, parallel.compact.lsh_root));
  EXPECT_EQ(serial.proof_paths, parallel.proof_paths);
}

// The observability layer (src/obs) must be strictly write-only: enabling
// tracing may record spans and histograms but can never change a single
// training bit. Train the fixture untraced and traced and require the
// checkpoint bytes and Merkle commitment roots to be bitwise identical —
// the tentpole guarantee that RPOL_TRACE=1 runs stay verifiable against
// untraced workers.
TEST(TrainingDeterminism, TracedRunIsBitwiseIdenticalToUntraced) {
  obs::set_enabled(false);
  obs::Registry::instance().reset();
  const TrainRun untraced = train_fixture_model(4);
  EXPECT_EQ(obs::Registry::instance().span_count(), 0U);

  obs::set_enabled(true);
  obs::Registry::instance().reset();
  const TrainRun traced = train_fixture_model(4);
  // Tracing must have actually observed the run (kernel sampling is 1-in-8,
  // and a training step issues far more than 8 kernel calls)...
  EXPECT_GT(obs::counter("runtime.parallel_for.calls").value(), 0U);
  EXPECT_GT(obs::histogram("kernel.matmul_ns").count() +
                obs::histogram("kernel.matmul_tn_ns").count() +
                obs::histogram("kernel.matmul_nt_ns").count(),
            0U);
  obs::set_enabled(false);
  obs::Registry::instance().reset();

  // ...without perturbing one byte of protocol state.
  ASSERT_EQ(untraced.checkpoint_bytes.size(), traced.checkpoint_bytes.size());
  for (std::size_t i = 0; i < untraced.checkpoint_bytes.size(); ++i) {
    EXPECT_EQ(untraced.checkpoint_bytes[i], traced.checkpoint_bytes[i])
        << "checkpoint " << i << " bytes differ between traced and untraced";
  }
  EXPECT_TRUE(digest_equal(untraced.commitment.root, traced.commitment.root));
  EXPECT_TRUE(digest_equal(untraced.merkle_root, traced.merkle_root));
}

// The same guarantee through the FULL protocol stack: a MiningPool run with
// tracing on exercises causal propagation end to end — epoch root spans,
// TraceContext riding the wire envelope on every session message, workers
// adopting remote parents — and must still produce bit-identical protocol
// results. This is the strongest form of "envelopes never reach a hash":
// if a single envelope byte leaked into any commitment, digest, or decode,
// the global models would diverge.
TEST(TrainingDeterminism, TracedPoolRunWithPropagationIsBitwiseIdentical) {
  auto run_pool = [](bool traced) {
    obs::set_enabled(traced);
    obs::Registry::instance().reset();
    const testing::TinyTask task = testing::TinyTask::make(61, 10, 3);
    const data::TrainTestSplit split =
        data::train_test_split(task.dataset, 0.25, 17);
    core::PoolConfig cfg;
    cfg.hp = task.hp;
    cfg.epochs = 2;
    cfg.samples_q = 3;
    cfg.seed = 71;
    std::vector<core::WorkerSpec> workers;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < 3; ++w) {
      core::WorkerSpec spec;
      spec.policy = std::make_unique<core::HonestPolicy>();
      spec.device = devices[w % devices.size()];
      workers.push_back(std::move(spec));
    }
    core::MiningPool pool(cfg, task.factory, task.dataset, split.test,
                          std::move(workers));
    const core::PoolRunReport report = pool.run();

    struct Result {
      std::vector<float> model;
      double final_accuracy = 0.0;
      std::uint64_t total_bytes = 0;
      std::size_t spans = 0;
      bool propagated = false;  // any span joined a tree via a remote link
    };
    Result r;
    r.model = pool.global_model();
    r.final_accuracy = report.final_accuracy;
    r.total_bytes = report.total_bytes;
    r.spans = obs::Registry::instance().span_count();
    for (const obs::SpanRecord& s : obs::Registry::instance().spans()) {
      if (s.link != 0) r.propagated = true;
    }
    obs::set_enabled(false);
    obs::Registry::instance().reset();
    return r;
  };

  const auto untraced = run_pool(false);
  const auto traced = run_pool(true);

  // The traced run really propagated contexts across agents...
  EXPECT_EQ(untraced.spans, 0U);
  EXPECT_GT(traced.spans, 0U);
  EXPECT_TRUE(traced.propagated);
  // ...and not one protocol byte moved: same model floats, same accuracy,
  // same WAN byte accounting (envelopes are excluded from it by design).
  EXPECT_EQ(untraced.model, traced.model);
  EXPECT_EQ(untraced.final_accuracy, traced.final_accuracy);
  EXPECT_EQ(untraced.total_bytes, traced.total_bytes);
}

// Health scoring and memory accounting are part of the same write-only
// contract: a pool run with tracing enabled, a live background RssSampler,
// and the health registry folding in wall-clock latencies must produce the
// exact global model, accuracy, eviction set, and Merkle-relevant bytes of
// a run with all of it off. Latency and retransmission facts may only ever
// reach the SCORE — never the eviction decision or a hash (DESIGN.md §7).
TEST(TrainingDeterminism, HealthScoredPoolRunIsBitwiseIdentical) {
  auto run_pool = [](bool observed) {
    obs::set_enabled(observed);
    obs::Registry::instance().reset();
    obs::mem_reset();
    std::optional<obs::RssSampler> rss;
    if (observed) rss.emplace(std::chrono::milliseconds(1));

    const testing::TinyTask task = testing::TinyTask::make(61, 10, 3);
    const data::TrainTestSplit split =
        data::train_test_split(task.dataset, 0.25, 17);
    core::PoolConfig cfg;
    cfg.hp = task.hp;
    cfg.epochs = 3;
    cfg.samples_q = 3;
    cfg.seed = 71;
    cfg.eviction_threshold = 2;
    std::vector<core::WorkerSpec> workers;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < 3; ++w) {
      core::WorkerSpec spec;
      // One replay adversary: makes the health registry take real eviction
      // decisions in both runs, so the comparison covers the decision path.
      spec.policy =
          w == 0 ? std::unique_ptr<core::WorkerPolicy>(
                       std::make_unique<core::ReplayPolicy>())
                 : std::unique_ptr<core::WorkerPolicy>(
                       std::make_unique<core::HonestPolicy>());
      spec.device = devices[w % devices.size()];
      workers.push_back(std::move(spec));
    }
    core::MiningPool pool(cfg, task.factory, task.dataset, split.test,
                          std::move(workers));
    const core::PoolRunReport report = pool.run();

    struct Result {
      std::vector<float> model;
      double final_accuracy = 0.0;
      std::uint64_t total_bytes = 0;
      std::vector<bool> evicted;
      std::vector<double> scores;
      std::uint64_t tagged_bytes = 0;
      bool rss_sampled = false;
    };
    Result r;
    r.model = pool.global_model();
    r.final_accuracy = report.final_accuracy;
    r.total_bytes = report.total_bytes;
    for (std::size_t w = 0; w < 3; ++w) {
      r.evicted.push_back(pool.health().evicted(w));
      r.scores.push_back(pool.health().score(w));
    }
    r.tagged_bytes = obs::mem_stats(obs::MemTag::kCheckpoint).total_bytes;
    if (rss.has_value()) {
      rss->stop();
      r.rss_sampled = rss->summary().valid && rss->summary().samples > 0;
    }
    obs::set_enabled(false);
    obs::Registry::instance().reset();
    obs::mem_reset();
    return r;
  };

  const auto plain = run_pool(false);
  const auto observed = run_pool(true);

  // The observed run really observed: memory was tagged and RSS sampled...
  EXPECT_GT(observed.tagged_bytes, 0U);
#ifdef __linux__
  EXPECT_TRUE(observed.rss_sampled);
#endif
  // ...while the protocol results stayed bitwise identical, including the
  // eviction decisions the health registry now owns.
  EXPECT_EQ(plain.model, observed.model);
  EXPECT_EQ(plain.final_accuracy, observed.final_accuracy);
  EXPECT_EQ(plain.total_bytes, observed.total_bytes);
  EXPECT_EQ(plain.evicted, observed.evicted);
  // The adversary was actually evicted (both runs agree on it).
  EXPECT_TRUE(plain.evicted[0]);
  EXPECT_FALSE(plain.evicted[1]);
  // Scores come from the same protocol facts; latency differs run to run
  // but only moves the 10-point latency-stability term, so both runs agree
  // on the ordering: adversary pinned at 0, honest workers far above.
  EXPECT_EQ(observed.scores[0], 0.0);
  EXPECT_GT(observed.scores[1], 50.0);
  EXPECT_GT(observed.scores[2], 50.0);
}

// Bounded-memory epochs are the final piece of the write-only contract: a
// streaming pool run — checkpoints hashed into CommitmentBuilders as they
// are produced and spilled to disk under a hot-cache budget smaller than
// one worker's trace, verification fetching sampled states back through the
// stores, all under a live RssSampler — must be bitwise identical to the
// materialize-everything path: same global model floats, same accuracy,
// same verdicts and evictions, same WAN bytes. And it must hold at 1 and 4
// intra-op threads (§6: thread-count invariance composes with streaming).
TEST(TrainingDeterminism, StreamedPoolRunIsBitwiseIdentical) {
  auto run_pool = [](bool streaming, int threads) {
    const ThreadGuard guard;
    runtime::set_threads(threads);
    obs::set_enabled(true);
    obs::Registry::instance().reset();
    obs::mem_reset();
    obs::RssSampler rss{std::chrono::milliseconds(1)};

    const testing::TinyTask task = testing::TinyTask::make(61, 10, 3);
    const data::TrainTestSplit split =
        data::train_test_split(task.dataset, 0.25, 17);
    core::PoolConfig cfg;
    cfg.scheme = core::Scheme::kRPoLv2;
    cfg.hp = task.hp;
    cfg.epochs = 3;
    cfg.samples_q = 3;
    cfg.seed = 71;
    cfg.eviction_threshold = 2;
    cfg.compact_commitments = true;  // exercise the streamed O(log n) roots
    cfg.streaming = streaming;
    // Small enough that eviction/spill actually happens every epoch (a
    // TinyTask checkpoint serializes to ~3 KiB; 5 checkpoints per trace).
    cfg.ckpt_budget_bytes = streaming ? 8 * 1024 : 0;
    std::vector<core::WorkerSpec> workers;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < 3; ++w) {
      core::WorkerSpec spec;
      // One replay adversary so the comparison covers real verdict and
      // eviction decisions, and the base-policy streaming fallback.
      spec.policy =
          w == 0 ? std::unique_ptr<core::WorkerPolicy>(
                       std::make_unique<core::ReplayPolicy>())
                 : std::unique_ptr<core::WorkerPolicy>(
                       std::make_unique<core::HonestPolicy>());
      spec.device = devices[w % devices.size()];
      workers.push_back(std::move(spec));
    }
    core::MiningPool pool(cfg, task.factory, task.dataset, split.test,
                          std::move(workers));
    const core::PoolRunReport report = pool.run();

    struct Result {
      std::vector<float> model;
      double final_accuracy = 0.0;
      std::uint64_t total_bytes = 0;
      std::vector<bool> evicted;
      std::vector<std::vector<bool>> accepted;  // per epoch
      std::vector<double> epoch_accuracy;
      std::uint64_t ckpt_peak_bytes = 0;
      std::uint64_t ckpt_total_bytes = 0;
      bool rss_sampled = false;
    };
    Result r;
    r.model = pool.global_model();
    r.final_accuracy = report.final_accuracy;
    r.total_bytes = report.total_bytes;
    for (std::size_t w = 0; w < 3; ++w) {
      r.evicted.push_back(pool.health().evicted(w));
    }
    for (const auto& epoch : report.epochs) {
      r.accepted.push_back(epoch.accepted);
      r.epoch_accuracy.push_back(epoch.test_accuracy);
    }
    r.ckpt_peak_bytes = obs::mem_stats(obs::MemTag::kCkptStore).peak_bytes;
    r.ckpt_total_bytes = obs::mem_stats(obs::MemTag::kCkptStore).total_bytes;
    rss.stop();
    r.rss_sampled = rss.summary().valid && rss.summary().samples > 0;
    obs::set_enabled(false);
    obs::Registry::instance().reset();
    obs::mem_reset();
    return r;
  };

  const auto memory_1t = run_pool(false, 1);
  const auto streamed_1t = run_pool(true, 1);
  const auto memory_4t = run_pool(false, 4);
  const auto streamed_4t = run_pool(true, 4);

  // The streamed runs really streamed: hot checkpoint bytes were charged to
  // the ckptstore tag and pinned under the configured budget — per worker
  // store, so the global tag peaks at most at workers x budget (the
  // single-store bound is tests/core_ckptstore_test.cpp's job) — while the
  // in-memory runs never touched the tag.
  EXPECT_GT(streamed_1t.ckpt_total_bytes, 0U);
  EXPECT_LE(streamed_1t.ckpt_peak_bytes, 3U * 8U * 1024U);
  EXPECT_EQ(memory_1t.ckpt_total_bytes, 0U);
#ifdef __linux__
  EXPECT_TRUE(streamed_1t.rss_sampled);
#endif

  // Bitwise equivalence, in-memory vs streamed, at each thread count.
  const auto expect_same = [](const auto& a, const auto& b) {
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.final_accuracy, b.final_accuracy);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_EQ(a.evicted, b.evicted);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.epoch_accuracy, b.epoch_accuracy);
  };
  expect_same(memory_1t, streamed_1t);
  expect_same(memory_4t, streamed_4t);
  // ...and across thread counts (the full 2x2 grid collapses to one result).
  expect_same(memory_1t, memory_4t);

  // The adversary was rejected and evicted in every configuration.
  EXPECT_TRUE(streamed_1t.evicted[0]);
  EXPECT_FALSE(streamed_1t.evicted[1]);
  ASSERT_FALSE(streamed_1t.accepted.empty());
  EXPECT_FALSE(streamed_1t.accepted[0][0]);
  EXPECT_TRUE(streamed_1t.accepted[0][1]);
}

// Live telemetry closes the write-only contract: a pool run with RPOL_LIVE
// semantics on — flight recorder armed, health rows published every epoch,
// and a background LiveFlusher sampling the registry and evaluating alert
// rules at a fast cadence WHILE the protocol runs — must be bitwise
// identical to a plain run, at 1 and 4 intra-op threads. The flusher reads
// the same atomics the protocol writes and its alerts narrate decisions the
// HealthRegistry already made; neither may move a single protocol byte.
TEST(TrainingDeterminism, LivePoolRunIsBitwiseIdentical) {
  auto run_pool = [](bool live, int threads) {
    const ThreadGuard guard;
    runtime::set_threads(threads);
    obs::set_live_enabled(live);
    obs::flight_reset();
    obs::live_reset_health();
    obs::reset_all();
    const std::string live_path =
        ::testing::TempDir() + "runtime_determinism_live_" +
        std::to_string(threads) + "t.jsonl";
    std::unique_ptr<obs::LiveFlusher> flusher;
    if (live) {
      obs::LiveFlusher::Options options;
      options.path = live_path;
      options.interval = std::chrono::milliseconds(5);
      flusher = std::make_unique<obs::LiveFlusher>(options);
    }

    const testing::TinyTask task = testing::TinyTask::make(61, 10, 3);
    const data::TrainTestSplit split =
        data::train_test_split(task.dataset, 0.25, 17);
    core::PoolConfig cfg;
    cfg.hp = task.hp;
    cfg.epochs = 3;
    cfg.samples_q = 3;
    cfg.seed = 71;
    cfg.eviction_threshold = 2;
    std::vector<core::WorkerSpec> workers;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < 3; ++w) {
      core::WorkerSpec spec;
      // One replay adversary: the live run must narrate a real eviction
      // (flight events, alert-rule inputs) without changing it.
      spec.policy =
          w == 0 ? std::unique_ptr<core::WorkerPolicy>(
                       std::make_unique<core::ReplayPolicy>())
                 : std::unique_ptr<core::WorkerPolicy>(
                       std::make_unique<core::HonestPolicy>());
      spec.device = devices[w % devices.size()];
      workers.push_back(std::move(spec));
    }
    core::MiningPool pool(cfg, task.factory, task.dataset, split.test,
                          std::move(workers));
    const core::PoolRunReport report = pool.run();

    struct Result {
      std::vector<float> model;
      double final_accuracy = 0.0;
      std::uint64_t total_bytes = 0;
      std::vector<bool> evicted;
      std::vector<std::vector<bool>> accepted;
      std::uint64_t live_snapshots = 0;
      std::uint64_t flight_events = 0;
    };
    Result r;
    r.model = pool.global_model();
    r.final_accuracy = report.final_accuracy;
    r.total_bytes = report.total_bytes;
    for (std::size_t w = 0; w < 3; ++w) {
      r.evicted.push_back(pool.health().evicted(w));
    }
    for (const auto& epoch : report.epochs) r.accepted.push_back(epoch.accepted);
    if (flusher != nullptr) {
      flusher->stop();
      r.live_snapshots = flusher->snapshots_written();
      // The stream on disk is well-formed even though it was appended
      // concurrently with the run (strict: the flusher has stopped).
      const obs::LiveDoc doc = obs::load_live_file(live_path, /*strict=*/true);
      EXPECT_EQ(doc.schema, "rpol.live.v1");
      EXPECT_EQ(static_cast<std::uint64_t>(doc.snapshots.size()),
                r.live_snapshots);
      std::remove(live_path.c_str());
    }
    r.flight_events = obs::flight_count();
    obs::set_live_enabled(false);
    obs::flight_reset();
    obs::live_reset_health();
    obs::reset_all();
    return r;
  };

  const auto plain_1t = run_pool(false, 1);
  const auto live_1t = run_pool(true, 1);
  const auto plain_4t = run_pool(false, 4);
  const auto live_4t = run_pool(true, 4);

  // The live runs really streamed and recorded...
  EXPECT_GT(live_1t.live_snapshots, 0u);
  EXPECT_GT(live_4t.live_snapshots, 0u);
  EXPECT_GT(live_1t.flight_events, 0u);
  EXPECT_EQ(plain_1t.flight_events, 0u);  // gate held with live off
  // ...and not one protocol byte moved, at either thread count.
  const auto expect_same = [](const auto& a, const auto& b) {
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.final_accuracy, b.final_accuracy);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_EQ(a.evicted, b.evicted);
    EXPECT_EQ(a.accepted, b.accepted);
  };
  expect_same(plain_1t, live_1t);
  expect_same(plain_4t, live_4t);
  expect_same(plain_1t, plain_4t);
  // The adversary's eviction is part of the identical surface.
  EXPECT_TRUE(live_1t.evicted[0]);
  EXPECT_FALSE(live_1t.evicted[1]);
}

// ---------------------------------------------------------------------------
// Sharded manager equivalence (core/sharded_pool.h): the §6 contract for the
// sharded layer. A lockstep sharded run is the SAME protocol re-scheduled:
// every per-worker decision input (injector stream, device seed, nonce,
// verifier samples) is derived from (epoch, GLOBAL worker index) and all
// cross-worker mutation is merged in worker order by finish_epoch — so the
// sharded pool must be bitwise identical to the legacy sequential pool at
// ANY shard count, and at any thread count, with bounded admission queues
// engaged. Faults and an adversary are on so the equivalence covers real
// verdicts, retries, and evictions, not just the happy path.
TEST(TrainingDeterminism, ShardedPoolMatchesLegacyBitwiseAtAnyShardCount) {
  struct Result {
    std::vector<float> model;
    double final_accuracy = 0.0;
    std::uint64_t total_bytes = 0;
    std::int64_t session_failures = 0;
    std::int64_t retransmissions = 0;
    std::vector<bool> evicted;
    std::vector<std::vector<bool>> accepted;     // per epoch
    std::vector<std::vector<bool>> participated; // per epoch
    std::vector<double> epoch_accuracy;
    std::int64_t requeued = 0;
    std::int64_t max_depth = 0;
  };
  const fault::FaultPlan plan = [] {
    fault::FaultProfile p;
    p.drop = 0.2;
    p.delay = 0.1;
    p.corrupt = 0.05;
    return fault::FaultPlan::transport(p, 515);
  }();
  auto base_config = [&](const testing::TinyTask& task) {
    core::PoolConfig cfg;
    cfg.scheme = core::Scheme::kRPoLv2;
    cfg.hp = task.hp;
    cfg.epochs = 3;
    cfg.samples_q = 3;
    cfg.seed = 71;
    cfg.eviction_threshold = 2;
    cfg.fault_plan = &plan;
    return cfg;
  };
  auto make_workers = [] {
    std::vector<core::WorkerSpec> workers;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < 5; ++w) {
      core::WorkerSpec spec;
      spec.policy = w == 0 ? std::unique_ptr<core::WorkerPolicy>(
                                 std::make_unique<core::ReplayPolicy>())
                           : std::unique_ptr<core::WorkerPolicy>(
                                 std::make_unique<core::HonestPolicy>());
      spec.device = devices[w % devices.size()];
      workers.push_back(std::move(spec));
    }
    return workers;
  };
  auto collect = [](const core::PoolRunReport& report,
                    const std::vector<float>& model,
                    const obs::HealthRegistry& health) {
    Result r;
    r.model = model;
    r.final_accuracy = report.final_accuracy;
    r.total_bytes = report.total_bytes;
    r.session_failures = report.total_session_failures;
    r.retransmissions = report.total_retransmissions;
    for (std::size_t w = 0; w < 5; ++w) r.evicted.push_back(health.evicted(w));
    for (const auto& epoch : report.epochs) {
      r.accepted.push_back(epoch.accepted);
      r.participated.push_back(epoch.participated);
      r.epoch_accuracy.push_back(epoch.test_accuracy);
      r.requeued += epoch.admission_requeued;
      r.max_depth = std::max(r.max_depth, epoch.max_queue_depth);
    }
    return r;
  };

  auto run_legacy = [&](int threads) {
    const ThreadGuard guard;
    runtime::set_threads(threads);
    const testing::TinyTask task = testing::TinyTask::make(61, 10, 3);
    const data::TrainTestSplit split =
        data::train_test_split(task.dataset, 0.25, 17);
    core::MiningPool pool(base_config(task), task.factory, task.dataset,
                          split.test, make_workers());
    const core::PoolRunReport report = pool.run();
    return collect(report, pool.global_model(), pool.health());
  };
  auto run_sharded = [&](int shards, int threads, std::size_t queue_capacity) {
    const ThreadGuard guard;
    runtime::set_threads(threads);
    const testing::TinyTask task = testing::TinyTask::make(61, 10, 3);
    const data::TrainTestSplit split =
        data::train_test_split(task.dataset, 0.25, 17);
    core::ShardedPoolConfig cfg;
    cfg.base = base_config(task);
    cfg.shards = shards;
    cfg.queue_capacity = queue_capacity;
    cfg.verify_batch = 2;
    cfg.overflow = core::AdmissionPolicy::kRequeue;
    core::ShardedPool pool(std::move(cfg), task.factory, task.dataset,
                           split.test, make_workers());
    const core::PoolRunReport report = pool.run();
    return collect(report, pool.pool().global_model(), pool.pool().health());
  };

  const Result legacy = run_legacy(1);
  const Result sharded_1s = run_sharded(1, 1, 0);
  const Result sharded_4s_1t = run_sharded(4, 1, 0);
  const Result sharded_4s_4t = run_sharded(4, 4, 0);
  const Result sharded_4s_bounded = run_sharded(4, 4, /*queue_capacity=*/1);

  const auto expect_same = [](const Result& a, const Result& b) {
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.final_accuracy, b.final_accuracy);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_EQ(a.session_failures, b.session_failures);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.evicted, b.evicted);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.participated, b.participated);
    EXPECT_EQ(a.epoch_accuracy, b.epoch_accuracy);
  };
  // S=1 IS the legacy pool, bit for bit; S=4 re-schedules it without moving
  // a byte, whatever the thread count; and a bounded queue under kRequeue
  // changes only the admission counters.
  expect_same(legacy, sharded_1s);
  expect_same(legacy, sharded_4s_1t);
  expect_same(legacy, sharded_4s_4t);
  expect_same(legacy, sharded_4s_bounded);
  EXPECT_EQ(sharded_4s_4t.requeued, 0);
  EXPECT_GT(sharded_4s_bounded.requeued, 0);
  EXPECT_LE(sharded_4s_bounded.max_depth, 1);
  // The comparison covered real decisions: the replay adversary was
  // rejected and eventually evicted in every run.
  EXPECT_TRUE(legacy.evicted[0]);
  ASSERT_FALSE(legacy.accepted.empty());
  EXPECT_FALSE(legacy.accepted[0][0]);
}

// Pipelined scheduling is NOT the legacy protocol (one-epoch staleness by
// design) but it is still §6-deterministic: two same-seed pipelined runs
// must be bitwise identical at ANY thread count, because train(N+1) and
// verify(N) touch disjoint workspaces and every shared-state step stays
// sequential between the parallel regions.
TEST(TrainingDeterminism, PipelinedShardedRunIsThreadCountInvariant) {
  auto run_pipelined = [](int threads) {
    const ThreadGuard guard;
    runtime::set_threads(threads);
    const testing::TinyTask task = testing::TinyTask::make(61, 10, 3);
    const data::TrainTestSplit split =
        data::train_test_split(task.dataset, 0.25, 17);
    core::ShardedPoolConfig cfg;
    cfg.base.scheme = core::Scheme::kRPoLv2;
    cfg.base.hp = task.hp;
    cfg.base.epochs = 3;
    cfg.base.samples_q = 3;
    cfg.base.seed = 71;
    cfg.shards = 2;
    cfg.pipeline = true;
    std::vector<core::WorkerSpec> workers;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < 4; ++w) {
      core::WorkerSpec spec;
      spec.policy = std::make_unique<core::HonestPolicy>();
      spec.device = devices[w % devices.size()];
      workers.push_back(std::move(spec));
    }
    core::ShardedPool pool(std::move(cfg), task.factory, task.dataset,
                           split.test, std::move(workers));
    const core::PoolRunReport report = pool.run();
    struct Result {
      std::vector<float> model;
      std::vector<double> epoch_accuracy;
      std::uint64_t total_bytes = 0;
    } r;
    r.model = pool.pool().global_model();
    r.total_bytes = report.total_bytes;
    for (const auto& epoch : report.epochs) {
      r.epoch_accuracy.push_back(epoch.test_accuracy);
    }
    return std::make_tuple(r.model, r.epoch_accuracy, r.total_bytes);
  };
  const auto t1 = run_pipelined(1);
  const auto t4 = run_pipelined(4);
  const auto t4_again = run_pipelined(4);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t4, t4_again);
}

}  // namespace
}  // namespace rpol
