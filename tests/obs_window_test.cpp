// Wraparound coverage for obs/window.h: the straight-line (< capacity)
// paths are exercised by obs_health_test; these tests drive the rings past
// capacity — where next_ has lapped and oldest/newest live at rotated
// positions — and across counter resets, where the saturating deltas must
// collapse to zero instead of wrapping.

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "obs/window.h"

namespace rpol::obs {
namespace {

TEST(CounterWindowWrapTest, DeltaTracksOnlyTheLastCapacitySamples) {
  CounterWindow w(4);
  // Cumulative readings 10, 20, ..., 120: three full laps of the ring.
  for (std::uint64_t i = 1; i <= 12; ++i) w.sample(i * 10);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.latest(), 120u);
  EXPECT_EQ(w.oldest(), 90u);       // samples 90,100,110,120 survive
  EXPECT_EQ(w.window_delta(), 30u);  // not 110 (the lifetime delta)
  EXPECT_DOUBLE_EQ(w.rate_per_sample(), 10.0);
}

TEST(CounterWindowWrapTest, OldestRotatesWithEverySampleOnceFull) {
  CounterWindow w(3);
  w.sample(5);
  w.sample(8);
  w.sample(13);  // ring now full: {5, 8, 13}
  EXPECT_EQ(w.oldest(), 5u);
  w.sample(21);  // evicts 5
  EXPECT_EQ(w.oldest(), 8u);
  EXPECT_EQ(w.latest(), 21u);
  EXPECT_EQ(w.window_delta(), 13u);
  w.sample(34);  // evicts 8
  EXPECT_EQ(w.oldest(), 13u);
  EXPECT_EQ(w.window_delta(), 21u);
}

TEST(CounterWindowWrapTest, DeltaSaturatesAcrossCounterReset) {
  CounterWindow w(4);
  w.sample(100);
  w.sample(200);
  // The counter was drained (Counter::drain or Registry::reset) and starts
  // over from a small value: newest < oldest must yield 0, not wrap.
  w.sample(3);
  EXPECT_EQ(w.window_delta(), 0u);
  EXPECT_DOUBLE_EQ(w.rate_per_sample(), 0.0);
  // Growth after the reset becomes visible again once the pre-reset samples
  // rotate out of the ring.
  w.sample(10);
  w.sample(20);
  w.sample(30);  // ring = {3, 10, 20, 30}, all post-reset
  EXPECT_EQ(w.window_delta(), 27u);
}

TEST(CounterWindowWrapTest, ResetMidWindowAfterWraparound) {
  CounterWindow w(3);
  for (std::uint64_t i = 1; i <= 7; ++i) w.sample(i * 100);  // wrapped twice
  EXPECT_EQ(w.window_delta(), 200u);
  w.sample(1);  // drained
  EXPECT_EQ(w.window_delta(), 0u);
  w.sample(2);
  w.sample(4);
  EXPECT_EQ(w.window_delta(), 3u);
}

Histogram::Snapshot snapshot_of(Histogram& h) { return h.snapshot(); }

TEST(HistogramWindowWrapTest, RollingPercentileForgetsEvictedSamples) {
  Histogram h("t");
  HistogramWindow w(3);

  // Window 1..3: large values recorded early.
  w.push(snapshot_of(h));
  for (int i = 0; i < 100; ++i) h.record(1 << 20);
  w.push(snapshot_of(h));
  w.push(snapshot_of(h));
  EXPECT_EQ(w.windowed_count(), 100u);
  EXPECT_GT(w.windowed_percentile(50), (1u << 19));

  // Two more idle pushes lap the ring: the big-value epoch falls out
  // entirely and the window goes empty.
  w.push(snapshot_of(h));
  w.push(snapshot_of(h));
  EXPECT_EQ(w.windowed_count(), 0u);
  EXPECT_EQ(w.windowed_percentile(50), 0u);

  // Now only small values inside the window: the rolling p50 must reflect
  // them, not the lifetime distribution (which is dominated by 1<<20).
  for (int i = 0; i < 50; ++i) h.record(4);
  w.push(snapshot_of(h));
  EXPECT_EQ(w.windowed_count(), 50u);
  EXPECT_EQ(w.windowed_percentile(50), 4u);
  EXPECT_GT(h.snapshot().approx_percentile(50), 1000u);  // lifetime differs
}

TEST(HistogramWindowWrapTest, WindowDeltaIsBucketwiseAcrossWraparound) {
  Histogram h("t");
  HistogramWindow w(4);
  w.push(snapshot_of(h));
  for (int round = 0; round < 10; ++round) {
    h.record(2);
    h.record(1000);
    w.push(snapshot_of(h));
  }
  // Ring holds the last 4 snapshots: 3 sample gaps, 2 records per gap.
  const Histogram::Snapshot d = w.window_delta();
  EXPECT_EQ(d.count, 6u);
  EXPECT_EQ(d.sum, 3u * (2 + 1000));
  EXPECT_EQ(d.buckets[Histogram::bucket_index(2)], 3u);
  EXPECT_EQ(d.buckets[Histogram::bucket_index(1000)], 3u);
  EXPECT_DOUBLE_EQ(w.rate_per_sample(), 2.0);
}

TEST(HistogramWindowWrapTest, DeltaSaturatesAcrossHistogramReset) {
  Histogram h("t");
  // Capacity 2 so the window's oldest entry is exactly the pre-reset
  // snapshot (a larger ring would still hold the initial empty snapshot
  // and the delta would legitimately be positive).
  HistogramWindow w(2);
  w.push(snapshot_of(h));
  for (int i = 0; i < 20; ++i) h.record(64);
  w.push(snapshot_of(h));
  h.reset();
  for (int i = 0; i < 5; ++i) h.record(8);
  w.push(snapshot_of(h));
  // Post-reset counts are below the pre-reset snapshot: every field
  // saturates at zero for the buckets that shrank, and the fresh bucket
  // (8 was never recorded before the reset) still shows its true delta.
  const Histogram::Snapshot d = w.window_delta();
  EXPECT_EQ(d.buckets[Histogram::bucket_index(64)], 0u);
  EXPECT_EQ(d.buckets[Histogram::bucket_index(8)], 5u);
  // count saturates: 5 post-reset < 20 pre-reset.
  EXPECT_EQ(d.count, 0u);
}

TEST(HistogramWindowWrapTest, CapacityClampAndTinyRings) {
  HistogramWindow w(0);  // clamps to 2
  EXPECT_EQ(w.capacity(), 2u);
  Histogram h("t");
  w.push(snapshot_of(h));
  EXPECT_EQ(w.windowed_count(), 0u);  // < 2 samples: empty delta
  h.record(7);
  w.push(snapshot_of(h));
  EXPECT_EQ(w.windowed_count(), 1u);
  h.record(9);
  w.push(snapshot_of(h));  // wraps immediately at capacity 2
  EXPECT_EQ(w.windowed_count(), 1u);
}

}  // namespace
}  // namespace rpol::obs
