// Deterministic stochastic-training tests: dropout and data augmentation
// draw their randomness from checkpointed counters / the epoch PRF, so
// replay-based verification keeps working even for stochastic training
// pipelines — the property that distinguishes this design from hidden-RNG
// training.

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

// ---------------------------------------------------------------------------
// Dropout layer semantics

TEST(Dropout, EvalModeIsIdentity) {
  nn::Dropout dropout(0.5F, 1);
  Rng rng(2);
  const Tensor x = Tensor::randn({4, 8}, rng);
  const Tensor y = dropout.forward(x, /*training=*/false);
  EXPECT_EQ(y.vec(), x.vec());
  EXPECT_EQ(dropout.counter(), 0);
}

TEST(Dropout, TrainingDropsApproximatelyRateFraction) {
  nn::Dropout dropout(0.3F, 3);
  const Tensor x = Tensor::full({10000}, 1.0F);
  const Tensor y = dropout.forward(x, true);
  int zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0F) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.at(i), 1.0F / 0.7F, 1e-5F);  // inverted scaling
    }
  }
  EXPECT_NEAR(zeros, 3000, 200);
}

TEST(Dropout, MaskSequenceIsCounterDeterministic) {
  nn::Dropout a(0.5F, 7), b(0.5F, 7);
  const Tensor x = Tensor::full({64}, 1.0F);
  // Same counters => same masks, step by step.
  for (int step = 0; step < 3; ++step) {
    EXPECT_EQ(a.forward(x, true).vec(), b.forward(x, true).vec());
  }
  // Different seeds => different masks.
  nn::Dropout c(0.5F, 8);
  EXPECT_NE(a.forward(x, true).vec(), c.forward(x, true).vec());
}

TEST(Dropout, CounterTravelsWithModelState) {
  // Restoring a model state restores the dropout counter, so replay resumes
  // the same mask stream.
  const nn::ModelFactory factory = [] {
    nn::Model m("d");
    Rng rng(1);
    m.add(std::make_unique<nn::Linear>(8, 8, rng));
    m.add(std::make_unique<nn::Dropout>(0.4F, 99));
    return m;
  };
  nn::Model model = factory();
  Rng rng(5);
  const Tensor x = Tensor::randn({2, 8}, rng);
  model.forward(x, true);
  model.forward(x, true);
  const auto state = model.state_vector();

  nn::Model replica = factory();
  replica.load_state_vector(state);
  const Tensor a = model.forward(x, true);
  const Tensor b = replica.forward(x, true);
  EXPECT_EQ(a.vec(), b.vec());
}

TEST(Dropout, GradientMatchesMask) {
  nn::Dropout dropout(0.5F, 11);
  const Tensor x = Tensor::full({32}, 2.0F);
  const Tensor y = dropout.forward(x, true);
  const Tensor g = Tensor::full({32}, 1.0F);
  const Tensor dx = dropout.backward(g);
  for (std::int64_t i = 0; i < 32; ++i) {
    if (y.at(i) == 0.0F) {
      EXPECT_EQ(dx.at(i), 0.0F);
    } else {
      EXPECT_NEAR(dx.at(i), 2.0F, 1e-5F);  // 1/(1-0.5)
    }
  }
}

TEST(Dropout, InvalidRateThrows) {
  EXPECT_THROW(nn::Dropout(-0.1F, 1), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0F, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Verification with a dropout model

TEST(StochasticVerification, DropoutModelPassesVerification) {
  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_classes = 4;
  data_cfg.num_examples = 256;
  data_cfg.features = 16;
  data_cfg.seed = 21;
  const data::Dataset dataset = data::make_synthetic_blobs(data_cfg);
  const data::DatasetView view = data::DatasetView::whole(dataset);

  const nn::ModelFactory factory = [] {
    nn::Model m("dropout_mlp");
    Rng rng(derive_seed(33, 1));
    m.add(std::make_unique<nn::Linear>(16, 16, rng));
    m.add(std::make_unique<nn::ReLU>());
    m.add(std::make_unique<nn::Dropout>(0.25F, 44));
    m.add(std::make_unique<nn::Linear>(16, 4, rng));
    return m;
  };
  Hyperparams hp;
  hp.learning_rate = 0.02F;
  hp.batch_size = 16;
  hp.steps_per_epoch = 9;
  hp.checkpoint_interval = 3;

  StepExecutor init(factory, hp);
  EpochContext ctx;
  ctx.nonce = 404;
  ctx.initial = init.save_state();
  ctx.dataset = &view;

  StepExecutor worker(factory, hp);
  sim::DeviceExecution wd(sim::device_ga10(), 1);
  HonestPolicy honest;
  const EpochTrace trace = honest.produce_trace(worker, ctx, wd);

  VerifierConfig cfg;
  cfg.samples_q = 3;
  cfg.beta = 2e-3;
  Verifier verifier(factory, hp, cfg);
  sim::DeviceExecution md(sim::device_g3090(), 2);
  EXPECT_TRUE(verifier
                  .verify(commit_v1(trace), trace, ctx, hash_state(ctx.initial), md)
                  .accepted);
}

// ---------------------------------------------------------------------------
// Deterministic augmentation

TEST(Augmentation, FlipCoinsAreDeterministicAndBalanced) {
  DeterministicSelector a(12), b(12), c(13);
  int flips = 0;
  for (std::int64_t step = 0; step < 50; ++step) {
    for (std::int64_t n = 0; n < 8; ++n) {
      EXPECT_EQ(a.augment_flip(step, n), b.augment_flip(step, n));
      flips += a.augment_flip(step, n) ? 1 : 0;
    }
  }
  EXPECT_NEAR(flips, 200, 60);  // ~50% of 400
  // Different nonce => different coins somewhere.
  bool any_diff = false;
  for (std::int64_t step = 0; step < 10 && !any_diff; ++step) {
    any_diff = a.augment_flip(step, 0) != c.augment_flip(step, 0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Augmentation, AugmentedTrainingStillVerifies) {
  data::SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 4;
  data_cfg.num_examples = 128;
  data_cfg.image_size = 6;
  data_cfg.seed = 31;
  const data::Dataset dataset = data::make_synthetic_images(data_cfg);
  const data::DatasetView view = data::DatasetView::whole(dataset);

  nn::ModelConfig model_cfg;
  model_cfg.image_size = 6;
  model_cfg.width = 2;
  model_cfg.num_classes = 4;
  model_cfg.seed = 17;
  const nn::ModelFactory factory = nn::mini_resnet18_factory(model_cfg, 1);

  Hyperparams hp;
  hp.learning_rate = 0.02F;
  hp.batch_size = 8;
  hp.steps_per_epoch = 6;
  hp.checkpoint_interval = 2;
  hp.augment_hflip = true;

  StepExecutor init(factory, hp);
  EpochContext ctx;
  ctx.nonce = 505;
  ctx.initial = init.save_state();
  ctx.dataset = &view;

  StepExecutor worker(factory, hp);
  sim::DeviceExecution wd(sim::device_ga10(), 4);
  HonestPolicy honest;
  const EpochTrace trace = honest.produce_trace(worker, ctx, wd);

  VerifierConfig cfg;
  cfg.samples_q = 3;
  cfg.beta = 5e-2;  // small conv model, aggressive lr: wider band
  Verifier verifier(factory, hp, cfg);
  sim::DeviceExecution md(sim::device_g3090(), 5);
  EXPECT_TRUE(verifier
                  .verify(commit_v1(trace), trace, ctx, hash_state(ctx.initial), md)
                  .accepted);

  // A worker that trains WITHOUT the agreed augmentation is caught.
  Hyperparams no_aug = hp;
  no_aug.augment_hflip = false;
  StepExecutor cheater(factory, no_aug);
  sim::DeviceExecution cd(sim::device_ga10(), 6);
  const EpochTrace cheat = honest.produce_trace(cheater, ctx, cd);
  sim::DeviceExecution md2(sim::device_g3090(), 7);
  EXPECT_FALSE(
      verifier.verify(commit_v1(cheat), cheat, ctx, hash_state(ctx.initial), md2)
          .accepted);
}

TEST(Augmentation, FlipActuallyMirrorsPixels) {
  // Train-side check via a 1-step run is indirect; test the transform
  // directly through the executor by comparing two selectors' outputs would
  // be heavy — instead verify the coin-independence contract: rank-2 inputs
  // are untouched even with the flag on.
  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_examples = 64;
  data_cfg.features = 16;
  data_cfg.num_classes = 4;
  const data::Dataset blobs = data::make_synthetic_blobs(data_cfg);
  const data::DatasetView view = data::DatasetView::whole(blobs);
  Hyperparams hp;
  hp.batch_size = 8;
  hp.steps_per_epoch = 2;
  hp.checkpoint_interval = 1;
  hp.augment_hflip = true;  // no-op for rank-2 data
  hp.learning_rate = 0.01F;
  StepExecutor a(nn::mlp_factory(16, {8}, 4, 3), hp);
  Hyperparams hp_off = hp;
  hp_off.augment_hflip = false;
  StepExecutor b(nn::mlp_factory(16, {8}, 4, 3), hp_off);
  const DeterministicSelector sel(1);
  a.run_steps(0, 2, view, sel, nullptr);
  b.run_steps(0, 2, view, sel, nullptr);
  EXPECT_EQ(a.save_state().model, b.save_state().model);
}

}  // namespace
}  // namespace rpol::core
