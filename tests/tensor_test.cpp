// Unit tests for the tensor substrate: RNG determinism and distribution,
// tensor arithmetic, matmul/im2col kernels, canonical serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tensor/layout.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace rpol {
namespace {

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, FloatsInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0F);
    EXPECT_LT(f, 1.0F);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalHasCorrectMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(9);
  const auto perm = rng.permutation(257);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  const std::uint64_t s1 = derive_seed(100, 0);
  const std::uint64_t s2 = derive_seed(100, 1);
  EXPECT_NE(s1, s2);
  // Streams from adjacent ids should not be shifted copies.
  Rng a(s1), b(s2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ---------------------------------------------------------------------------
// Tensor

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.at(i), 0.0F);
}

TEST(Tensor, DataMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0F, 2.0F, 3.0F}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0F);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a.at(2), 33.0F);
  a -= b;
  EXPECT_EQ(a.at(1), 2.0F);
  a *= 2.0F;
  EXPECT_EQ(a.at(0), 2.0F);
  a.add_scaled(b, 0.1F);
  EXPECT_NEAR(a.at(2), 9.0F, 1e-5F);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.add_scaled(b, 1.0F), std::invalid_argument);
}

TEST(Tensor, L2NormAndDistance) {
  Tensor a({2}, {3, 4});
  EXPECT_DOUBLE_EQ(a.l2_norm(), 5.0);
  Tensor b({2}, {0, 0});
  EXPECT_DOUBLE_EQ(l2_distance(a, b), 5.0);
  EXPECT_THROW(l2_distance(std::vector<float>{1}, std::vector<float>{1, 2}),
               std::invalid_argument);
}

TEST(Tensor, At4Indexing) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 42.0F;
  EXPECT_EQ(t.at(t.numel() - 1), 42.0F);
}

TEST(Tensor, RandnUsesStddev) {
  Rng rng(13);
  const Tensor t = Tensor::randn({10000}, rng, 0.5F);
  double sq = 0.0;
  for (const float v : t.vec()) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sq / 10000.0), 0.5, 0.02);
}

// ---------------------------------------------------------------------------
// Ops

TEST(Ops, MatmulHandValues) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 58.0F);
  EXPECT_EQ(c.at2(0, 1), 64.0F);
  EXPECT_EQ(c.at2(1, 0), 139.0F);
  EXPECT_EQ(c.at2(1, 1), 154.0F);
}

TEST(Ops, MatmulShapeChecks) {
  const Tensor a({2, 3});
  const Tensor b({2, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Ops, TransposedVariantsAgree) {
  Rng rng(17);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);
  const Tensor c = matmul(a, b);

  // a^T has shape (5,4): matmul_tn(a^T, b) == a * b.
  Tensor at({5, 4});
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t j = 0; j < 5; ++j) at.at2(j, i) = a.at2(i, j);
  const Tensor c_tn = matmul_tn(at, b);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.at(i), c_tn.at(i), 1e-4F);
  }

  // b^T has shape (6,5): matmul_nt(a, b^T) == a * b.
  Tensor bt({6, 5});
  for (std::int64_t i = 0; i < 5; ++i)
    for (std::int64_t j = 0; j < 6; ++j) bt.at2(j, i) = b.at2(i, j);
  const Tensor c_nt = matmul_nt(a, bt);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.at(i), c_nt.at(i), 1e-4F);
  }
}

TEST(Ops, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1, no padding: columns are the input itself.
  Conv2dSpec spec{2, 1, 1, 1, 0};
  Tensor input({1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor cols = im2col(input, spec);
  EXPECT_EQ(cols.shape(), (Shape{2, 4}));
  EXPECT_EQ(cols.at2(0, 0), 1.0F);
  EXPECT_EQ(cols.at2(1, 3), 8.0F);
}

TEST(Ops, Im2ColPaddingZeroFills) {
  Conv2dSpec spec{1, 1, 3, 1, 1};
  Tensor input({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor cols = im2col(input, spec);
  // Patch row 0 = kernel position (0,0): output (0,0) sees padded zero.
  EXPECT_EQ(cols.at2(0, 0), 0.0F);
  // Center kernel position (1,1) row index = 4: output (0,0) sees input(0,0).
  EXPECT_EQ(cols.at2(4, 0), 1.0F);
}

TEST(Ops, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // the conv backward pass relies on.
  Rng rng(23);
  Conv2dSpec spec{3, 2, 3, 2, 1};
  const Shape in_shape{2, 3, 6, 6};
  const Tensor x = Tensor::randn(in_shape, rng);
  const Tensor cols = im2col(x, spec);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor back = col2im(y, spec, in_shape);

  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols.at(i)) * y.at(i);
  }
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.at(i)) * back.at(i);
  }
  EXPECT_NEAR(lhs, rhs, std::abs(lhs) * 1e-4 + 1e-4);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(29);
  const Tensor logits = Tensor::randn({5, 7}, rng, 3.0F);
  const Tensor probs = softmax_rows(logits);
  for (std::int64_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 7; ++c) {
      EXPECT_GT(probs.at2(r, c), 0.0F);
      sum += probs.at2(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxNumericallyStable) {
  const Tensor logits({1, 3}, {1000.0F, 1000.0F, 1000.0F});
  const Tensor probs = softmax_rows(logits);
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(probs.at2(0, c), 1.0F / 3.0F, 1e-5F);
  }
}

TEST(Ops, ArgmaxRow) {
  const Tensor t({2, 3}, {1, 5, 2, 9, 0, 3});
  EXPECT_EQ(argmax_row(t, 0), 1);
  EXPECT_EQ(argmax_row(t, 1), 0);
}

// ---------------------------------------------------------------------------
// Blocked layouts & packed GEMM (tensor/layout.h). Parity expectations here
// are BITWISE (EXPECT_EQ on floats): the direct/packed kernels promise
// bit-identical results to the im2col + GEMM fallback, not merely close
// ones — that is what keeps checkpoint hashes stable across paths.

TEST(Layout, NchwBlockRoundTrip) {
  Rng rng(41);
  for (const std::int64_t c : {1, 5, 8, 19}) {
    const Tensor x = Tensor::randn({2, c, 3, 4}, rng);
    const Tensor blocked = layout::nchw_to_nchw8c(x);
    EXPECT_EQ(blocked.shape(), (Shape{2, layout::blocks(c), 3, 4, 8}));
    const Tensor back = layout::nchw8c_to_nchw(blocked, c);
    ASSERT_EQ(back.shape(), x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(back.at(i), x.at(i));
  }
}

TEST(Layout, NchwBlockPadsLanesWithZeros) {
  Rng rng(43);
  const std::int64_t c = 5;  // 3 padded lanes in the single block
  const Tensor x = Tensor::randn({1, c, 2, 2}, rng);
  const Tensor blocked = layout::nchw_to_nchw8c(x);
  const float* p = blocked.data();
  for (std::int64_t i = 0; i < 2 * 2; ++i) {
    for (std::int64_t lane = c; lane < 8; ++lane) {
      EXPECT_EQ(p[i * 8 + lane], 0.0F);
    }
  }
}

TEST(Layout, WeightBlockRoundTrip) {
  Rng rng(47);
  for (const auto& [o, c, k] : {std::tuple<std::int64_t, std::int64_t,
                                           std::int64_t>{7, 5, 3},
                                {8, 8, 1},
                                {16, 3, 3}}) {
    const Conv2dSpec spec{c, o, k, 1, k / 2};
    const Tensor w = Tensor::randn({o, c * k * k}, rng);
    const Tensor blocked = layout::oihw_to_oihw8i8o(w, spec);
    const Tensor back = layout::oihw8i8o_to_oihw(blocked, spec);
    ASSERT_EQ(back.shape(), w.shape());
    for (std::int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(back.at(i), w.at(i));
  }
}

TEST(Layout, PackedNtGemmBitwiseEqualsUnpacked) {
  Rng rng(53);
  // n = 11 exercises the zero-padded final panel; m = 5 the GEMM row tail.
  const Tensor a = Tensor::randn({5, 13}, rng);
  const Tensor b = Tensor::randn({11, 13}, rng);
  const Tensor ref = matmul_nt(a, b);
  const PackedPanels packed = pack_nt_panels(b);
  const Tensor got = matmul_nt_packed(a, packed);
  ASSERT_EQ(got.shape(), ref.shape());
  for (std::int64_t i = 0; i < ref.numel(); ++i) EXPECT_EQ(got.at(i), ref.at(i));
}

TEST(Layout, PackedNtGemmShapeMismatchThrows) {
  const Tensor a({2, 4});
  const PackedPanels packed = pack_nt_panels(Tensor({3, 5}));
  EXPECT_THROW(matmul_nt_packed(a, packed), std::invalid_argument);
}

// Reference conv forward: the exact im2col + GEMM computation Conv2d's
// fallback path performs, producing NCHW output.
Tensor conv_ref_forward(const Tensor& x, const Tensor& w, const Conv2dSpec& spec) {
  const Tensor cols = im2col(x, spec);
  const Tensor gemm = matmul(w, cols);
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = spec.out_size(x.dim(2)), ow = spec.out_size(x.dim(3));
  Tensor out({n, spec.out_channels, oh, ow});
  for (std::int64_t img = 0; img < n; ++img)
    for (std::int64_t oc = 0; oc < spec.out_channels; ++oc)
      for (std::int64_t i = 0; i < oh * ow; ++i)
        out.at((img * spec.out_channels + oc) * oh * ow + i) =
            gemm.at2(oc, img * oh * ow + i);
  return out;
}

TEST(Layout, DirectForwardBitwiseEqualsIm2colGemm) {
  Rng rng(59);
  const std::vector<Conv2dSpec> specs = {
      {5, 7, 3, 1, 1},   // unaligned channels, 3x3 stride 1
      {5, 7, 3, 2, 1},   // 3x3 stride 2
      {8, 16, 1, 1, 0},  // aligned 1x1
      {3, 9, 1, 2, 0},   // 1x1 stride 2
  };
  for (const Conv2dSpec& spec : specs) {
    const Tensor x = Tensor::randn({2, spec.in_channels, 6, 6}, rng);
    const Tensor w = Tensor::randn(
        {spec.out_channels, spec.in_channels * spec.kernel * spec.kernel}, rng);
    const Tensor ref = conv_ref_forward(x, w, spec);
    const Tensor xb = layout::nchw_to_nchw8c(x, spec.padding);
    const layout::ConvWeightPack pack = layout::make_conv_weight_pack(w, spec);
    const Tensor yb = layout::conv2d_direct_forward(xb, pack.blocked, Tensor(),
                                                    spec, 6, 6);
    const Tensor y = layout::nchw8c_to_nchw(yb, spec.out_channels);
    ASSERT_EQ(y.shape(), ref.shape());
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ASSERT_EQ(y.at(i), ref.at(i))
          << "kernel=" << spec.kernel << " stride=" << spec.stride
          << " element " << i;
    }
  }
}

TEST(Layout, DirectBackwardWeightsBitwiseEqualsGemm) {
  Rng rng(61);
  for (const Conv2dSpec spec :
       {Conv2dSpec{5, 7, 3, 1, 1}, Conv2dSpec{4, 6, 3, 2, 1},
        Conv2dSpec{5, 9, 1, 1, 0}}) {
    const std::int64_t oh = spec.out_size(6), ow = spec.out_size(6);
    const Tensor x = Tensor::randn({2, spec.in_channels, 6, 6}, rng);
    const Tensor dy = Tensor::randn({2, spec.out_channels, oh, ow}, rng);
    // Reference: dW = dY_gemm * cols^T.
    const Tensor cols = im2col(x, spec);
    Tensor dy_gemm({spec.out_channels, 2 * oh * ow});
    for (std::int64_t img = 0; img < 2; ++img)
      for (std::int64_t oc = 0; oc < spec.out_channels; ++oc)
        for (std::int64_t i = 0; i < oh * ow; ++i)
          dy_gemm.at2(oc, img * oh * ow + i) =
              dy.at((img * spec.out_channels + oc) * oh * ow + i);
    const Tensor ref = matmul_nt(dy_gemm, cols);
    Tensor got(ref.shape());
    layout::conv2d_direct_backward_weights(
        layout::nchw_to_nchw8c(dy), layout::nchw_to_nchw8c(x, spec.padding),
        spec, 6, 6, got);
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ASSERT_EQ(got.at(i), ref.at(i))
          << "kernel=" << spec.kernel << " stride=" << spec.stride
          << " element " << i;
    }
  }
}

TEST(Layout, DirectBackwardDataBitwiseEqualsGemm) {
  Rng rng(67);
  for (const Conv2dSpec spec :
       {Conv2dSpec{5, 7, 3, 1, 1}, Conv2dSpec{4, 6, 3, 2, 1},
        Conv2dSpec{5, 9, 1, 1, 0}}) {
    const Shape in_shape{2, spec.in_channels, 6, 6};
    const std::int64_t oh = spec.out_size(6), ow = spec.out_size(6);
    const Tensor w = Tensor::randn(
        {spec.out_channels, spec.in_channels * spec.kernel * spec.kernel}, rng);
    const Tensor dy = Tensor::randn({2, spec.out_channels, oh, ow}, rng);
    Tensor dy_gemm({spec.out_channels, 2 * oh * ow});
    for (std::int64_t img = 0; img < 2; ++img)
      for (std::int64_t oc = 0; oc < spec.out_channels; ++oc)
        for (std::int64_t i = 0; i < oh * ow; ++i)
          dy_gemm.at2(oc, img * oh * ow + i) =
              dy.at((img * spec.out_channels + oc) * oh * ow + i);
    const Tensor ref = col2im(matmul_tn(w, dy_gemm), spec, in_shape);
    const layout::ConvWeightPack pack = layout::make_conv_weight_pack(w, spec);
    const Tensor got = layout::conv2d_direct_backward_data(dy, pack.transposed,
                                                           spec, in_shape);
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ASSERT_EQ(got.at(i), ref.at(i))
          << "kernel=" << spec.kernel << " stride=" << spec.stride
          << " element " << i;
    }
  }
}

TEST(Layout, DirectConvGateDefaultsOnAndOverrides) {
  // The build never sets RPOL_DIRECT_CONV in tier-1 runs, so the default
  // must be enabled; the programmatic override must win in both directions.
  const bool initial = layout::direct_conv_enabled();
  layout::set_direct_conv_enabled(false);
  EXPECT_FALSE(layout::direct_conv_enabled());
  layout::set_direct_conv_enabled(true);
  EXPECT_TRUE(layout::direct_conv_enabled());
  layout::set_direct_conv_enabled(initial);
}

TEST(Layout, DirectConvSupportsOnlySmallKernels) {
  EXPECT_TRUE(layout::direct_conv_supports(Conv2dSpec{3, 8, 3, 1, 1}));
  EXPECT_TRUE(layout::direct_conv_supports(Conv2dSpec{3, 8, 1, 1, 0}));
  EXPECT_FALSE(layout::direct_conv_supports(Conv2dSpec{3, 8, 7, 2, 3}));
  EXPECT_FALSE(layout::direct_conv_supports(Conv2dSpec{3, 8, 5, 1, 2}));
}

TEST(Tensor, ResizeReuseKeepsCapacity) {
  Tensor t({4, 4});
  t.fill(1.0F);
  const float* before = t.data();
  t.clear_keep_capacity();
  EXPECT_EQ(t.numel(), 0);
  t.resize_reuse({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.data(), before);  // vector capacity was reused, no realloc
}

// ---------------------------------------------------------------------------
// Serialization

TEST(Serialize, PrimitivesRoundTrip) {
  Bytes buf;
  append_u64(buf, 0xDEADBEEFCAFEF00DULL);
  append_i64(buf, -42);
  append_f32(buf, 3.25F);
  std::size_t off = 0;
  EXPECT_EQ(read_u64(buf, off), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(read_i64(buf, off), -42);
  EXPECT_EQ(read_f32(buf, off), 3.25F);
  EXPECT_EQ(off, buf.size());
}

TEST(Serialize, TruncatedBufferThrows) {
  Bytes buf;
  append_u64(buf, 1);
  buf.pop_back();
  std::size_t off = 0;
  EXPECT_THROW(read_u64(buf, off), std::out_of_range);
}

TEST(Serialize, TensorRoundTrip) {
  Rng rng(31);
  const Tensor t = Tensor::randn({2, 3, 4}, rng);
  const Bytes buf = serialize_tensor(t);
  std::size_t off = 0;
  const Tensor u = deserialize_tensor(buf, off);
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(u.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(u.at(i), t.at(i));
}

TEST(Serialize, FloatsRoundTrip) {
  const std::vector<float> v{1.5F, -2.25F, 0.0F, 1e-30F};
  const Bytes buf = serialize_floats(v);
  std::size_t off = 0;
  const auto u = deserialize_floats(buf, off);
  EXPECT_EQ(u, v);
}

TEST(Serialize, CanonicalBytesAreStable) {
  // Two identical tensors serialize to identical bytes — the property that
  // makes commitment hashes comparable across parties.
  const Tensor a({2}, {1.0F, -0.0F});
  const Tensor b({2}, {1.0F, -0.0F});
  EXPECT_EQ(serialize_tensor(a), serialize_tensor(b));
}

TEST(Serialize, BadFloatCountThrows) {
  Bytes buf;
  append_u64(buf, 1000);  // claims 1000 floats, provides none
  std::size_t off = 0;
  EXPECT_THROW(deserialize_floats(buf, off), std::invalid_argument);
}

}  // namespace
}  // namespace rpol
