// Unit tests for the tensor substrate: RNG determinism and distribution,
// tensor arithmetic, matmul/im2col kernels, canonical serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace rpol {
namespace {

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, FloatsInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0F);
    EXPECT_LT(f, 1.0F);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalHasCorrectMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(9);
  const auto perm = rng.permutation(257);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  const std::uint64_t s1 = derive_seed(100, 0);
  const std::uint64_t s2 = derive_seed(100, 1);
  EXPECT_NE(s1, s2);
  // Streams from adjacent ids should not be shifted copies.
  Rng a(s1), b(s2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ---------------------------------------------------------------------------
// Tensor

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.at(i), 0.0F);
}

TEST(Tensor, DataMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0F, 2.0F, 3.0F}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0F);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a.at(2), 33.0F);
  a -= b;
  EXPECT_EQ(a.at(1), 2.0F);
  a *= 2.0F;
  EXPECT_EQ(a.at(0), 2.0F);
  a.add_scaled(b, 0.1F);
  EXPECT_NEAR(a.at(2), 9.0F, 1e-5F);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.add_scaled(b, 1.0F), std::invalid_argument);
}

TEST(Tensor, L2NormAndDistance) {
  Tensor a({2}, {3, 4});
  EXPECT_DOUBLE_EQ(a.l2_norm(), 5.0);
  Tensor b({2}, {0, 0});
  EXPECT_DOUBLE_EQ(l2_distance(a, b), 5.0);
  EXPECT_THROW(l2_distance(std::vector<float>{1}, std::vector<float>{1, 2}),
               std::invalid_argument);
}

TEST(Tensor, At4Indexing) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 42.0F;
  EXPECT_EQ(t.at(t.numel() - 1), 42.0F);
}

TEST(Tensor, RandnUsesStddev) {
  Rng rng(13);
  const Tensor t = Tensor::randn({10000}, rng, 0.5F);
  double sq = 0.0;
  for (const float v : t.vec()) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sq / 10000.0), 0.5, 0.02);
}

// ---------------------------------------------------------------------------
// Ops

TEST(Ops, MatmulHandValues) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 58.0F);
  EXPECT_EQ(c.at2(0, 1), 64.0F);
  EXPECT_EQ(c.at2(1, 0), 139.0F);
  EXPECT_EQ(c.at2(1, 1), 154.0F);
}

TEST(Ops, MatmulShapeChecks) {
  const Tensor a({2, 3});
  const Tensor b({2, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Ops, TransposedVariantsAgree) {
  Rng rng(17);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);
  const Tensor c = matmul(a, b);

  // a^T has shape (5,4): matmul_tn(a^T, b) == a * b.
  Tensor at({5, 4});
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t j = 0; j < 5; ++j) at.at2(j, i) = a.at2(i, j);
  const Tensor c_tn = matmul_tn(at, b);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.at(i), c_tn.at(i), 1e-4F);
  }

  // b^T has shape (6,5): matmul_nt(a, b^T) == a * b.
  Tensor bt({6, 5});
  for (std::int64_t i = 0; i < 5; ++i)
    for (std::int64_t j = 0; j < 6; ++j) bt.at2(j, i) = b.at2(i, j);
  const Tensor c_nt = matmul_nt(a, bt);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.at(i), c_nt.at(i), 1e-4F);
  }
}

TEST(Ops, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1, no padding: columns are the input itself.
  Conv2dSpec spec{2, 1, 1, 1, 0};
  Tensor input({1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor cols = im2col(input, spec);
  EXPECT_EQ(cols.shape(), (Shape{2, 4}));
  EXPECT_EQ(cols.at2(0, 0), 1.0F);
  EXPECT_EQ(cols.at2(1, 3), 8.0F);
}

TEST(Ops, Im2ColPaddingZeroFills) {
  Conv2dSpec spec{1, 1, 3, 1, 1};
  Tensor input({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor cols = im2col(input, spec);
  // Patch row 0 = kernel position (0,0): output (0,0) sees padded zero.
  EXPECT_EQ(cols.at2(0, 0), 0.0F);
  // Center kernel position (1,1) row index = 4: output (0,0) sees input(0,0).
  EXPECT_EQ(cols.at2(4, 0), 1.0F);
}

TEST(Ops, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // the conv backward pass relies on.
  Rng rng(23);
  Conv2dSpec spec{3, 2, 3, 2, 1};
  const Shape in_shape{2, 3, 6, 6};
  const Tensor x = Tensor::randn(in_shape, rng);
  const Tensor cols = im2col(x, spec);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor back = col2im(y, spec, in_shape);

  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols.at(i)) * y.at(i);
  }
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.at(i)) * back.at(i);
  }
  EXPECT_NEAR(lhs, rhs, std::abs(lhs) * 1e-4 + 1e-4);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(29);
  const Tensor logits = Tensor::randn({5, 7}, rng, 3.0F);
  const Tensor probs = softmax_rows(logits);
  for (std::int64_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 7; ++c) {
      EXPECT_GT(probs.at2(r, c), 0.0F);
      sum += probs.at2(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxNumericallyStable) {
  const Tensor logits({1, 3}, {1000.0F, 1000.0F, 1000.0F});
  const Tensor probs = softmax_rows(logits);
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(probs.at2(0, c), 1.0F / 3.0F, 1e-5F);
  }
}

TEST(Ops, ArgmaxRow) {
  const Tensor t({2, 3}, {1, 5, 2, 9, 0, 3});
  EXPECT_EQ(argmax_row(t, 0), 1);
  EXPECT_EQ(argmax_row(t, 1), 0);
}

// ---------------------------------------------------------------------------
// Serialization

TEST(Serialize, PrimitivesRoundTrip) {
  Bytes buf;
  append_u64(buf, 0xDEADBEEFCAFEF00DULL);
  append_i64(buf, -42);
  append_f32(buf, 3.25F);
  std::size_t off = 0;
  EXPECT_EQ(read_u64(buf, off), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(read_i64(buf, off), -42);
  EXPECT_EQ(read_f32(buf, off), 3.25F);
  EXPECT_EQ(off, buf.size());
}

TEST(Serialize, TruncatedBufferThrows) {
  Bytes buf;
  append_u64(buf, 1);
  buf.pop_back();
  std::size_t off = 0;
  EXPECT_THROW(read_u64(buf, off), std::out_of_range);
}

TEST(Serialize, TensorRoundTrip) {
  Rng rng(31);
  const Tensor t = Tensor::randn({2, 3, 4}, rng);
  const Bytes buf = serialize_tensor(t);
  std::size_t off = 0;
  const Tensor u = deserialize_tensor(buf, off);
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(u.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(u.at(i), t.at(i));
}

TEST(Serialize, FloatsRoundTrip) {
  const std::vector<float> v{1.5F, -2.25F, 0.0F, 1e-30F};
  const Bytes buf = serialize_floats(v);
  std::size_t off = 0;
  const auto u = deserialize_floats(buf, off);
  EXPECT_EQ(u, v);
}

TEST(Serialize, CanonicalBytesAreStable) {
  // Two identical tensors serialize to identical bytes — the property that
  // makes commitment hashes comparable across parties.
  const Tensor a({2}, {1.0F, -0.0F});
  const Tensor b({2}, {1.0F, -0.0F});
  EXPECT_EQ(serialize_tensor(a), serialize_tensor(b));
}

TEST(Serialize, BadFloatCountThrows) {
  Bytes buf;
  append_u64(buf, 1000);  // claims 1000 floats, provides none
  std::size_t off = 0;
  EXPECT_THROW(deserialize_floats(buf, off), std::invalid_argument);
}

}  // namespace
}  // namespace rpol
