// Mining-pool integration tests: the full per-epoch protocol with honest
// and adversarial workers, across Baseline / RPoLv1 / RPoLv2 schemes.

#include <gtest/gtest.h>

#include "data/partition.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

struct PoolFixture : public ::testing::Test {
  static constexpr std::size_t kWorkers = 4;

  void SetUp() override {
    task = TinyTask::make(/*seed=*/61, /*steps=*/10, /*interval=*/3);
    split = std::make_unique<data::TrainTestSplit>(
        data::train_test_split(task.dataset, 0.25, 17));
  }

  PoolConfig config(Scheme scheme, std::int64_t epochs = 2) {
    PoolConfig cfg;
    cfg.scheme = scheme;
    cfg.hp = task.hp;
    cfg.epochs = epochs;
    cfg.samples_q = 3;
    cfg.seed = 71;
    return cfg;
  }

  std::vector<WorkerSpec> workers(std::size_t num_adv, bool replay) {
    std::vector<WorkerSpec> specs;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < kWorkers; ++w) {
      WorkerSpec spec;
      if (w < num_adv) {
        if (replay) {
          spec.policy = std::make_unique<ReplayPolicy>();
        } else {
          spec.policy = std::make_unique<SpoofPolicy>(0.1, 0.5);
        }
      } else {
        spec.policy = std::make_unique<HonestPolicy>();
      }
      spec.device = devices[w % devices.size()];
      specs.push_back(std::move(spec));
    }
    return specs;
  }

  MiningPool make_pool(Scheme scheme, std::size_t num_adv, bool replay,
                       std::int64_t epochs = 2) {
    return MiningPool(config(scheme, epochs), task.factory, task.dataset,
                      split->test, workers(num_adv, replay));
  }

  TinyTask task{TinyTask::make()};
  std::unique_ptr<data::TrainTestSplit> split;
};

TEST_F(PoolFixture, AllHonestAllAccepted) {
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    MiningPool pool = make_pool(scheme, 0, false);
    const PoolRunReport report = pool.run();
    for (const auto& epoch : report.epochs) {
      EXPECT_EQ(epoch.rejected_count, 0) << scheme_name(scheme);
      for (const bool a : epoch.accepted) EXPECT_TRUE(a);
    }
  }
}

TEST_F(PoolFixture, ReplayAdversariesDetected) {
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    MiningPool pool = make_pool(scheme, 2, /*replay=*/true);
    const EpochReport epoch = pool.run_epoch(0);
    EXPECT_EQ(epoch.rejected_count, 2) << scheme_name(scheme);
    EXPECT_FALSE(epoch.accepted[0]);
    EXPECT_FALSE(epoch.accepted[1]);
    EXPECT_TRUE(epoch.accepted[2]);
    EXPECT_TRUE(epoch.accepted[3]);
  }
}

TEST_F(PoolFixture, SpoofAdversariesDetected) {
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    MiningPool pool = make_pool(scheme, 2, /*replay=*/false);
    const EpochReport epoch = pool.run_epoch(0);
    // Spoofers fake 90% of transitions; with q=3 the odds of sampling only
    // the honest prefix are ~0.1% — they are caught deterministically here.
    EXPECT_EQ(epoch.rejected_count, 2) << scheme_name(scheme);
  }
}

TEST_F(PoolFixture, BaselineAcceptsEveryone) {
  MiningPool pool = make_pool(Scheme::kBaseline, 2, true);
  const EpochReport epoch = pool.run_epoch(0);
  EXPECT_EQ(epoch.rejected_count, 0);
  EXPECT_EQ(epoch.lsh_mismatches, 0);
  EXPECT_EQ(epoch.manager_reexecuted_steps, 0);
}

TEST_F(PoolFixture, VerifiedPoolBeatsBaselineUnderAttack) {
  // Fig. 6's core claim: with adversaries present, the verified pool's
  // global model outperforms the unverified baseline.
  MiningPool baseline = make_pool(Scheme::kBaseline, 3, true, 2);
  MiningPool verified = make_pool(Scheme::kRPoLv1, 3, true, 2);
  const double acc_baseline = baseline.run().final_accuracy;
  const double acc_verified = verified.run().final_accuracy;
  EXPECT_GT(acc_verified, acc_baseline);
}

TEST_F(PoolFixture, V1AndV2AgreeOnAcceptance) {
  // RPoLv2's LSH shortcut must not change accept/reject outcomes (Sec.
  // VII-E: "experimentally obtains the same inference accuracy as v1").
  MiningPool v1 = make_pool(Scheme::kRPoLv1, 1, false);
  MiningPool v2 = make_pool(Scheme::kRPoLv2, 1, false);
  const EpochReport e1 = v1.run_epoch(0);
  const EpochReport e2 = v2.run_epoch(0);
  EXPECT_EQ(e1.accepted, e2.accepted);
}

TEST_F(PoolFixture, CalibrationProducesThresholdsEachEpoch) {
  MiningPool pool = make_pool(Scheme::kRPoLv2, 0, false);
  const EpochReport e0 = pool.run_epoch(0);
  EXPECT_GT(e0.alpha, 0.0);
  EXPECT_NEAR(e0.beta, 5.0 * e0.alpha, 1e-12);
  EXPECT_GE(e0.lsh_params.k, 1);
  EXPECT_GE(e0.lsh_params.l, 1);
  EXPECT_LE(e0.lsh_params.k * e0.lsh_params.l, 16);
}

TEST_F(PoolFixture, TrafficAccountingNonTrivial) {
  MiningPool v1 = make_pool(Scheme::kRPoLv1, 0, false);
  MiningPool v2 = make_pool(Scheme::kRPoLv2, 0, false);
  MiningPool base = make_pool(Scheme::kBaseline, 0, false);
  const auto b1 = v1.run_epoch(0).bytes_this_epoch;
  const auto b2 = v2.run_epoch(0).bytes_this_epoch;
  const auto bb = base.run_epoch(0).bytes_this_epoch;
  EXPECT_GT(b1, bb);  // verification costs traffic
  EXPECT_GT(b2, bb);
  EXPECT_LT(b2, b1);  // LSH optimization saves proof traffic
}

TEST_F(PoolFixture, StorageAccountingCoversCheckpoints) {
  MiningPool pool = make_pool(Scheme::kRPoLv1, 0, false);
  const EpochReport epoch = pool.run_epoch(0);
  // 5 checkpoints x (model + optimizer) floats.
  EXPECT_GT(epoch.worker_storage_bytes, 0u);
}

TEST_F(PoolFixture, AccuracyImprovesOverEpochs) {
  MiningPool pool = make_pool(Scheme::kRPoLv2, 0, false, 6);
  const PoolRunReport report = pool.run();
  EXPECT_GT(report.final_accuracy, report.epochs.front().test_accuracy);
  EXPECT_GT(report.final_accuracy, 0.5);
}

TEST_F(PoolFixture, HonestOnlyBaselineMatchesVerifiedAccuracy) {
  // With no adversaries, verification must not harm model quality.
  MiningPool base = make_pool(Scheme::kBaseline, 0, false, 3);
  MiningPool v2 = make_pool(Scheme::kRPoLv2, 0, false, 3);
  const double acc_base = base.run().final_accuracy;
  const double acc_v2 = v2.run().final_accuracy;
  EXPECT_NEAR(acc_base, acc_v2, 0.08);
}

TEST_F(PoolFixture, RejectedWorkersDontMoveGlobalModel) {
  // All-adversary pool: every update rejected, so the global model stays at
  // its initial state.
  MiningPool pool = make_pool(Scheme::kRPoLv1, kWorkers, true, 1);
  const std::vector<float> before = pool.global_model();
  pool.run_epoch(0);
  EXPECT_EQ(pool.global_model(), before);
}

TEST_F(PoolFixture, CalibrateOnceAblationStillWorks) {
  PoolConfig cfg = config(Scheme::kRPoLv2, 2);
  cfg.calibrate_every_epoch = false;
  MiningPool pool(cfg, task.factory, task.dataset, split->test,
                  workers(1, false));
  const PoolRunReport report = pool.run();
  EXPECT_EQ(report.epochs.size(), 2u);
  // The adversary is still caught with the epoch-0 thresholds.
  EXPECT_EQ(report.epochs[1].rejected_count, 1);
}

TEST_F(PoolFixture, DecentralizedVerificationMatchesCentralized) {
  // Peer-committee verification must reach the same accept/reject decisions
  // as the manager-only path (all committee members honest).
  PoolConfig central_cfg = config(Scheme::kRPoLv1, 1);
  PoolConfig dec_cfg = central_cfg;
  dec_cfg.decentralized_verification = true;
  dec_cfg.verifiers_per_sample = 3;

  MiningPool central(central_cfg, task.factory, task.dataset, split->test,
                     workers(2, true));
  MiningPool dec(dec_cfg, task.factory, task.dataset, split->test,
                 workers(2, true));
  const EpochReport ec = central.run_epoch(0);
  const EpochReport ed = dec.run_epoch(0);
  EXPECT_EQ(ec.accepted, ed.accepted);
  EXPECT_EQ(ed.rejected_count, 2);
}

TEST_F(PoolFixture, DecentralizedAcceptsAllHonest) {
  PoolConfig cfg = config(Scheme::kRPoLv2, 2);
  cfg.decentralized_verification = true;
  MiningPool pool(cfg, task.factory, task.dataset, split->test,
                  workers(0, false));
  const PoolRunReport report = pool.run();
  for (const auto& e : report.epochs) EXPECT_EQ(e.rejected_count, 0);
  EXPECT_GT(report.final_accuracy, 0.4);
}

TEST_F(PoolFixture, CompactCommitmentsMatchHashListDecisions) {
  // The Merkle construction changes what travels, not what is accepted.
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    PoolConfig list_cfg = config(scheme, 1);
    PoolConfig compact_cfg = list_cfg;
    compact_cfg.compact_commitments = true;
    MiningPool list_pool(list_cfg, task.factory, task.dataset, split->test,
                         workers(2, true));
    MiningPool compact_pool(compact_cfg, task.factory, task.dataset,
                            split->test, workers(2, true));
    const EpochReport el = list_pool.run_epoch(0);
    const EpochReport ec = compact_pool.run_epoch(0);
    EXPECT_EQ(el.accepted, ec.accepted) << scheme_name(scheme);
    // Note: at this toy scale (5 checkpoints) the membership proofs cost
    // more than the hash list saves; the compact construction pays off for
    // long epochs (see CompactBeatsHashListForLongEpochs in
    // core_compact_commitment_test).
  }
}

TEST(PoolConstruction, RejectsEmptyWorkerSet) {
  const TinyTask task = TinyTask::make();
  const auto split = data::train_test_split(task.dataset, 0.2, 3);
  PoolConfig cfg;
  cfg.hp = task.hp;
  EXPECT_THROW(MiningPool(cfg, task.factory, task.dataset, split.test, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rpol::core
