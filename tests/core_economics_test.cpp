// Economics tests: Theorems 2-3 closed forms, including the paper's quoted
// sample counts, plus Monte-Carlo validation of the soundness bound against
// the actual sampling mechanism.

#include <gtest/gtest.h>

#include <cmath>

#include "core/economics.h"
#include "core/verifier.h"

namespace rpol::core {
namespace {

TEST(Economics, PerSampleEvasion) {
  EXPECT_DOUBLE_EQ(per_sample_evasion(0.0, 0.05), 0.05);
  EXPECT_DOUBLE_EQ(per_sample_evasion(1.0, 0.05), 1.0);
  EXPECT_NEAR(per_sample_evasion(0.5, 0.05), 0.525, 1e-12);
  EXPECT_THROW(per_sample_evasion(-0.1, 0.05), std::invalid_argument);
  EXPECT_THROW(per_sample_evasion(0.5, 1.5), std::invalid_argument);
}

TEST(Economics, SoundnessErrorDecaysGeometrically) {
  const double p1 = soundness_error(0.5, 0.05, 1);
  const double p2 = soundness_error(0.5, 0.05, 2);
  EXPECT_NEAR(p2, p1 * p1, 1e-12);
  EXPECT_THROW(soundness_error(0.5, 0.05, 0), std::invalid_argument);
}

TEST(Economics, PaperQuotedSampleCounts) {
  // Sec. VI: "When Pr_err = 1% and Pr_lsh(beta) = 5%, we need 3 and 47
  // samples for h_A = 10% and h_A = 90%."
  EXPECT_EQ(required_samples(0.01, 0.10, 0.05), 3);
  EXPECT_EQ(required_samples(0.01, 0.90, 0.05), 47);
}

TEST(Economics, PaperQuotedEconomicSampleCounts) {
  // Sec. VI example: C_train = 0.88, C_spoof = 0, Pr_lsh(beta) = 5% =>
  // q = 2 for h_A = 10% and q = 3 for h_A = 90%.
  EconomicParams params;
  EXPECT_EQ(economic_samples(0.10, params), 2);
  EXPECT_EQ(economic_samples(0.90, params), 3);
}

TEST(Economics, PaperQuotedSoundnessAtQ3) {
  // "when q = 3, the soundness error is about 74.12%" (h_A = 90%).
  EXPECT_NEAR(soundness_error(0.90, 0.05, 3), 0.7412, 0.0005);
}

TEST(Economics, RequiredSamplesMonotoneInHonesty) {
  // More honestly-trained checkpoints => harder to catch => more samples.
  std::int64_t prev = 0;
  for (double h = 0.1; h <= 0.91; h += 0.2) {
    const std::int64_t q = required_samples(0.01, h, 0.05);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Economics, RequiredSamplesMonotoneInTarget) {
  EXPECT_GE(required_samples(0.001, 0.5, 0.05),
            required_samples(0.05, 0.5, 0.05));
  EXPECT_THROW(required_samples(0.0, 0.5, 0.05), std::invalid_argument);
  EXPECT_THROW(required_samples(1.0, 0.5, 0.05), std::invalid_argument);
  EXPECT_THROW(required_samples(0.01, 1.0, 0.05), std::invalid_argument);
}

TEST(Economics, NetGainNegativeAtEconomicQ) {
  EconomicParams params;
  for (double h = 0.05; h <= 0.95; h += 0.05) {
    const std::int64_t q = economic_samples(h, params);
    EXPECT_LE(expected_net_gain(h, q, params), 1e-9)
        << "h=" << h << " q=" << q;
  }
}

TEST(Economics, CostlessCornerBoundedBySoundnessTarget) {
  // At h = 0 with C_spoof = 0 the attacker is literally costless, so no
  // finite q drives G_A below zero through costs; the implementation falls
  // back to a 1% soundness target, bounding the expected gain by 1% of the
  // reward.
  EconomicParams params;
  const std::int64_t q = economic_samples(0.0, params);
  EXPECT_LE(expected_net_gain(0.0, q, params), 0.01 * params.reward + 1e-12);
}

TEST(Economics, NetGainPositiveWithoutEnoughSamples) {
  // A 90%-honest attacker with one sample usually slips through profitably:
  // evasion ~0.905, costs 0.792 => positive gain.
  EconomicParams params;
  EXPECT_GT(expected_net_gain(0.90, 1, params), 0.0);
}

TEST(Economics, TransferCostsOnlyReduceGain) {
  EconomicParams free;
  EconomicParams priced = free;
  priced.c_transfer = 0.01;
  for (const double h : {0.1, 0.5, 0.9}) {
    EXPECT_LT(expected_net_gain(h, 3, priced), expected_net_gain(h, 3, free));
  }
}

TEST(Economics, FullyHonestWorkerGainsFromTraining) {
  // An honest worker (h = 1) passes always; with reward 1 and C_train 0.88
  // its net gain is positive — the incentive to join the pool.
  EconomicParams params;
  EXPECT_GT(expected_net_gain(1.0, 3, params), 0.0);
}

TEST(Economics, CostlessAttackerFallsBackToSoundnessTarget) {
  EconomicParams params;
  params.c_train = 0.0;
  params.c_spoof = 0.0;
  const std::int64_t q = economic_samples(0.0, params);
  // Must match the 1% soundness fallback for h = 0.
  EXPECT_EQ(q, required_samples(0.01, 0.0, params.pr_lsh_beta));
}

// Monte-Carlo: simulated evasion of the real sampling mechanism stays below
// the Theorem-2 bound (property check across honesty ratios).
class EvasionBound : public ::testing::TestWithParam<double> {};

TEST_P(EvasionBound, SimulatedEvasionBelowTheorem2) {
  const double h = GetParam();
  const std::int64_t transitions = 20;
  const std::int64_t honest_count =
      static_cast<std::int64_t>(h * static_cast<double>(transitions));
  const std::int64_t q = 3;
  // Pr_lsh(beta) = 0 in this simulation (distance test always catches a
  // spoofed transition), so the bound is h_eff^q with h_eff the fraction of
  // honest transitions actually achievable.
  const double h_eff = static_cast<double>(honest_count) / transitions;
  const double bound = std::pow(h_eff, q) + 0.05;  // slack for MC noise

  int evasions = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    Bytes b;
    append_u64(b, static_cast<std::uint64_t>(t));
    const auto samples =
        sample_transitions(99, sha256(b), transitions, q);
    bool caught = false;
    for (const auto s : samples) {
      if (s >= honest_count) caught = true;  // spoofed transitions at the end
    }
    if (!caught) ++evasions;
  }
  EXPECT_LE(static_cast<double>(evasions) / kTrials, bound) << "h=" << h;
}

INSTANTIATE_TEST_SUITE_P(HonestyGrid, EvasionBound,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace rpol::core
