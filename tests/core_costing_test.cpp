// Tests for the real-scale analytic cost model behind Tables II/III.

#include <gtest/gtest.h>

#include "core/costing.h"

namespace rpol::core {
namespace {

CostScenario scenario(Scheme scheme, std::size_t workers = 100) {
  CostScenario s;
  s.scheme = scheme;
  s.model = sim::real_resnet50();
  s.dataset = sim::real_imagenet();
  s.num_workers = workers;
  return s;
}

TEST(Costing, StepsPerWorkerEpoch) {
  // 1,281,167 images / 100 workers / batch 128 = 100 steps.
  EXPECT_EQ(steps_per_worker_epoch(scenario(Scheme::kBaseline)), 100);
  // 100 steps / interval 5 = 20 transitions + initial = 21 checkpoints.
  EXPECT_EQ(checkpoints_per_epoch(scenario(Scheme::kBaseline)), 21);
}

TEST(Costing, BaselineHasNoVerificationCosts) {
  const auto r = estimate_epoch_cost(scenario(Scheme::kBaseline));
  EXPECT_EQ(r.manager_verify_s, 0.0);
  EXPECT_EQ(r.manager_calibrate_s, 0.0);
  EXPECT_EQ(r.worker_lsh_s, 0.0);
  EXPECT_EQ(r.proof_bytes_total, 0u);
  EXPECT_EQ(r.storage_bytes_per_worker, sim::real_resnet50().weight_bytes);
}

TEST(Costing, PaperTableIIIUploadVolumes) {
  // Paper: 8.8 / 62 / 35.6 GB for Baseline / v1 / v2.
  const double gb = 1024.0 * 1024.0 * 1024.0;
  const auto base = estimate_epoch_cost(scenario(Scheme::kBaseline));
  const auto v1 = estimate_epoch_cost(scenario(Scheme::kRPoLv1));
  const auto v2 = estimate_epoch_cost(scenario(Scheme::kRPoLv2));
  EXPECT_NEAR(static_cast<double>(base.upload_bytes_total) / gb, 8.8, 0.3);
  EXPECT_NEAR(static_cast<double>(v1.upload_bytes_total) / gb, 62.0, 1.0);
  EXPECT_NEAR(static_cast<double>(v2.upload_bytes_total) / gb, 35.6, 0.5);
}

TEST(Costing, PaperWorkerComputeTime) {
  // Paper Table III: worker compute ~30 s per epoch.
  const auto r = estimate_epoch_cost(scenario(Scheme::kBaseline));
  EXPECT_NEAR(r.worker_train_s, 30.0, 3.0);
}

TEST(Costing, V2CommCheaperStorageDearer) {
  const auto v1 = estimate_epoch_cost(scenario(Scheme::kRPoLv1));
  const auto v2 = estimate_epoch_cost(scenario(Scheme::kRPoLv2));
  EXPECT_LT(v2.upload_bytes_total, v1.upload_bytes_total);
  EXPECT_GT(v2.storage_bytes_per_worker, v1.storage_bytes_per_worker);
  EXPECT_LT(v2.capital.total(), v1.capital.total());
  EXPECT_GT(v2.manager_compute_s(), v1.manager_compute_s());  // calibration
}

TEST(Costing, SchemeOrderingOfEpochTime) {
  for (const std::size_t workers : {10u, 100u}) {
    const auto base = estimate_epoch_cost(scenario(Scheme::kBaseline, workers));
    const auto v1 = estimate_epoch_cost(scenario(Scheme::kRPoLv1, workers));
    const auto v2 = estimate_epoch_cost(scenario(Scheme::kRPoLv2, workers));
    EXPECT_LT(base.epoch_wall_s, v2.epoch_wall_s) << workers;
    EXPECT_LT(v2.epoch_wall_s, v1.epoch_wall_s) << workers;
  }
}

TEST(Costing, EpochTimeDropsWithPoolSize) {
  for (const Scheme scheme :
       {Scheme::kBaseline, Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    const auto small = estimate_epoch_cost(scenario(scheme, 10));
    const auto large = estimate_epoch_cost(scenario(scheme, 100));
    EXPECT_LT(large.epoch_wall_s, small.epoch_wall_s)
        << scheme_name(scheme);
  }
}

TEST(Costing, DoubleCheckRateAddsProofTraffic) {
  CostScenario with_dc = scenario(Scheme::kRPoLv2);
  with_dc.double_check_rate = 0.5;
  const auto without = estimate_epoch_cost(scenario(Scheme::kRPoLv2));
  const auto with = estimate_epoch_cost(with_dc);
  EXPECT_GT(with.upload_bytes_total, without.upload_bytes_total);
}

TEST(Costing, MoreSamplesCostMore) {
  CostScenario many_q = scenario(Scheme::kRPoLv1);
  many_q.samples_q = 10;
  const auto few = estimate_epoch_cost(scenario(Scheme::kRPoLv1));
  const auto many = estimate_epoch_cost(many_q);
  EXPECT_GT(many.manager_verify_s, few.manager_verify_s);
  EXPECT_GT(many.upload_bytes_total, few.upload_bytes_total);
}

TEST(Costing, LargerIntervalCutsStorage) {
  CostScenario coarse = scenario(Scheme::kRPoLv1);
  coarse.checkpoint_interval = 20;
  const auto fine = estimate_epoch_cost(scenario(Scheme::kRPoLv1));
  const auto coarse_r = estimate_epoch_cost(coarse);
  EXPECT_LT(coarse_r.storage_bytes_per_worker, fine.storage_bytes_per_worker);
  EXPECT_GT(coarse_r.manager_verify_s, fine.manager_verify_s);
}

TEST(Costing, VggCommunicationDominanceAmplifiesLshGain) {
  // The v2-vs-v1 wall-time gain must be larger for VGG16 (communication-
  // bound) than for ResNet50 (compute-bound) — the paper's Table II story.
  auto gain = [](const sim::RealModelSpec& model) {
    CostScenario s1;
    s1.scheme = Scheme::kRPoLv1;
    s1.model = model;
    s1.dataset = sim::real_imagenet();
    s1.num_workers = 100;
    CostScenario s2 = s1;
    s2.scheme = Scheme::kRPoLv2;
    const double t1 = estimate_epoch_cost(s1).epoch_wall_s;
    const double t2 = estimate_epoch_cost(s2).epoch_wall_s;
    return (t1 - t2) / t1;
  };
  EXPECT_GT(gain(sim::real_vgg16()), gain(sim::real_resnet50()));
}

TEST(Costing, ZeroWorkersThrows) {
  CostScenario s = scenario(Scheme::kBaseline);
  s.num_workers = 0;
  EXPECT_THROW(estimate_epoch_cost(s), std::invalid_argument);
}

TEST(Costing, CapitalCostComponentsPositive) {
  const auto r = estimate_epoch_cost(scenario(Scheme::kRPoLv2));
  EXPECT_GT(r.capital.compute_usd, 0.0);
  EXPECT_GT(r.capital.comm_usd, 0.0);
  EXPECT_GT(r.capital.storage_usd, 0.0);
  EXPECT_NEAR(r.capital.total(),
              r.capital.compute_usd + r.capital.comm_usd + r.capital.storage_usd,
              1e-12);
}

}  // namespace
}  // namespace rpol::core
