// Cross-cutting coverage: hyperparameter invariants, model composition
// edge cases, verifier reconfiguration, and AMLayer shape variants.

#include <gtest/gtest.h>

#include "core/amlayer.h"
#include "core/verifier.h"
#include "nn/models.h"
#include "task_fixture.h"

namespace rpol {
namespace {

// ---------------------------------------------------------------------------
// Hyperparams invariants

class BoundaryInvariants
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(BoundaryInvariants, BoundariesConsistentWithTransitionCount) {
  const auto [steps, interval] = GetParam();
  core::Hyperparams hp;
  hp.steps_per_epoch = steps;
  hp.checkpoint_interval = interval;
  const auto bounds = hp.checkpoint_boundaries();
  EXPECT_EQ(static_cast<std::int64_t>(bounds.size()) - 1, hp.num_transitions());
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), steps);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);                 // strictly increasing
    EXPECT_LE(bounds[i] - bounds[i - 1], interval);      // interval-bounded
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BoundaryInvariants,
                         ::testing::Values(std::pair{10L, 3L}, std::pair{10L, 5L},
                                           std::pair{10L, 10L}, std::pair{1L, 1L},
                                           std::pair{7L, 2L}, std::pair{12L, 4L},
                                           std::pair{100L, 7L}));

// ---------------------------------------------------------------------------
// Model composition

TEST(ModelComposition, DoublePrependKeepsOutermostFirst) {
  nn::Model m("m");
  Rng rng(1);
  m.add(std::make_unique<nn::Linear>(4, 2, rng));
  // Prepend A, then prepend B: B must run first (outermost).
  const Address addr_a = Address::from_seed(1);
  const Address addr_b = Address::from_seed(2);
  core::AmLayerConfig cfg;
  cfg.channels = 1;
  cfg.kernel = 1;
  // Use identity-shaped AMLayers on a fake rank-4 pathway instead: simpler
  // to verify ordering through the state vector layout.
  nn::Model conv_model("c");
  Rng rng2(2);
  conv_model.add(std::make_unique<nn::GlobalAvgPool>());
  conv_model.add(std::make_unique<nn::Linear>(1, 2, rng2));
  conv_model.prepend(std::make_unique<core::AmLayer>(addr_a, cfg));
  conv_model.prepend(std::make_unique<core::AmLayer>(addr_b, cfg));
  const auto state = conv_model.state_vector();
  const Tensor expected_b = core::derive_amlayer_weight(addr_b, cfg);
  for (std::int64_t i = 0; i < expected_b.numel(); ++i) {
    EXPECT_EQ(state[static_cast<std::size_t>(i)], expected_b.at(i))
        << "outermost prepended layer must occupy the leading state slice";
  }
}

TEST(ModelComposition, PrependInvalidatesParamCache) {
  nn::Model m("m");
  Rng rng(3);
  m.add(std::make_unique<nn::Linear>(4, 2, rng));
  const std::int64_t before = m.num_parameters();
  core::AmLayerConfig cfg;
  cfg.channels = 2;
  cfg.kernel = 1;
  m.prepend(std::make_unique<core::AmLayer>(Address::from_seed(5), cfg));
  EXPECT_GT(m.num_parameters(), before);
  EXPECT_EQ(m.trainable_mask().size(),
            static_cast<std::size_t>(m.num_parameters()));
}

// ---------------------------------------------------------------------------
// AMLayer shape variants

class AmLayerShapes
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(AmLayerShapes, ForwardBackwardShapesAndLipschitz) {
  const auto [channels, kernel] = GetParam();
  core::AmLayerConfig cfg;
  cfg.channels = channels;
  cfg.kernel = kernel;
  core::AmLayer layer(Address::from_seed(9), cfg);
  EXPECT_LE(layer.spectral_norm(), cfg.scaling_c + 1e-4F);
  Rng rng(4);
  const Tensor x = Tensor::randn({2, channels, 6, 6}, rng);
  const Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  const Tensor dx = layer.backward(Tensor::full(x.shape(), 1.0F));
  EXPECT_EQ(dx.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(Shapes, AmLayerShapes,
                         ::testing::Values(std::pair{1L, 1L}, std::pair{1L, 3L},
                                           std::pair{3L, 3L}, std::pair{4L, 5L}));

// ---------------------------------------------------------------------------
// Verifier reconfiguration (adaptive per-epoch LSH updates)

TEST(VerifierReconfig, LshConfigChangesTakeEffect) {
  using rpol::testing::TinyTask;
  const TinyTask task = TinyTask::make(/*seed=*/191);
  const auto view = data::DatasetView::whole(task.dataset);
  core::StepExecutor init(task.factory, task.hp);
  core::EpochContext ctx;
  ctx.nonce = 99;
  ctx.initial = init.save_state();
  ctx.dataset = &view;

  core::StepExecutor worker(task.factory, task.hp);
  sim::DeviceExecution wd(sim::device_ga10(), 1);
  core::HonestPolicy honest;
  const core::EpochTrace trace = honest.produce_trace(worker, ctx, wd);

  const std::int64_t dim = static_cast<std::int64_t>(
      core::extract_trainable(ctx.initial.model, init.trainable_mask()).size());
  core::VerifierConfig cfg;
  cfg.samples_q = 3;
  cfg.beta = 2e-3;
  cfg.use_lsh = true;
  cfg.lsh_config = lsh::LshConfig{{1.0, 2, 4}, dim, 1};
  core::Verifier verifier(task.factory, task.hp, cfg);

  // Epoch 1: commit under family seed 1 -> verify passes.
  {
    const lsh::PStableLsh hasher(*cfg.lsh_config);
    const core::Commitment c =
        core::commit_v2(trace, hasher, &init.trainable_mask());
    sim::DeviceExecution md(sim::device_g3090(), 2);
    EXPECT_TRUE(verifier
                    .verify(c, trace, ctx, core::hash_state(ctx.initial), md)
                    .accepted);
  }
  // Epoch 2: the manager rotates the LSH family (new seed). A commitment
  // built under the OLD family no longer LSH-matches, but the double-check
  // still rescues the honest worker — family rotation can never hurt them.
  {
    const lsh::PStableLsh old_hasher(*cfg.lsh_config);
    const core::Commitment stale =
        core::commit_v2(trace, old_hasher, &init.trainable_mask());
    verifier.set_lsh_config(lsh::LshConfig{{1.0, 2, 4}, dim, 2});
    sim::DeviceExecution md(sim::device_g3090(), 3);
    const core::VerifyResult vr =
        verifier.verify(stale, trace, ctx, core::hash_state(ctx.initial), md);
    EXPECT_TRUE(vr.accepted);
    EXPECT_GT(vr.double_checks, 0);
  }
}

}  // namespace
}  // namespace rpol
