// Protocol-unit tests: deterministic selection, executor re-execution,
// commitments, sampling, and the verifier against honest and dishonest
// workers (the heart of RPoL).

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "data/partition.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

// ---------------------------------------------------------------------------
// DeterministicSelector

TEST(DeterministicSelector, ReproducibleAcrossInstances) {
  DeterministicSelector a(42), b(42);
  EXPECT_EQ(a.batch_indices(3, 8, 100), b.batch_indices(3, 8, 100));
}

TEST(DeterministicSelector, DifferentNoncesDiffer) {
  DeterministicSelector a(42), b(43);
  EXPECT_NE(a.batch_indices(0, 8, 100), b.batch_indices(0, 8, 100));
}

TEST(DeterministicSelector, DifferentStepsDiffer) {
  DeterministicSelector sel(7);
  EXPECT_NE(sel.batch_indices(0, 16, 1000), sel.batch_indices(1, 16, 1000));
}

TEST(DeterministicSelector, IndicesInRange) {
  DeterministicSelector sel(9);
  for (std::int64_t step = 0; step < 20; ++step) {
    for (const auto idx : sel.batch_indices(step, 32, 57)) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, 57);
    }
  }
}

TEST(DeterministicSelector, SelectionIsRoughlyUniform) {
  DeterministicSelector sel(11);
  std::vector<int> counts(10, 0);
  for (std::int64_t step = 0; step < 500; ++step) {
    for (const auto idx : sel.batch_indices(step, 10, 10)) {
      ++counts[static_cast<std::size_t>(idx)];
    }
  }
  for (const int c : counts) EXPECT_NEAR(c, 500, 120);
}

TEST(DeterministicSelector, BadArgsThrow) {
  DeterministicSelector sel(1);
  EXPECT_THROW(sel.batch_indices(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(sel.batch_indices(0, 8, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// StepExecutor

TEST(StepExecutor, NoiselessReexecutionIsExact) {
  // Without device noise, re-running the same steps from the same state
  // reproduces the result bit-for-bit — the determinism RPoL relies on.
  const TinyTask task = TinyTask::make();
  const auto view = data::DatasetView::whole(task.dataset);
  StepExecutor a(task.factory, task.hp);
  StepExecutor b(task.factory, task.hp);
  const TrainState start = a.save_state();
  const DeterministicSelector sel(5);

  a.run_steps(0, 5, view, sel, nullptr);
  b.load_state(start);
  b.run_steps(0, 5, view, sel, nullptr);
  EXPECT_EQ(a.save_state().model, b.save_state().model);
  EXPECT_EQ(a.save_state().optimizer, b.save_state().optimizer);
}

TEST(StepExecutor, NoiseMakesRunsDifferButClose) {
  const TinyTask task = TinyTask::make();
  const auto view = data::DatasetView::whole(task.dataset);
  StepExecutor a(task.factory, task.hp);
  StepExecutor b(task.factory, task.hp);
  const TrainState start = a.save_state();
  const DeterministicSelector sel(5);

  sim::DeviceExecution dev_a(sim::device_g3090(), 1);
  sim::DeviceExecution dev_b(sim::device_g3090(), 2);
  a.run_steps(0, 5, view, sel, &dev_a);
  b.load_state(start);
  b.run_steps(0, 5, view, sel, &dev_b);
  const double dist = l2_distance(a.save_state().model, b.save_state().model);
  EXPECT_GT(dist, 0.0);
  // Reproduction errors are small relative to the training update itself.
  const double update = l2_distance(a.save_state().model, start.model);
  EXPECT_LT(dist, 0.1 * update);
}

TEST(StepExecutor, StateRoundTripRestoresExactly) {
  const TinyTask task = TinyTask::make();
  const auto view = data::DatasetView::whole(task.dataset);
  StepExecutor exec(task.factory, task.hp);
  const DeterministicSelector sel(3);
  exec.run_steps(0, 3, view, sel, nullptr);
  const TrainState snap = exec.save_state();
  exec.run_steps(3, 4, view, sel, nullptr);
  exec.load_state(snap);
  EXPECT_EQ(exec.save_state().model, snap.model);
  EXPECT_EQ(exec.save_state().optimizer, snap.optimizer);
}

TEST(StepExecutor, TrainingImprovesAccuracy) {
  const TinyTask task = TinyTask::make(77, /*steps=*/60, /*interval=*/10);
  const auto view = data::DatasetView::whole(task.dataset);
  StepExecutor exec(task.factory, task.hp);
  const double before = exec.evaluate(view);
  const DeterministicSelector sel(8);
  exec.run_steps(0, 60, view, sel, nullptr);
  const double after = exec.evaluate(view);
  EXPECT_GT(after, before + 0.2);
  EXPECT_GT(after, 0.5);  // well above 25% chance for 4 classes
}

// ---------------------------------------------------------------------------
// Traces and commitments

struct ProtocolFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make();
    view = data::DatasetView::whole(task.dataset);
    context = task.context(/*nonce=*/99, view);
  }

  EpochTrace honest_trace(std::uint64_t run_seed = 1) {
    StepExecutor exec(task.factory, task.hp);
    sim::DeviceExecution device(sim::device_ga10(), run_seed);
    HonestPolicy policy;
    return policy.produce_trace(exec, context, device);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
};

TEST_F(ProtocolFixture, TraceHasExpectedCheckpointLayout) {
  const EpochTrace trace = honest_trace();
  // 10 steps, interval 3 => boundaries 0,3,6,9,10 => 4 transitions.
  EXPECT_EQ(trace.num_transitions(), 4);
  EXPECT_EQ(trace.step_of, (std::vector<std::int64_t>{0, 3, 6, 9, 10}));
  EXPECT_EQ(trace.checkpoints.front().model, context.initial.model);
  EXPECT_GT(trace.storage_bytes(), 0u);
}

TEST_F(ProtocolFixture, CommitV1BindsEveryCheckpoint) {
  const EpochTrace trace = honest_trace();
  Commitment c = commit_v1(trace);
  EXPECT_EQ(c.state_hashes.size(), trace.checkpoints.size());
  EXPECT_TRUE(commitment_consistent(c));
  // Tampering with any hash breaks the root.
  c.state_hashes[2][0] ^= 1;
  EXPECT_FALSE(commitment_consistent(c));
}

TEST_F(ProtocolFixture, CommitV2AddsLshDigests) {
  const EpochTrace trace = honest_trace();
  const lsh::LshConfig cfg{{1.0, 2, 4},
                           static_cast<std::int64_t>(trace.checkpoints[0].model.size()),
                           5};
  const lsh::PStableLsh hasher(cfg);
  const Commitment c = commit_v2(trace, hasher);
  EXPECT_EQ(c.lsh_digests.size(), trace.checkpoints.size());
  EXPECT_TRUE(commitment_consistent(c));
  EXPECT_GT(c.byte_size(), commit_v1(trace).byte_size());
}

TEST_F(ProtocolFixture, MerkleRootAlternativeWorks) {
  const EpochTrace trace = honest_trace();
  const Commitment c = commit_v1(trace);
  const Digest root = commitment_merkle_root(c);
  MerkleTree tree(c.state_hashes);
  const MerkleProof proof = tree.prove(1);
  EXPECT_TRUE(MerkleTree::verify(root, c.state_hashes[1], proof));
}

// ---------------------------------------------------------------------------
// Sampling

TEST(Sampling, DeterministicGivenSeedAndRoot) {
  const Digest root = sha256(std::string("commit"));
  EXPECT_EQ(sample_transitions(1, root, 20, 5), sample_transitions(1, root, 20, 5));
  EXPECT_NE(sample_transitions(1, root, 20, 5), sample_transitions(2, root, 20, 5));
}

TEST(Sampling, DependsOnCommitmentRoot) {
  // The worker cannot predict samples before committing: a different root
  // yields different samples.
  const Digest r1 = sha256(std::string("a"));
  const Digest r2 = sha256(std::string("b"));
  EXPECT_NE(sample_transitions(1, r1, 50, 10), sample_transitions(1, r2, 50, 10));
}

TEST(Sampling, WithoutReplacementAndSorted) {
  const Digest root = sha256(std::string("x"));
  const auto s = sample_transitions(3, root, 10, 10);
  EXPECT_EQ(s.size(), 10u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
}

TEST(Sampling, ClampsOversizedQ) {
  const Digest root = sha256(std::string("y"));
  EXPECT_EQ(sample_transitions(1, root, 3, 100).size(), 3u);
  EXPECT_THROW(sample_transitions(1, root, 0, 1), std::invalid_argument);
}

TEST(Sampling, CoversAllTransitionsAcrossRoots) {
  std::set<std::int64_t> seen;
  for (int i = 0; i < 40; ++i) {
    Bytes b;
    append_u64(b, static_cast<std::uint64_t>(i));
    for (const auto t : sample_transitions(7, sha256(b), 8, 2)) seen.insert(t);
  }
  EXPECT_EQ(seen.size(), 8u);  // every transition is sampleable
}

// ---------------------------------------------------------------------------
// Verifier

struct VerifierFixture : public ProtocolFixture {
  VerifierConfig base_config(bool use_lsh) {
    VerifierConfig cfg;
    cfg.samples_q = 3;
    cfg.beta = beta_;
    cfg.use_lsh = use_lsh;
    if (use_lsh) {
      lsh::LshConfig lcfg;
      lcfg.params = lsh::optimize_lsh(beta_ / 5.0, beta_, 16).params;
      lcfg.dim = static_cast<std::int64_t>(context.initial.model.size());
      lcfg.seed = 31;
      cfg.lsh_config = lcfg;
    }
    return cfg;
  }

  VerifyResult run_verify(const EpochTrace& trace, const Commitment& commitment,
                          bool use_lsh) {
    Verifier verifier(task.factory, task.hp, base_config(use_lsh));
    sim::DeviceExecution manager_device(sim::device_g3090(), 1234);
    return verifier.verify(commitment, trace, context,
                           hash_state(context.initial), manager_device);
  }

  lsh::PStableLsh worker_hasher() {
    return lsh::PStableLsh(*base_config(true).lsh_config);
  }

  // beta sized for this tiny task: large enough for device noise, far below
  // real update magnitudes (which are ~1e-1 here).
  double beta_ = 2e-3;
};

TEST_F(VerifierFixture, HonestWorkerAcceptedV1) {
  const EpochTrace trace = honest_trace();
  const VerifyResult r = run_verify(trace, commit_v1(trace), /*lsh=*/false);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(r.checks.size(), 3u);
  for (const auto& c : r.checks) {
    EXPECT_TRUE(c.hash_ok);
    EXPECT_TRUE(c.passed);
    EXPECT_LT(c.distance, beta_);
  }
  EXPECT_GT(r.proof_bytes, 0u);
  EXPECT_GT(r.reexecuted_steps, 0);
}

TEST_F(VerifierFixture, HonestWorkerAcceptedV2) {
  const EpochTrace trace = honest_trace();
  const auto hasher = worker_hasher();
  const VerifyResult r = run_verify(trace, commit_v2(trace, hasher), /*lsh=*/true);
  EXPECT_TRUE(r.accepted);
  // Double-check may fire occasionally (LSH is probabilistic), but honest
  // workers are never rejected thanks to the fall-back distance test.
}

TEST_F(VerifierFixture, V2TransfersFewerProofBytesThanV1) {
  const EpochTrace trace = honest_trace();
  const auto hasher = worker_hasher();
  const VerifyResult v1 = run_verify(trace, commit_v1(trace), false);
  const VerifyResult v2 = run_verify(trace, commit_v2(trace, hasher), true);
  ASSERT_TRUE(v1.accepted);
  ASSERT_TRUE(v2.accepted);
  // When no double-check fires, v2 halves proof traffic (Sec. V-C).
  if (v2.double_checks == 0) {
    EXPECT_NEAR(static_cast<double>(v2.proof_bytes),
                static_cast<double>(v1.proof_bytes) / 2.0,
                static_cast<double>(v1.proof_bytes) * 0.05);
  } else {
    EXPECT_LT(v2.proof_bytes, v1.proof_bytes);
  }
}

TEST_F(VerifierFixture, ReplayAttackerRejectedBothVersions) {
  StepExecutor exec(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_ga10(), 3);
  ReplayPolicy replay;
  const EpochTrace trace = replay.produce_trace(exec, context, device);
  EXPECT_FALSE(run_verify(trace, commit_v1(trace), false).accepted);
  const auto hasher = worker_hasher();
  EXPECT_FALSE(run_verify(trace, commit_v2(trace, hasher), true).accepted);
}

TEST_F(VerifierFixture, FullSpoofRejected) {
  StepExecutor exec(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_ga10(), 4);
  SpoofPolicy spoof(/*honest_fraction=*/0.25, /*lambda=*/0.5);
  const EpochTrace trace = spoof.produce_trace(exec, context, device);
  const VerifyResult v1 = run_verify(trace, commit_v1(trace), false);
  EXPECT_FALSE(v1.accepted);
  const auto hasher = worker_hasher();
  const VerifyResult v2 = run_verify(trace, commit_v2(trace, hasher), true);
  EXPECT_FALSE(v2.accepted);
  // Spoofed transitions fail by distance, not by hash mismatch: the
  // commitment itself is self-consistent.
  for (const auto& c : v1.checks) EXPECT_TRUE(c.hash_ok);
}

TEST_F(VerifierFixture, TamperedProofFailsHashCheck) {
  EpochTrace trace = honest_trace();
  const Commitment commitment = commit_v1(trace);
  // Worker substitutes a different state when asked for proofs.
  trace.checkpoints[1].model[0] += 1.0F;
  const VerifyResult r = run_verify(trace, commitment, false);
  EXPECT_FALSE(r.accepted);
}

TEST_F(VerifierFixture, ForeignInitialStateRejected) {
  // Training from a different starting point than the manager distributed
  // fails the C_0 hash check even if everything else is honest.
  EpochContext foreign = context;
  foreign.initial.model[0] += 1.0F;
  StepExecutor exec(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_ga10(), 5);
  HonestPolicy policy;
  const EpochTrace trace = policy.produce_trace(exec, foreign, device);
  const Commitment commitment = commit_v1(trace);
  Verifier verifier(task.factory, task.hp, base_config(false));
  sim::DeviceExecution manager_device(sim::device_g3090(), 99);
  const VerifyResult r = verifier.verify(commitment, trace, context,
                                         hash_state(context.initial),
                                         manager_device);
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.checks.empty());  // rejected before any sampling work
}

TEST_F(VerifierFixture, ForgedStepBoundariesRejected) {
  // The verifier derives checkpoint boundaries from the agreed
  // hyper-parameters; a prover shipping doctored step_of vectors (e.g.
  // zero-length intervals that would break re-execution) is rejected
  // before any work happens.
  EpochTrace trace = honest_trace();
  const Commitment commitment = commit_v1(trace);
  trace.step_of = {0, 0, 0, 0, 10};  // degenerate intervals
  EXPECT_FALSE(run_verify(trace, commitment, false).accepted);
  trace.step_of = {0, 3, 6, 9, 11};  // wrong final boundary
  EXPECT_FALSE(run_verify(trace, commitment, false).accepted);
}

TEST_F(VerifierFixture, MalformedCommitmentRejected) {
  const EpochTrace trace = honest_trace();
  Commitment commitment = commit_v1(trace);
  commitment.state_hashes.pop_back();
  const VerifyResult r = run_verify(trace, commitment, false);
  EXPECT_FALSE(r.accepted);
}

TEST_F(VerifierFixture, SpoofDistancesFarExceedReproductionErrors) {
  // The separation property that makes beta easy to set (Fig. 5): spoof
  // distances are orders of magnitude above honest reproduction errors.
  const EpochTrace honest = honest_trace(10);
  StepExecutor exec(task.factory, task.hp);
  sim::DeviceExecution device(sim::device_ga10(), 11);
  SpoofPolicy spoof(0.5, 0.5);
  const EpochTrace spoofed = spoof.produce_trace(exec, context, device);

  VerifierConfig cfg = base_config(false);
  cfg.samples_q = 4;  // check every transition
  cfg.beta = 1e18;    // accept everything; we only want the distances
  Verifier verifier(task.factory, task.hp, cfg);
  sim::DeviceExecution m1(sim::device_g3090(), 50);
  const VerifyResult hr = verifier.verify(commit_v1(honest), honest, context,
                                          hash_state(context.initial), m1);
  sim::DeviceExecution m2(sim::device_g3090(), 51);
  const VerifyResult sr = verifier.verify(commit_v1(spoofed), spoofed, context,
                                          hash_state(context.initial), m2);
  double max_honest = 0.0, min_spoof = 1e300;
  for (const auto& c : hr.checks) max_honest = std::max(max_honest, c.distance);
  for (std::size_t i = 2; i < sr.checks.size(); ++i) {
    // Transitions after the honest prefix are spoofed.
    min_spoof = std::min(min_spoof, sr.checks[i].distance);
  }
  EXPECT_GT(min_spoof, 10.0 * max_honest);
}

}  // namespace
}  // namespace rpol::core
