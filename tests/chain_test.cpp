// Blockchain substrate tests: task pool, block linkage, consensus rounds
// with AMLayer ownership verification, and the address-replacing attack.

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"

namespace rpol::chain {
namespace {

struct ChainFixture : public ::testing::Test {
  void SetUp() override {
    // Phase-coded classes: small margins, so the address-replacing attack
    // visibly hurts accuracy (see data/synthetic.h).
    data::SyntheticImageConfig data_cfg;
    data_cfg.num_classes = 8;
    data_cfg.num_examples = 320;
    data_cfg.image_size = 6;
    data_cfg.noise_stddev = 0.2F;
    data_cfg.phase_coded = true;
    data_cfg.min_frequency = 2.0F;
    data_cfg.max_frequency = 2.0F;
    data_cfg.seed = 5;
    dataset = data::make_synthetic_images(data_cfg);
    split = std::make_unique<data::TrainTestSplit>(
        data::train_test_split(dataset, 0.3, 2));

    nn::ModelConfig model_cfg;
    model_cfg.image_size = 6;
    model_cfg.width = 4;
    model_cfg.num_classes = 8;
    model_cfg.seed = 9;
    base_factory = nn::mini_resnet18_factory(model_cfg, 1);

    hp.learning_rate = 0.05F;
    hp.batch_size = 12;
    hp.steps_per_epoch = 7;
    hp.checkpoint_interval = 3;
  }

  // Trains a model with the given AMLayer address and returns its proposal.
  BlockProposal train_proposal(std::uint64_t addr_seed, std::int64_t steps) {
    const Address address = Address::from_seed(addr_seed);
    const core::AmLayerConfig am_cfg;
    const nn::ModelFactory base = base_factory;
    const nn::ModelFactory with_am = [base, am_cfg, address]() {
      nn::Model m = base();
      m.prepend(std::make_unique<core::AmLayer>(address, am_cfg));
      return m;
    };
    core::StepExecutor executor(with_am, hp);
    const core::DeterministicSelector selector(addr_seed);
    executor.run_steps(0, steps, split->train, selector, nullptr);
    BlockProposal proposal;
    proposal.proposer = address;
    proposal.base_factory = base_factory;
    proposal.amlayer_config = am_cfg;
    proposal.model_state = executor.model().state_vector();
    return proposal;
  }

  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  nn::ModelFactory base_factory;
  core::Hyperparams hp;
};

TEST_F(ChainFixture, GenesisAndTaskPool) {
  Blockchain chain;
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_TRUE(chain.validate_chain());
  const auto id = chain.publish_task("resnet on synth images", 0.8, 100);
  ASSERT_TRUE(chain.task(id).has_value());
  EXPECT_EQ(chain.task(id)->reward, 100u);
  EXPECT_FALSE(chain.task(9999).has_value());
}

TEST_F(ChainFixture, EmbeddedAmLayerVerification) {
  const BlockProposal p = train_proposal(/*addr_seed=*/11, /*steps=*/3);
  EXPECT_TRUE(
      verify_embedded_amlayer(p.model_state, p.proposer, p.amlayer_config));
  EXPECT_FALSE(verify_embedded_amlayer(p.model_state, Address::from_seed(12),
                                       p.amlayer_config));
}

TEST_F(ChainFixture, RoundRewardsWinnerAndLinksBlock) {
  Blockchain chain;
  const auto task_id = chain.publish_task("task", 0.5, 42);
  std::vector<BlockProposal> proposals;
  proposals.push_back(train_proposal(21, /*steps=*/14));  // trains more
  proposals.push_back(train_proposal(22, /*steps=*/3));   // trains less
  const auto winner = chain.run_round(task_id, std::move(proposals),
                                      split->test, hp);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_TRUE(chain.validate_chain());
  const Address winner_addr = chain.tip().header.proposer;
  EXPECT_EQ(chain.balance(winner_addr), 42u);
}

TEST_F(ChainFixture, AddressReplacingProposalIsRejected) {
  // A thief takes node 31's trained model and claims it under address 32
  // without retraining: the embedded AMLayer still derives from 31, so the
  // ownership check fails and the proposal is discarded.
  Blockchain chain;
  const auto task_id = chain.publish_task("task", 0.5, 10);
  BlockProposal stolen = train_proposal(31, 14);
  stolen.proposer = Address::from_seed(32);
  std::vector<BlockProposal> proposals;
  proposals.push_back(std::move(stolen));
  const auto winner =
      chain.run_round(task_id, std::move(proposals), split->test, hp);
  EXPECT_FALSE(winner.has_value());
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.balance(Address::from_seed(32)), 0u);
}

TEST_F(ChainFixture, AddressReplacingWithReencodedLayerLosesAccuracy) {
  // The smarter thief overwrites the AMLayer slice with the one derived
  // from its own address so the ownership check passes — but the upper
  // layers were trained under the victim's mapping, so accuracy collapses
  // (Table I's "Accuracy (w Attack)").
  const BlockProposal victim = train_proposal(41, 120);
  const double honest_acc =
      evaluate_proposal_accuracy(victim, victim.proposer, split->test, hp);

  BlockProposal thief = victim;
  thief.proposer = Address::from_seed(42);
  const Tensor thief_weights =
      core::derive_amlayer_weight(thief.proposer, thief.amlayer_config);
  for (std::int64_t i = 0; i < thief_weights.numel(); ++i) {
    thief.model_state[static_cast<std::size_t>(i)] = thief_weights.at(i);
  }
  ASSERT_TRUE(verify_embedded_amlayer(thief.model_state, thief.proposer,
                                      thief.amlayer_config));
  const double stolen_acc =
      evaluate_proposal_accuracy(thief, thief.proposer, split->test, hp);
  EXPECT_LT(stolen_acc, honest_acc);
}

TEST_F(ChainFixture, MalformedProposalDiscardedNotFatal) {
  // A proposal whose state vector doesn't fit the architecture must be
  // discarded, not crash the consensus round.
  Blockchain chain;
  const auto task_id = chain.publish_task("t", 0.5, 10);
  BlockProposal good = train_proposal(71, 10);
  BlockProposal broken = good;
  broken.model_state.resize(broken.model_state.size() / 2);
  std::vector<BlockProposal> proposals;
  proposals.push_back(std::move(broken));
  proposals.push_back(std::move(good));
  const auto winner =
      chain.run_round(task_id, std::move(proposals), split->test, hp);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, 1u);  // the intact proposal wins
}

TEST_F(ChainFixture, RunRoundUnknownTaskThrows) {
  Blockchain chain;
  EXPECT_THROW(chain.run_round(77, {}, split->test, hp), std::invalid_argument);
}

TEST_F(ChainFixture, BlockHashCoversHeaderFields) {
  Block a;
  a.header.height = 1;
  a.header.proposer = Address::from_seed(1);
  Block b = a;
  EXPECT_TRUE(digest_equal(a.hash(), b.hash()));
  b.header.claimed_accuracy = 0.9;
  EXPECT_FALSE(digest_equal(a.hash(), b.hash()));
  b = a;
  b.header.task_id = 5;
  EXPECT_FALSE(digest_equal(a.hash(), b.hash()));
}

TEST_F(ChainFixture, PersistenceRoundTrip) {
  Blockchain chain;
  const auto t1 = chain.publish_task("persisted task", 0.6, 33);
  {
    std::vector<BlockProposal> ps;
    ps.push_back(train_proposal(61, 7));
    ASSERT_TRUE(chain.run_round(t1, std::move(ps), split->test, hp).has_value());
  }
  const Bytes snapshot = chain.to_bytes();
  const Blockchain restored = Blockchain::from_bytes(snapshot);
  EXPECT_EQ(restored.height(), chain.height());
  EXPECT_TRUE(restored.validate_chain());
  EXPECT_TRUE(digest_equal(restored.tip().hash(), chain.tip().hash()));
  EXPECT_EQ(restored.balance(Address::from_seed(61)), 33u);
  ASSERT_TRUE(restored.task(t1).has_value());
  EXPECT_EQ(restored.task(t1)->description, "persisted task");
  EXPECT_EQ(restored.tip().model_state, chain.tip().model_state);
  // A second snapshot of the restored chain is byte-identical (canonical).
  EXPECT_EQ(restored.to_bytes(), snapshot);
}

TEST_F(ChainFixture, TamperedSnapshotRejected) {
  Blockchain chain;
  const auto t1 = chain.publish_task("t", 0.5, 5);
  {
    std::vector<BlockProposal> ps;
    ps.push_back(train_proposal(62, 7));
    ASSERT_TRUE(chain.run_round(t1, std::move(ps), split->test, hp).has_value());
  }
  Bytes snapshot = chain.to_bytes();
  // Corrupt a byte inside the second block's parent hash: the restored
  // chain must fail hash-link validation.
  snapshot[8 + 8 + 8 + 5] ^= 0x01;  // magic + count + height + offset into parent hash... of genesis
  bool rejected = false;
  try {
    const Blockchain restored = Blockchain::from_bytes(snapshot);
    rejected = !restored.validate_chain();
  } catch (const std::exception&) {
    rejected = true;
  }
  EXPECT_TRUE(rejected);

  Bytes garbage{1, 2, 3};
  EXPECT_ANY_THROW(Blockchain::from_bytes(garbage));
}

TEST_F(ChainFixture, MultipleRoundsExtendChain) {
  Blockchain chain;
  const auto t1 = chain.publish_task("t1", 0.5, 5);
  const auto t2 = chain.publish_task("t2", 0.5, 7);
  {
    std::vector<BlockProposal> ps;
    ps.push_back(train_proposal(51, 7));
    ASSERT_TRUE(chain.run_round(t1, std::move(ps), split->test, hp).has_value());
  }
  {
    std::vector<BlockProposal> ps;
    ps.push_back(train_proposal(52, 7));
    ASSERT_TRUE(chain.run_round(t2, std::move(ps), split->test, hp).has_value());
  }
  EXPECT_EQ(chain.height(), 3u);
  EXPECT_TRUE(chain.validate_chain());
  EXPECT_EQ(chain.balance(Address::from_seed(51)), 5u);
  EXPECT_EQ(chain.balance(Address::from_seed(52)), 7u);
}

}  // namespace
}  // namespace rpol::chain
