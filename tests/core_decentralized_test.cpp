// Decentralized-verification tests: assignment determinism/coverage,
// agreement with centralized verification, Byzantine verifier tolerance,
// and the parallel speedup accounting.

#include <gtest/gtest.h>

#include "core/decentralized.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

struct DecentralizedFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/91, /*steps=*/12, /*interval=*/2);
    view = data::DatasetView::whole(task.dataset);
    context = task.context(777, view);

    StepExecutor executor(task.factory, task.hp);
    sim::DeviceExecution device(sim::device_ga10(), 4);
    HonestPolicy honest;
    honest_trace = honest.produce_trace(executor, context, device);

    StepExecutor adv_exec(task.factory, task.hp);
    sim::DeviceExecution adv_device(sim::device_ga10(), 5);
    SpoofPolicy spoof(0.2, 0.5);
    spoof_trace = spoof.produce_trace(adv_exec, context, adv_device);
  }

  std::vector<VerifierNode> verifier_pool(int colluders, int slanderers,
                                          int total = 5) {
    std::vector<VerifierNode> nodes;
    const auto devices = sim::all_devices();
    for (int i = 0; i < total; ++i) {
      VerifierNode node;
      if (i < colluders) {
        node.behavior = VerifierBehavior::kColludeAccept;
      } else if (i < colluders + slanderers) {
        node.behavior = VerifierBehavior::kSlandererReject;
      }
      node.device = devices[static_cast<std::size_t>(i) % devices.size()];
      node.run_seed = static_cast<std::uint64_t>(100 + i);
      nodes.push_back(node);
    }
    return nodes;
  }

  DecentralizedConfig config() {
    DecentralizedConfig cfg;
    cfg.samples_q = 3;
    cfg.verifiers_per_sample = 3;
    cfg.beta = 2e-3;
    return cfg;
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  EpochContext context;
  EpochTrace honest_trace;
  EpochTrace spoof_trace;
};

TEST(Assignment, DeterministicAndDistinct) {
  const Digest root = sha256(std::string("r"));
  const std::vector<std::int64_t> samples{0, 3, 5};
  const auto a = assign_verifiers(1, root, samples, 7, 3);
  const auto b = assign_verifiers(1, root, samples, 7, 3);
  EXPECT_EQ(a, b);
  for (const auto& group : a) {
    ASSERT_EQ(group.size(), 3u);
    EXPECT_LT(group[0], group[1]);
    EXPECT_LT(group[1], group[2]);  // sorted => distinct
    for (const auto v : group) EXPECT_LT(v, 7u);
  }
}

TEST(Assignment, DependsOnCommitmentRoot) {
  const std::vector<std::int64_t> samples{0, 1, 2, 3, 4};
  const auto a = assign_verifiers(1, sha256(std::string("a")), samples, 9, 3);
  const auto b = assign_verifiers(1, sha256(std::string("b")), samples, 9, 3);
  EXPECT_NE(a, b);
}

TEST(Assignment, CoversAllVerifiersEventually) {
  std::set<std::size_t> seen;
  for (int i = 0; i < 30; ++i) {
    Bytes b;
    append_u64(b, static_cast<std::uint64_t>(i));
    for (const auto& group :
         assign_verifiers(3, sha256(b), {0, 1}, 6, 3)) {
      seen.insert(group.begin(), group.end());
    }
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Assignment, TooFewVerifiersThrows) {
  EXPECT_THROW(assign_verifiers(1, sha256(std::string("x")), {0}, 2, 3),
               std::invalid_argument);
}

TEST_F(DecentralizedFixture, HonestMajorityAcceptsHonestWorker) {
  DecentralizedVerifier verifier(task.factory, task.hp, config());
  const auto result =
      verifier.verify(commit_v1(honest_trace), honest_trace, context,
                      hash_state(context.initial), verifier_pool(0, 0));
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.samples.size(), 3u);
  for (const auto& votes : result.votes) {
    for (const auto& vote : votes) EXPECT_TRUE(vote.pass);
  }
}

TEST_F(DecentralizedFixture, HonestMajorityRejectsSpoofer) {
  DecentralizedVerifier verifier(task.factory, task.hp, config());
  const auto result =
      verifier.verify(commit_v1(spoof_trace), spoof_trace, context,
                      hash_state(context.initial), verifier_pool(0, 0));
  EXPECT_FALSE(result.accepted);
}

TEST_F(DecentralizedFixture, MinorityColludersCannotSaveSpoofer) {
  // 1 colluder among 5, r=3: at most one colluding vote per sample, honest
  // majority still rejects.
  DecentralizedVerifier verifier(task.factory, task.hp, config());
  const auto result =
      verifier.verify(commit_v1(spoof_trace), spoof_trace, context,
                      hash_state(context.initial), verifier_pool(1, 0));
  EXPECT_FALSE(result.accepted);
}

TEST_F(DecentralizedFixture, MinoritySlanderersCannotBlockHonest) {
  DecentralizedVerifier verifier(task.factory, task.hp, config());
  const auto result =
      verifier.verify(commit_v1(honest_trace), honest_trace, context,
                      hash_state(context.initial), verifier_pool(0, 1));
  EXPECT_TRUE(result.accepted);
}

TEST_F(DecentralizedFixture, ColluderSupermajorityDoesBreakIt) {
  // Sanity check of the threat model boundary: if ALL verifiers collude,
  // a spoofer passes — replication only defends up to < r/2 per sample.
  DecentralizedVerifier verifier(task.factory, task.hp, config());
  const auto result =
      verifier.verify(commit_v1(spoof_trace), spoof_trace, context,
                      hash_state(context.initial), verifier_pool(5, 0));
  EXPECT_TRUE(result.accepted);
}

TEST_F(DecentralizedFixture, ParallelSpeedupAccounting) {
  DecentralizedConfig cfg = config();
  cfg.samples_q = 6;  // every transition sampled
  DecentralizedVerifier verifier(task.factory, task.hp, cfg);
  const auto result =
      verifier.verify(commit_v1(honest_trace), honest_trace, context,
                      hash_state(context.initial), verifier_pool(0, 0, 9));
  EXPECT_TRUE(result.accepted);
  // Work is replicated r times but spread across 9 verifiers: the critical
  // path must be well below the total (a real parallel speedup).
  EXPECT_GT(result.total_reexecuted_steps, 0);
  EXPECT_LT(result.critical_path_steps, result.total_reexecuted_steps);
}

TEST_F(DecentralizedFixture, AgreesWithCentralizedOnBothClasses) {
  // Decentralized (honest pool) and centralized verification must agree.
  DecentralizedVerifier dec(task.factory, task.hp, config());
  VerifierConfig vcfg;
  vcfg.samples_q = 3;
  vcfg.beta = config().beta;
  Verifier central(task.factory, task.hp, vcfg);

  for (const EpochTrace* trace : {&honest_trace, &spoof_trace}) {
    sim::DeviceExecution manager_device(sim::device_g3090(), 1000);
    const bool central_ok =
        central
            .verify(commit_v1(*trace), *trace, context,
                    hash_state(context.initial), manager_device)
            .accepted;
    const bool dec_ok = dec.verify(commit_v1(*trace), *trace, context,
                                   hash_state(context.initial),
                                   verifier_pool(0, 0))
                            .accepted;
    EXPECT_EQ(central_ok, dec_ok);
  }
}

TEST_F(DecentralizedFixture, MalformedCommitmentRejected) {
  DecentralizedVerifier verifier(task.factory, task.hp, config());
  Commitment broken = commit_v1(honest_trace);
  broken.state_hashes.pop_back();
  const auto result =
      verifier.verify(broken, honest_trace, context,
                      hash_state(context.initial), verifier_pool(0, 0));
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.votes.empty());
}

}  // namespace
}  // namespace rpol::core
