// Protocol-session tests: the full manager<->worker exchange over encoded
// bytes, traffic structure vs the analytic cost model, and scheme parity
// with the in-process Verifier.

#include <gtest/gtest.h>

#include "core/session.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

struct SessionFixture : public ::testing::Test {
  void SetUp() override {
    task = TinyTask::make(/*seed=*/131, /*steps=*/12, /*interval=*/3);
    view = data::DatasetView::whole(task.dataset);
    StepExecutor init(task.factory, task.hp);
    global = init.save_state();
    model_dim = static_cast<std::int64_t>(
        extract_trainable(global.model, init.trainable_mask()).size());
  }

  SessionConfig config(Scheme scheme) {
    SessionConfig cfg;
    cfg.scheme = scheme;
    cfg.samples_q = 3;
    cfg.beta = 2e-3;
    if (scheme == Scheme::kRPoLv2) {
      lsh::LshConfig lcfg;
      lcfg.params = lsh::optimize_lsh(cfg.beta / 5.0, cfg.beta, 16).params;
      lcfg.dim = model_dim;
      lcfg.seed = 44;
      cfg.lsh = lcfg;
    }
    return cfg;
  }

  SessionOutcome run(Scheme scheme, WorkerPolicy& policy) {
    return run_protocol_session(task.factory, task.hp, config(scheme), global,
                                /*nonce=*/505, view, policy, sim::device_ga10(),
                                /*worker_seed=*/3, sim::device_g3090(),
                                /*manager_seed=*/4);
  }

  TinyTask task{TinyTask::make()};
  data::DatasetView view;
  TrainState global;
  std::int64_t model_dim = 0;
};

TEST_F(SessionFixture, HonestWorkerAcceptedBothSchemes) {
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    HonestPolicy honest;
    const SessionOutcome outcome = run(scheme, honest);
    EXPECT_TRUE(outcome.accepted) << scheme_name(scheme);
    EXPECT_EQ(outcome.final_model.size(), global.model.size());
    EXPECT_GT(outcome.bytes_to_worker, 0u);
    EXPECT_GT(outcome.bytes_to_manager, 0u);
  }
}

TEST_F(SessionFixture, AdversariesRejectedOverTheWire) {
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    ReplayPolicy replay;
    EXPECT_FALSE(run(scheme, replay).accepted) << scheme_name(scheme);
    SpoofPolicy spoof(0.1, 0.5);
    EXPECT_FALSE(run(scheme, spoof).accepted) << scheme_name(scheme);
    FabricationPolicy fabricate;
    EXPECT_FALSE(run(scheme, fabricate).accepted) << scheme_name(scheme);
  }
}

TEST_F(SessionFixture, V2SavesUplinkBytes) {
  HonestPolicy honest;
  const SessionOutcome v1 = run(Scheme::kRPoLv1, honest);
  const SessionOutcome v2 = run(Scheme::kRPoLv2, honest);
  ASSERT_TRUE(v1.accepted);
  ASSERT_TRUE(v2.accepted);
  EXPECT_LT(v2.bytes_to_manager, v1.bytes_to_manager);
}

TEST_F(SessionFixture, TrafficStructureMatchesCostModel) {
  // RPoLv1 uplink = update + commitment + q * (input + output) states.
  HonestPolicy honest;
  const SessionOutcome v1 = run(Scheme::kRPoLv1, honest);
  const std::uint64_t state_bytes =
      static_cast<std::uint64_t>(encode_train_state(global).size());
  // update (model only, lighter than a full state) + 3 * 2 full states;
  // commitment adds hashes. Bound the structure rather than exact bytes:
  EXPECT_GT(v1.bytes_to_manager, 6 * state_bytes / 2);
  EXPECT_LT(v1.bytes_to_manager, 8 * state_bytes);

  // RPoLv2 uplink when no double-check fires: update + commitment(+LSH) +
  // q * input states.
  const SessionOutcome v2 = run(Scheme::kRPoLv2, honest);
  if (v2.double_checks == 0) {
    EXPECT_LT(v2.bytes_to_manager, 5 * state_bytes);
  }
}

TEST_F(SessionFixture, BytesByTypeAccountsForEveryMessage) {
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    HonestPolicy honest;
    const SessionOutcome outcome = run(scheme, honest);
    ASSERT_TRUE(outcome.accepted) << scheme_name(scheme);
    std::uint64_t typed_total = 0;
    for (const std::uint64_t b : outcome.bytes_by_type) typed_total += b;
    // The taxonomy is exhaustive: every byte crossing the channel is
    // attributed to exactly one message type.
    EXPECT_EQ(typed_total, outcome.bytes_to_worker + outcome.bytes_to_manager)
        << scheme_name(scheme);
    // An honest exchange uses every message type at least once.
    for (int t = 0; t < kNumMessageTypes; ++t) {
      EXPECT_GT(outcome.bytes_by_type[static_cast<std::size_t>(t)], 0u)
          << scheme_name(scheme) << " "
          << message_type_name(static_cast<MessageType>(t));
    }
    // The global state download dominates announcements, and proofs carry
    // full states so responses dominate requests.
    EXPECT_GT(outcome.bytes_by_type[static_cast<std::size_t>(
                  MessageType::kGlobalState)],
              outcome.bytes_by_type[static_cast<std::size_t>(
                  MessageType::kAnnouncement)]);
    EXPECT_GT(outcome.bytes_by_type[static_cast<std::size_t>(
                  MessageType::kProofResponse)],
              outcome.bytes_by_type[static_cast<std::size_t>(
                  MessageType::kProofRequest)]);
  }
}

TEST_F(SessionFixture, MessageTypeNamesAreStable) {
  // These names form the "bytes.<type>" counter namespace in trace exports
  // (docs/observability.md) — renaming them breaks trace consumers.
  EXPECT_STREQ(message_type_name(MessageType::kAnnouncement), "announcement");
  EXPECT_STREQ(message_type_name(MessageType::kGlobalState), "state");
  EXPECT_STREQ(message_type_name(MessageType::kCommitment), "commitment");
  EXPECT_STREQ(message_type_name(MessageType::kUpdate), "update");
  EXPECT_STREQ(message_type_name(MessageType::kProofRequest), "proof_request");
  EXPECT_STREQ(message_type_name(MessageType::kProofResponse),
               "proof_response");
}

TEST_F(SessionFixture, BaselineSchemeRejected) {
  HonestPolicy honest;
  EXPECT_THROW(run(Scheme::kBaseline, honest), std::invalid_argument);
  SessionConfig missing_lsh;
  missing_lsh.scheme = Scheme::kRPoLv2;
  EXPECT_THROW(
      run_protocol_session(task.factory, task.hp, missing_lsh, global, 1, view,
                           honest, sim::device_ga10(), 1, sim::device_g3090(), 2),
      std::invalid_argument);
}

TEST_F(SessionFixture, AgreesWithInProcessVerifier) {
  // The wire path and the in-process Verifier must reach the same verdicts.
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    for (const bool honest : {true, false}) {
      std::unique_ptr<WorkerPolicy> policy;
      if (honest) {
        policy = std::make_unique<HonestPolicy>();
      } else {
        policy = std::make_unique<SpoofPolicy>(0.1, 0.5);
      }
      const SessionOutcome wire_outcome = run(scheme, *policy);
      EXPECT_EQ(wire_outcome.accepted, honest)
          << scheme_name(scheme) << " honest=" << honest;
    }
  }
}

// ---------------------------------------------------------------------------
// SessionStatus taxonomy: the typed failure reason distinguishes protocol
// verdicts from transport pathologies. Pinned here so downstream consumers
// (pool eviction, trace analysis, the fault-conformance suite) can rely on
// the classification.
// ---------------------------------------------------------------------------

TEST_F(SessionFixture, StatusTaxonomyNamesArePinned) {
  // These names feed "session.fail.<status>" obs counters and trace
  // exports — renaming them breaks consumers.
  EXPECT_STREQ(session_status_name(SessionStatus::kAccepted), "accepted");
  EXPECT_STREQ(session_status_name(SessionStatus::kVerdictRejected),
               "verdict_rejected");
  EXPECT_STREQ(session_status_name(SessionStatus::kDecodeRejected),
               "decode_rejected");
  EXPECT_STREQ(session_status_name(SessionStatus::kTimeout), "timeout");
}

TEST_F(SessionFixture, AcceptedSessionsCarryAcceptedStatus) {
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    HonestPolicy honest;
    const SessionOutcome outcome = run(scheme, honest);
    ASSERT_TRUE(outcome.accepted) << scheme_name(scheme);
    EXPECT_EQ(outcome.status, SessionStatus::kAccepted) << scheme_name(scheme);
    // A fault-free session never retries and never backs off.
    EXPECT_EQ(outcome.total_retries, 0);
    EXPECT_EQ(outcome.backoff_ticks, 0);
    EXPECT_EQ(outcome.faults.total_faults(), 0);
  }
}

TEST_F(SessionFixture, AdversarialPoliciesClassifyAsVerdictRejected) {
  // A worker that completes the exchange but fails verification is a
  // protocol verdict, not a transport failure: the distinction is what lets
  // pools evict flaky transports without misclassifying cheaters (and vice
  // versa).
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    ReplayPolicy replay;
    const SessionOutcome r = run(scheme, replay);
    EXPECT_FALSE(r.accepted) << scheme_name(scheme);
    EXPECT_EQ(r.status, SessionStatus::kVerdictRejected) << scheme_name(scheme);
    SpoofPolicy spoof(0.1, 0.5);
    const SessionOutcome s = run(scheme, spoof);
    EXPECT_FALSE(s.accepted) << scheme_name(scheme);
    EXPECT_EQ(s.status, SessionStatus::kVerdictRejected) << scheme_name(scheme);
  }
}

TEST_F(SessionFixture, StatusAndAcceptedAreCoherent) {
  // accepted is exactly (status == kAccepted) — redundant storage, but both
  // fields are public API, so their coherence is an invariant.
  HonestPolicy honest;
  SpoofPolicy spoof(0.1, 0.5);
  for (const Scheme scheme : {Scheme::kRPoLv1, Scheme::kRPoLv2}) {
    for (WorkerPolicy* policy :
         std::initializer_list<WorkerPolicy*>{&honest, &spoof}) {
      const SessionOutcome outcome = run(scheme, *policy);
      EXPECT_EQ(outcome.accepted, outcome.status == SessionStatus::kAccepted)
          << scheme_name(scheme);
    }
  }
}

TEST_F(SessionFixture, InvalidRetryPolicyRejected) {
  HonestPolicy honest;
  SessionConfig cfg = config(Scheme::kRPoLv1);
  cfg.retry.max_attempts = 0;
  EXPECT_THROW(
      run_protocol_session(task.factory, task.hp, cfg, global, 505, view,
                           honest, sim::device_ga10(), 3, sim::device_g3090(),
                           4),
      std::invalid_argument);
}

}  // namespace
}  // namespace rpol::core
