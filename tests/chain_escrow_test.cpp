// Fair-exchange escrow tests: state machine rules, commitment gating,
// dispute arbitration, and conservation of funds.

#include <gtest/gtest.h>

#include "chain/escrow.h"

namespace rpol::chain {
namespace {

Digest root_of(int i) {
  Bytes b;
  append_u64(b, static_cast<std::uint64_t>(i));
  return sha256(b);
}

struct EscrowFixture : public ::testing::Test {
  FairExchangeEscrow make_funded(std::size_t workers = 3,
                                 std::uint64_t amount = 1'000) {
    FairExchangeEscrow escrow(workers, core::RewardPolicy{0});
    escrow.fund(amount);
    return escrow;
  }
};

TEST_F(EscrowFixture, HappyPathSettlement) {
  FairExchangeEscrow escrow = make_funded();
  escrow.register_commitment(0, root_of(0));
  escrow.register_commitment(1, root_of(1));
  escrow.register_commitment(2, root_of(2));
  escrow.submit_outcome({2, 2, 0});
  const core::RewardDistribution d = escrow.settle();
  EXPECT_EQ(escrow.state(), EscrowState::kSettled);
  EXPECT_EQ(d.worker_payouts[0], 500u);
  EXPECT_EQ(d.worker_payouts[1], 500u);
  EXPECT_EQ(d.worker_payouts[2], 0u);
  EXPECT_EQ(d.total(), 1'000u);
  EXPECT_EQ(escrow.balance(), 0u);
}

TEST_F(EscrowFixture, StateMachineEnforcesOrder) {
  FairExchangeEscrow escrow(2, core::RewardPolicy{0});
  EXPECT_THROW(escrow.register_commitment(0, root_of(0)), std::logic_error);
  EXPECT_THROW(escrow.submit_outcome({1, 1}), std::logic_error);
  EXPECT_THROW(escrow.settle(), std::logic_error);
  EXPECT_THROW(escrow.fund(0), std::invalid_argument);
  escrow.fund(10);
  EXPECT_THROW(escrow.fund(10), std::logic_error);  // double-fund
  escrow.submit_outcome({1, 1});
  EXPECT_THROW(escrow.submit_outcome({1, 1}), std::logic_error);
}

TEST_F(EscrowFixture, UncommittedWorkerCannotBePaid) {
  FairExchangeEscrow escrow = make_funded(2);
  escrow.register_commitment(0, root_of(0));
  // Manager claims worker 1 contributed — but worker 1 never committed.
  escrow.submit_outcome({1, 5});
  const core::RewardDistribution d = escrow.settle();
  EXPECT_EQ(d.worker_payouts[1], 0u);
  EXPECT_EQ(d.worker_payouts[0], 1'000u);
}

TEST_F(EscrowFixture, CommitmentOncePerWorker) {
  FairExchangeEscrow escrow = make_funded(2);
  escrow.register_commitment(0, root_of(0));
  EXPECT_THROW(escrow.register_commitment(0, root_of(7)), std::logic_error);
  EXPECT_THROW(escrow.register_commitment(9, root_of(9)), std::out_of_range);
  EXPECT_TRUE(escrow.commitment_of(0).has_value());
  EXPECT_FALSE(escrow.commitment_of(1).has_value());
}

TEST_F(EscrowFixture, SuccessfulDisputeRestoresPayout) {
  FairExchangeEscrow escrow = make_funded(2);
  escrow.register_commitment(0, root_of(0));
  escrow.register_commitment(1, root_of(1));
  // Manager (wrongly) zeroes worker 1.
  escrow.submit_outcome({2, 0});
  const bool upheld = escrow.dispute(1, 2, [](std::size_t) { return true; });
  EXPECT_TRUE(upheld);
  const core::RewardDistribution d = escrow.settle();
  EXPECT_EQ(d.worker_payouts[0], 500u);
  EXPECT_EQ(d.worker_payouts[1], 500u);
}

TEST_F(EscrowFixture, RejectedDisputeChangesNothing) {
  FairExchangeEscrow escrow = make_funded(2);
  escrow.register_commitment(0, root_of(0));
  escrow.register_commitment(1, root_of(1));
  escrow.submit_outcome({2, 0});
  EXPECT_FALSE(escrow.dispute(1, 2, [](std::size_t) { return false; }));
  const core::RewardDistribution d = escrow.settle();
  EXPECT_EQ(d.worker_payouts[1], 0u);
}

TEST_F(EscrowFixture, DisputeRules) {
  FairExchangeEscrow escrow = make_funded(3);
  escrow.register_commitment(0, root_of(0));
  escrow.register_commitment(1, root_of(1));
  escrow.submit_outcome({1, 1, 0});
  // Already-credited workers cannot inflate via dispute.
  EXPECT_FALSE(escrow.dispute(0, 5, [](std::size_t) { return true; }));
  // Never-committed workers cannot dispute.
  EXPECT_FALSE(escrow.dispute(2, 1, [](std::size_t) { return true; }));
  EXPECT_THROW(escrow.dispute(9, 1, nullptr), std::out_of_range);
  EXPECT_THROW(escrow.dispute(1, 0, nullptr), std::invalid_argument);
}

TEST_F(EscrowFixture, NoContributionsRefundStaysInEscrowAccounting) {
  FairExchangeEscrow escrow = make_funded(2, 700);
  escrow.register_commitment(0, root_of(0));
  escrow.submit_outcome({0, 0});
  const core::RewardDistribution d = escrow.settle();
  EXPECT_EQ(d.undistributed, 700u);  // returned to the manager's float
  EXPECT_EQ(d.total(), 700u);
}

}  // namespace
}  // namespace rpol::chain
