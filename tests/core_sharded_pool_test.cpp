// Sharded, epoch-pipelined pool manager (core/sharded_pool.h): shard
// partitioning and resolution, admission control (bounded queues, requeue
// vs reject overflow), health interaction (shedding is never a strike),
// pipelined scheduling, and a seeded 1k-worker soak under a mixed
// drop/delay/corrupt fault plan. The bitwise §6 equivalences against the
// legacy sequential pool live in tests/runtime_determinism_test.cpp; this
// file covers the sharded layer's own semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/sharded_pool.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "obs/health.h"
#include "obs/mem.h"
#include "task_fixture.h"

namespace rpol::core {
namespace {

using rpol::testing::TinyTask;

fault::FaultProfile mixed_profile(double drop, double delay, double corrupt) {
  fault::FaultProfile p;
  p.drop = drop;
  p.delay = delay;
  p.corrupt = corrupt;
  return p;
}

struct ShardedFixture : public ::testing::Test {
  static constexpr std::size_t kWorkers = 4;

  void SetUp() override {
    task = TinyTask::make(/*seed=*/61, /*steps=*/10, /*interval=*/3);
    split = std::make_unique<data::TrainTestSplit>(
        data::train_test_split(task.dataset, 0.25, 17));
  }

  ShardedPoolConfig config(int shards, std::int64_t epochs = 2) {
    ShardedPoolConfig cfg;
    cfg.base.scheme = Scheme::kRPoLv2;
    cfg.base.hp = task.hp;
    cfg.base.epochs = epochs;
    cfg.base.samples_q = 3;
    cfg.base.seed = 71;
    cfg.shards = shards;
    return cfg;
  }

  std::vector<WorkerSpec> workers(std::size_t n = kWorkers) {
    std::vector<WorkerSpec> specs;
    const auto devices = sim::all_devices();
    for (std::size_t w = 0; w < n; ++w) {
      WorkerSpec spec;
      spec.policy = std::make_unique<HonestPolicy>();
      spec.device = devices[w % devices.size()];
      specs.push_back(std::move(spec));
    }
    return specs;
  }

  ShardedPool make_pool(ShardedPoolConfig cfg) {
    return ShardedPool(std::move(cfg), task.factory, task.dataset, split->test,
                       workers());
  }

  TinyTask task{TinyTask::make()};
  std::unique_ptr<data::TrainTestSplit> split;
};

// ---------------------------------------------------------------------------
// Shard resolution and partitioning

TEST(ShardResolution, ConfiguredWinsElseEnvElseOneAndAlwaysClamped) {
  ::unsetenv("RPOL_SHARDS");
  EXPECT_EQ(resolve_shards(0, 8), 1);
  EXPECT_EQ(resolve_shards(3, 8), 3);
  EXPECT_EQ(resolve_shards(100, 8), 8);   // clamp to worker count
  EXPECT_EQ(resolve_shards(-2, 8), 1);    // negative => unset
  EXPECT_EQ(resolve_shards(2, 0), 1);     // degenerate pools get one shard

  ::setenv("RPOL_SHARDS", "5", 1);
  EXPECT_EQ(resolve_shards(0, 8), 5);
  EXPECT_EQ(resolve_shards(2, 8), 2);     // explicit config beats the env
  ::setenv("RPOL_SHARDS", "64", 1);
  EXPECT_EQ(resolve_shards(0, 8), 8);     // env is clamped too
  ::setenv("RPOL_SHARDS", "garbage", 1);
  EXPECT_EQ(resolve_shards(0, 8), 1);
  ::unsetenv("RPOL_SHARDS");
}

TEST_F(ShardedFixture, ShardRangesPartitionWorkersContiguously) {
  ShardedPool pool = make_pool(config(/*shards=*/3));
  EXPECT_EQ(pool.shards(), 3);
  // 4 workers over 3 shards: the first (4 % 3) = 1 shard gets the extra.
  const ShardRange r0 = pool.shard_range(0);
  const ShardRange r1 = pool.shard_range(1);
  const ShardRange r2 = pool.shard_range(2);
  EXPECT_EQ(r0.begin, 0U);
  EXPECT_EQ(r0.end, 2U);
  EXPECT_EQ(r1.begin, 2U);
  EXPECT_EQ(r1.end, 3U);
  EXPECT_EQ(r2.begin, 3U);
  EXPECT_EQ(r2.end, 4U);
}

TEST_F(ShardedFixture, DecentralizedVerificationIsRejected) {
  ShardedPoolConfig cfg = config(2);
  cfg.base.decentralized_verification = true;
  EXPECT_THROW(make_pool(std::move(cfg)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Admission control

TEST_F(ShardedFixture, UnboundedQueueAdmitsEveryoneWithoutRequeues) {
  ShardedPool pool = make_pool(config(2, /*epochs=*/1));
  const EpochReport epoch = pool.run_epoch(0);
  EXPECT_EQ(epoch.admission_enqueued, static_cast<std::int64_t>(kWorkers));
  EXPECT_EQ(epoch.admission_requeued, 0);
  EXPECT_EQ(epoch.admission_rejected, 0);
  // Lockstep arrival burst: the queue peaks at the largest shard's size.
  EXPECT_EQ(epoch.max_queue_depth, 2);
  EXPECT_EQ(epoch.rejected_count, 0);
  for (const SessionStatus s : epoch.status) {
    EXPECT_EQ(s, SessionStatus::kAccepted);
  }
}

TEST_F(ShardedFixture, RequeuePolicyIsLosslessAndBitwiseEqualToUnbounded) {
  const EpochReport unbounded = make_pool(config(2, 1)).run_epoch(0);

  ShardedPoolConfig tight = config(2, 1);
  tight.queue_capacity = 1;  // every shard holds 2 workers: 1 must wait
  tight.verify_batch = 1;
  tight.overflow = AdmissionPolicy::kRequeue;
  ShardedPool pool = make_pool(std::move(tight));
  const EpochReport epoch = pool.run_epoch(0);

  // The pressure is visible in the admission counters: per shard, one
  // worker fits the capacity-1 queue at the burst and one waits in the
  // backlog, re-entering (a second enqueue) once the first verifies.
  EXPECT_EQ(epoch.admission_requeued, 2);
  EXPECT_EQ(epoch.admission_enqueued, 4);
  EXPECT_EQ(epoch.admission_rejected, 0);
  EXPECT_EQ(epoch.max_queue_depth, 1);  // the bound held
  // ...and absolutely nowhere else: verdicts, statuses, traffic, and the
  // model are bitwise those of the unbounded run.
  EXPECT_EQ(epoch.accepted, unbounded.accepted);
  EXPECT_EQ(epoch.status, unbounded.status);
  EXPECT_EQ(epoch.rejected_count, unbounded.rejected_count);
  EXPECT_EQ(epoch.bytes_this_epoch, unbounded.bytes_this_epoch);
  EXPECT_EQ(epoch.test_accuracy, unbounded.test_accuracy);
}

TEST_F(ShardedFixture, RejectPolicyShedsWithoutHealthStrikes) {
  ShardedPoolConfig cfg = config(2, /*epochs=*/4);
  cfg.base.eviction_threshold = 3;
  cfg.queue_capacity = 1;
  cfg.overflow = AdmissionPolicy::kReject;
  ShardedPool pool = make_pool(std::move(cfg));
  const PoolRunReport report = pool.run();

  for (const EpochReport& epoch : report.epochs) {
    // Shards are [0,2) and [2,4): workers 1 and 3 arrive at a full queue.
    EXPECT_EQ(epoch.admission_rejected, 2);
    EXPECT_EQ(epoch.admission_requeued, 0);
    EXPECT_EQ(epoch.status[0], SessionStatus::kAccepted);
    EXPECT_EQ(epoch.status[1], SessionStatus::kAdmissionRejected);
    EXPECT_EQ(epoch.status[2], SessionStatus::kAccepted);
    EXPECT_EQ(epoch.status[3], SessionStatus::kAdmissionRejected);
    // Shed submissions are excluded from aggregation...
    EXPECT_FALSE(epoch.accepted[1]);
    EXPECT_FALSE(epoch.accepted[3]);
    // ...but are NOT verdict rejections.
    EXPECT_EQ(epoch.rejected_count, 0);
  }
  // Four consecutive epochs of shedding (> eviction_threshold) and the shed
  // workers' health records never moved: manager overload is not worker
  // misbehavior.
  EXPECT_FALSE(pool.pool().worker_evicted(1));
  EXPECT_FALSE(pool.pool().worker_evicted(3));
  EXPECT_EQ(pool.pool().health().consecutive_failures(1), 0);
  EXPECT_EQ(pool.pool().health().consecutive_failures(3), 0);
}

// ---------------------------------------------------------------------------
// Pipelined scheduling

TEST_F(ShardedFixture, PipelinedRunIsDeterministicAndCoversEveryEpoch) {
  auto run_once = [&] {
    ShardedPoolConfig cfg = config(2, /*epochs=*/3);
    cfg.pipeline = true;
    ShardedPool pool = make_pool(std::move(cfg));
    const PoolRunReport report = pool.run();
    return std::make_pair(report, pool.pool().global_model());
  };
  const auto [first, model_first] = run_once();
  const auto [second, model_second] = run_once();

  ASSERT_EQ(first.epochs.size(), 3U);
  EXPECT_EQ(model_first, model_second);
  EXPECT_EQ(first.final_accuracy, second.final_accuracy);
  EXPECT_EQ(first.total_bytes, second.total_bytes);
  for (std::size_t t = 0; t < first.epochs.size(); ++t) {
    EXPECT_EQ(first.epochs[t].accepted, second.epochs[t].accepted);
    EXPECT_EQ(first.epochs[t].status, second.epochs[t].status);
    EXPECT_EQ(first.epochs[t].test_accuracy, second.epochs[t].test_accuracy);
    EXPECT_EQ(first.epochs[t].bytes_this_epoch,
              second.epochs[t].bytes_this_epoch);
  }
  // Honest pool: the one-epoch staleness must not reject anybody.
  for (const EpochReport& epoch : first.epochs) {
    EXPECT_EQ(epoch.rejected_count, 0);
  }
}

// ---------------------------------------------------------------------------
// Seeded 1k-worker soak under a mixed fault plan (ISSUE 10 satellite): the
// sharded manager must drive a mining-pool-scale worker set to completion
// (no deadlock), keep every shard queue inside its bound, keep transient
// memory balanced, and produce identical verdict counts on a same-seed rerun.

struct SoakResult {
  std::vector<float> model;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t participated = 0;
  std::int64_t session_failures = 0;
  std::int64_t requeued = 0;
  std::int64_t max_depth = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ckpt_current_after = 0;
};

SoakResult run_soak(std::size_t num_workers) {
  // Tiny per-worker task: the soak stresses the MANAGER (admission,
  // sharded verification, health) — per-worker compute is minimized.
  data::SyntheticBlobConfig data_cfg;
  data_cfg.num_classes = 4;
  data_cfg.num_examples = static_cast<std::int64_t>(8 * (num_workers + 1));
  data_cfg.features = 8;
  data_cfg.class_separation = 1.5F;
  data_cfg.seed = 9001;
  const data::Dataset dataset = data::make_synthetic_blobs(data_cfg);
  const data::TrainTestSplit split =
      data::train_test_split(dataset, 0.125, 17);

  // Mixed drop/delay/corrupt pressure on every leg; modest rates so most
  // sessions survive the retry budget and the verifiers stay loaded.
  const fault::FaultPlan plan =
      fault::FaultPlan::transport(mixed_profile(0.15, 0.15, 0.05), 4242);

  ShardedPoolConfig cfg;
  cfg.base.scheme = Scheme::kRPoLv2;
  cfg.base.hp.learning_rate = 0.02F;
  cfg.base.hp.batch_size = 8;
  cfg.base.hp.steps_per_epoch = 2;
  cfg.base.hp.checkpoint_interval = 1;
  cfg.base.epochs = 2;
  cfg.base.samples_q = 1;
  cfg.base.seed = 71;
  cfg.base.fault_plan = &plan;
  cfg.base.eviction_threshold = 3;
  cfg.shards = 8;
  cfg.queue_capacity = 64;
  cfg.verify_batch = 16;
  cfg.overflow = AdmissionPolicy::kRequeue;

  std::vector<WorkerSpec> workers;
  const auto devices = sim::all_devices();
  for (std::size_t w = 0; w < num_workers; ++w) {
    WorkerSpec spec;
    spec.policy = std::make_unique<HonestPolicy>();
    spec.device = devices[w % devices.size()];
    workers.push_back(std::move(spec));
  }

  SoakResult r;
  {
    ShardedPool pool(std::move(cfg), nn::mlp_factory(8, {8}, 4, 33), dataset,
                     split.test, std::move(workers));
    const PoolRunReport report = pool.run();
    for (const EpochReport& epoch : report.epochs) {
      for (const bool a : epoch.accepted) r.accepted += a ? 1 : 0;
      for (const bool p : epoch.participated) r.participated += p ? 1 : 0;
      r.rejected += epoch.rejected_count;
      r.session_failures += epoch.session_failures;
      r.requeued += epoch.admission_requeued;
      r.max_depth = std::max(r.max_depth, epoch.max_queue_depth);
      r.bytes += epoch.bytes_this_epoch;
    }
    r.model = pool.pool().global_model();
  }
  // Pool destroyed: transient checkpoint-tag memory must balance back to
  // whatever the surrounding test process already held.
  r.ckpt_current_after = obs::mem_stats(obs::MemTag::kCheckpoint).current_bytes;
  return r;
}

TEST(ShardedPoolSoak, ThousandWorkersUnderMixedFaultsIsStableAndBounded) {
  constexpr std::size_t kSoakWorkers = 1000;
  const std::uint64_t ckpt_before =
      obs::mem_stats(obs::MemTag::kCheckpoint).current_bytes;

  const SoakResult first = run_soak(kSoakWorkers);

  // Liveness + sanity: the run completed, most workers made it through the
  // lossy transport, traffic flowed.
  EXPECT_GT(first.participated, static_cast<std::int64_t>(kSoakWorkers));
  EXPECT_GT(first.accepted, static_cast<std::int64_t>(kSoakWorkers / 2));
  EXPECT_GT(first.session_failures, 0);  // the fault plan really bit
  EXPECT_GT(first.bytes, 0U);

  // Bounded queues: 1000 workers over 8 shards is 125 per burst, well over
  // the capacity of 64 — the backlog engaged, and the bound held anyway.
  EXPECT_GT(first.requeued, 0);
  EXPECT_LE(first.max_depth, 64);

  // Bounded transient memory: every per-epoch checkpoint charge was
  // released when the pool died.
  EXPECT_EQ(first.ckpt_current_after, ckpt_before);

  // Same seed, same verdicts, same model — the whole soak is reproducible.
  const SoakResult second = run_soak(kSoakWorkers);
  EXPECT_EQ(first.model, second.model);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.rejected, second.rejected);
  EXPECT_EQ(first.participated, second.participated);
  EXPECT_EQ(first.session_failures, second.session_failures);
  EXPECT_EQ(first.requeued, second.requeued);
  EXPECT_EQ(first.bytes, second.bytes);
}

}  // namespace
}  // namespace rpol::core
